#include "apps/workspace_backend.hpp"

#include "services/asd.hpp"

namespace ace::apps {

VncWorkspaceFactory::VncWorkspaceFactory(
    daemon::Environment& env, std::vector<daemon::DaemonHost*> server_pool,
    std::map<std::string, daemon::DaemonHost*> access_points)
    : env_(env),
      server_pool_(std::move(server_pool)),
      access_points_(std::move(access_points)),
      password_rng_(env.next_seed()) {}

void VncWorkspaceFactory::install(services::WssDaemon& wss) {
  services::WorkspaceBackend backend;
  backend.create = [this](const std::string& owner, const std::string& name) {
    return create_workspace(owner, name);
  };
  backend.show = [this](const net::Address& server, const std::string& location,
                        const std::string& owner) {
    return show_workspace(server, location, owner);
  };
  backend.destroy = [this](const net::Address& server) {
    std::scoped_lock lock(mu_);
    auto it = servers_.find(server.to_string());
    if (it != servers_.end()) {
      it->second->stop();
      servers_.erase(it);
    }
    passwords_.erase(server.to_string());
  };
  wss.set_backend(std::move(backend));
}

void VncWorkspaceFactory::set_store_replicas(
    std::vector<net::Address> replicas) {
  std::scoped_lock lock(mu_);
  store_replicas_ = std::move(replicas);
}

daemon::DaemonHost* VncWorkspaceFactory::pick_server_host() {
  // Called with mu_ held. Prefer SRM placement when the monitors are up.
  if (!server_pool_.empty() && !env_.asd_address.host.empty()) {
    if (!client_) {
      client_ = std::make_unique<daemon::AceClient>(
          env_, server_pool_.front()->net_host(),
          env_.issue_identity("svc/vnc-factory"));
    }
    auto srms = services::AsdClient(*client_, env_.asd_address).query("*", "Service/Monitor/SRM*", "*");
    if (srms.ok() && !srms->empty()) {
      cmdlang::CmdLine pick("srmPickHost");
      pick.arg("cpu", 0.2);
      auto reply = client_->call(srms->front().address, pick, daemon::kCallOk);
      if (reply.ok()) {
        std::string chosen = reply->get_text("host");
        for (daemon::DaemonHost* host : server_pool_)
          if (host->name() == chosen) return host;
      }
    }
  }
  if (server_pool_.empty()) return nullptr;
  return server_pool_[next_server_host_++ % server_pool_.size()];
}

util::Result<net::Address> VncWorkspaceFactory::create_workspace(
    const std::string& owner, const std::string& name) {
  daemon::DaemonHost* host;
  std::string password;
  std::vector<net::Address> replicas;
  {
    std::scoped_lock lock(mu_);
    host = pick_server_host();
    if (!host)
      return util::Error{util::Errc::unavailable, "no workspace hosts"};
    password = password_rng_.next_name(12);
    replicas = store_replicas_;
  }
  daemon::DaemonConfig config;
  config.name = "vnc-" + owner + "-" + name;
  config.room = "machine-room";
  auto& server =
      host->add_daemon<VncServerDaemon>(std::move(config), owner, name);
  server.set_password(password);
  if (!replicas.empty()) server.enable_persistence(replicas);
  if (auto s = server.start(); !s.ok()) return s.error();
  net::Address address = server.address();
  std::scoped_lock lock(mu_);
  servers_[address.to_string()] = &server;
  passwords_[address.to_string()] = password;
  return address;
}

util::Status VncWorkspaceFactory::show_workspace(const net::Address& server,
                                                 const std::string& location,
                                                 const std::string& owner) {
  (void)owner;  // authentication is by the WSS-managed password
  std::string password;
  daemon::DaemonHost* ap_host;
  VncViewerDaemon* viewer = nullptr;
  {
    std::scoped_lock lock(mu_);
    auto pw = passwords_.find(server.to_string());
    if (pw == passwords_.end())
      return {util::Errc::not_found, "unknown workspace server"};
    password = pw->second;
    auto ap = access_points_.find(location);
    if (ap == access_points_.end())
      return {util::Errc::not_found, "unknown access point '" + location + "'"};
    ap_host = ap->second;
    auto existing = viewers_.find(location);
    if (existing != viewers_.end()) viewer = existing->second;
  }
  if (!viewer) {
    daemon::DaemonConfig config;
    config.name = "vncviewer-" + location;
    config.room = location;
    auto& v = ap_host->add_daemon<VncViewerDaemon>(std::move(config));
    if (auto s = v.start(); !s.ok()) return s;
    std::scoped_lock lock(mu_);
    viewers_[location] = &v;
    viewer = &v;
  }
  return viewer->attach(server, password);
}

VncServerDaemon* VncWorkspaceFactory::server_at(const net::Address& address) {
  std::scoped_lock lock(mu_);
  auto it = servers_.find(address.to_string());
  return it == servers_.end() ? nullptr : it->second;
}

VncViewerDaemon* VncWorkspaceFactory::viewer_on(const std::string& host_name) {
  std::scoped_lock lock(mu_);
  auto it = viewers_.find(host_name);
  return it == viewers_.end() ? nullptr : it->second;
}

}  // namespace ace::apps
