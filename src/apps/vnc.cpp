#include "apps/vnc.hpp"

namespace ace::apps {

using cmdlang::CmdLine;
using cmdlang::CommandSpec;
using cmdlang::integer_arg;
using cmdlang::string_arg;
using cmdlang::Word;
using cmdlang::word_arg;
using daemon::CallerInfo;

namespace {
daemon::DaemonConfig vnc_server_defaults(daemon::DaemonConfig config) {
  config.open_data_channel = true;
  if (config.service_class.empty())
    config.service_class = "Service/Workspace/VNCServer";
  return config;
}
daemon::DaemonConfig vnc_viewer_defaults(daemon::DaemonConfig config) {
  config.open_data_channel = true;
  config.register_with_asd = false;  // viewers are transient client helpers
  config.register_with_room_db = false;
  if (config.service_class.empty())
    config.service_class = "Service/Workspace/VNCViewer";
  return config;
}
}  // namespace

VncServerDaemon::VncServerDaemon(daemon::Environment& env,
                                 daemon::DaemonHost& host,
                                 daemon::DaemonConfig config,
                                 std::string owner, std::string workspace_name)
    : ServiceDaemon(env, host, vnc_server_defaults(std::move(config))),
      owner_(std::move(owner)),
      workspace_name_(std::move(workspace_name)) {
  {
    std::scoped_lock lock(mu_);
    repaint_locked();
    fb_.clear_dirty();
  }

  register_command(
      CommandSpec("vncSetPassword", "set the workspace password")
          .arg(string_arg("password")),
      [this](const CmdLine& cmd, const CallerInfo&) {
        std::scoped_lock lock(mu_);
        password_ = cmd.get_text("password");
        return cmdlang::make_ok();
      });

  register_command(
      CommandSpec("vncAttach", "attach a viewer (password-checked)")
          .arg(string_arg("password"))
          .arg(string_arg("viewer")),
      [this](const CmdLine& cmd, const CallerInfo&) {
        auto viewer = net::Address::parse(cmd.get_text("viewer"));
        if (!viewer)
          return cmdlang::make_error(util::Errc::invalid,
                                     "viewer must be host:port");
        std::scoped_lock lock(mu_);
        if (cmd.get_text("password") != password_) {
          net_log("security", "VNC attach with wrong password for workspace " +
                                  owner_ + "/" + workspace_name_);
          return cmdlang::make_error(util::Errc::auth_error,
                                     "invalid workspace password");
        }
        if (std::find(viewers_.begin(), viewers_.end(), *viewer) ==
            viewers_.end())
          viewers_.push_back(*viewer);
        // Initial full-frame update to the new viewer only.
        push_updates_locked(/*full=*/true, {*viewer});
        CmdLine reply = cmdlang::make_ok();
        reply.arg("width", static_cast<std::int64_t>(fb_.width()));
        reply.arg("height", static_cast<std::int64_t>(fb_.height()));
        return reply;
      });

  register_command(
      CommandSpec("vncDetach", "detach a viewer").arg(string_arg("viewer")),
      [this](const CmdLine& cmd, const CallerInfo&) {
        auto viewer = net::Address::parse(cmd.get_text("viewer"));
        if (!viewer)
          return cmdlang::make_error(util::Errc::invalid,
                                     "viewer must be host:port");
        std::scoped_lock lock(mu_);
        std::erase(viewers_, *viewer);
        return cmdlang::make_ok();
      });

  register_command(
      CommandSpec("vncRunApp", "launch an application window")
          .arg(string_arg("command")),
      [this](const CmdLine& cmd, const CallerInfo&) {
        std::scoped_lock lock(mu_);
        AppWindow win;
        win.id = next_window_++;
        win.command = cmd.get_text("command");
        int slot = static_cast<int>(windows_.size());
        win.frame = Rect{10 + 24 * (slot % 8), 20 + 28 * (slot / 8), 96, 24};
        windows_[win.id] = win;
        repaint_locked();
        push_updates_locked(false, viewers_);
        CmdLine reply = cmdlang::make_ok();
        reply.arg("window", static_cast<std::int64_t>(win.id));
        return reply;
      });

  register_command(
      CommandSpec("vncCloseApp", "close an application window")
          .arg(integer_arg("window")),
      [this](const CmdLine& cmd, const CallerInfo&) {
        std::scoped_lock lock(mu_);
        if (windows_.erase(static_cast<int>(cmd.get_integer("window"))) == 0)
          return cmdlang::make_error(util::Errc::not_found, "no such window");
        repaint_locked();
        push_updates_locked(false, viewers_);
        return cmdlang::make_ok();
      });

  register_command(
      CommandSpec("vncInput", "deliver a key or pointer event")
          .arg(word_arg("kind").choices({"key", "pointer"}))
          .arg(string_arg("key").optional_arg())
          .arg(integer_arg("x").optional_arg())
          .arg(integer_arg("y").optional_arg()),
      [this](const CmdLine& cmd, const CallerInfo&) {
        std::scoped_lock lock(mu_);
        if (cmd.get_text("kind") == "pointer") {
          int x = static_cast<int>(cmd.get_integer("x"));
          int y = static_cast<int>(cmd.get_integer("y"));
          fb_.fill_rect(Rect{x - 1, y - 1, 3, 3}, 0xff);
        } else {
          std::string key = cmd.get_text("key");
          // Typed characters accumulate in the "terminal" strip at the
          // bottom of the workspace.
          fb_.draw_label(4 + 4 * (input_chars_ % 70),
                         fb_.height() - 10 - 8 * (input_chars_ / 70),
                         key.substr(0, 1), 0xd0);
          input_chars_++;
        }
        push_updates_locked(false, viewers_);
        return cmdlang::make_ok();
      });

  register_command(
      CommandSpec("vncFlush", "push pending updates to all viewers"),
      [this](const CmdLine&, const CallerInfo&) {
        std::scoped_lock lock(mu_);
        push_updates_locked(false, viewers_);
        return cmdlang::make_ok();
      });

  register_command(
      CommandSpec("vncSnapshot", "framebuffer hash and app list"),
      [this](const CmdLine&, const CallerInfo&) {
        std::scoped_lock lock(mu_);
        CmdLine reply = cmdlang::make_ok();
        reply.arg("hash",
                  static_cast<std::int64_t>(fb_.content_hash() >> 1));
        std::vector<std::string> apps;
        for (const auto& [id, win] : windows_)
          apps.push_back(std::to_string(id) + "|" + win.command);
        reply.arg("apps", cmdlang::string_vector(std::move(apps)));
        reply.arg("owner", Word{owner_});
        reply.arg("name", Word{workspace_name_});
        return reply;
      });

  register_command(
      CommandSpec("vncCheckpoint", "save workspace state to the store"),
      [this](const CmdLine&, const CallerInfo&) {
        util::Bytes blob;
        std::vector<net::Address> replicas;
        {
          std::scoped_lock lock(mu_);
          if (store_replicas_.empty())
            return cmdlang::make_error(util::Errc::invalid,
                                       "persistence not enabled");
          blob = checkpoint_state_locked();
          replicas = store_replicas_;
        }
        store::StoreClient store(control_client(), replicas);
        if (auto s = store.save_state("vnc/" + owner_, workspace_name_, blob);
            !s.ok())
          return cmdlang::make_error(s.error().code, s.error().message);
        CmdLine reply = cmdlang::make_ok();
        reply.arg("bytes", static_cast<std::int64_t>(blob.size()));
        return reply;
      });

  register_command(
      CommandSpec("vncRestore", "restore workspace state from the store"),
      [this](const CmdLine&, const CallerInfo&) {
        std::vector<net::Address> replicas;
        {
          std::scoped_lock lock(mu_);
          if (store_replicas_.empty())
            return cmdlang::make_error(util::Errc::invalid,
                                       "persistence not enabled");
          replicas = store_replicas_;
        }
        store::StoreClient store(control_client(), replicas);
        auto blob = store.load_state("vnc/" + owner_, workspace_name_);
        if (!blob.ok())
          return cmdlang::make_error(blob.error().code, blob.error().message);
        std::scoped_lock lock(mu_);
        if (!restore_state_locked(blob.value()))
          return cmdlang::make_error(util::Errc::parse_error,
                                     "corrupt checkpoint");
        push_updates_locked(true, viewers_);
        return cmdlang::make_ok();
      });
}

void VncServerDaemon::repaint_locked() {
  fb_.fill_rect(Rect{0, 0, fb_.width(), fb_.height()}, 0x18);  // desktop
  fb_.fill_rect(Rect{0, 0, fb_.width(), 12}, 0x40);            // title bar
  fb_.draw_label(4, 3, owner_ + "-" + workspace_name_, 0xff);
  for (const auto& [id, win] : windows_) {
    fb_.fill_rect(win.frame, 0x80);
    fb_.fill_rect(Rect{win.frame.x, win.frame.y, win.frame.w, 7}, 0xa0);
    fb_.draw_label(win.frame.x + 2, win.frame.y + 1, win.command, 0x10);
  }
}

void VncServerDaemon::push_updates_locked(
    bool full, const std::vector<net::Address>& to) {
  if (to.empty()) {
    fb_.clear_dirty();
    return;
  }
  if (!full && !fb_.has_dirty()) return;
  // One shared buffer, one view per viewer — no per-viewer payload copies.
  util::SharedBytes update(fb_.encode_updates(full));
  if (!full) fb_.clear_dirty();
  (void)send_datagrams(to, update);
}

util::Bytes VncServerDaemon::checkpoint_state_locked() const {
  util::ByteWriter w;
  w.str(owner_);
  w.str(workspace_name_);
  w.str(password_);
  w.u32(static_cast<std::uint32_t>(windows_.size()));
  for (const auto& [id, win] : windows_) {
    w.u32(static_cast<std::uint32_t>(id));
    w.str(win.command);
  }
  w.blob(fb_.pixels());
  return w.take();
}

bool VncServerDaemon::restore_state_locked(const util::Bytes& blob) {
  util::ByteReader r(blob);
  auto owner = r.str();
  auto name = r.str();
  auto password = r.str();
  auto window_count = r.u32();
  if (!owner || !name || !password || !window_count) return false;
  std::map<int, AppWindow> windows;
  int max_id = 0;
  for (std::uint32_t i = 0; i < *window_count; ++i) {
    auto id = r.u32();
    auto command = r.str();
    if (!id || !command) return false;
    AppWindow win;
    win.id = static_cast<int>(*id);
    win.command = *command;
    int slot = static_cast<int>(windows.size());
    win.frame = Rect{10 + 24 * (slot % 8), 20 + 28 * (slot / 8), 96, 24};
    max_id = std::max(max_id, win.id);
    windows[win.id] = std::move(win);
  }
  auto pixels = r.blob();
  if (!pixels ||
      pixels->size() != static_cast<std::size_t>(fb_.width()) * fb_.height())
    return false;
  password_ = *password;
  windows_ = std::move(windows);
  next_window_ = max_id + 1;
  for (int y = 0; y < fb_.height(); ++y)
    for (int x = 0; x < fb_.width(); ++x)
      fb_.set_pixel(x, y, (*pixels)[static_cast<std::size_t>(y) * fb_.width() + x]);
  return true;
}

std::string VncServerDaemon::password() const {
  std::scoped_lock lock(mu_);
  return password_;
}

void VncServerDaemon::set_password(std::string password) {
  std::scoped_lock lock(mu_);
  password_ = std::move(password);
}

void VncServerDaemon::enable_persistence(
    std::vector<net::Address> store_replicas) {
  std::scoped_lock lock(mu_);
  store_replicas_ = std::move(store_replicas);
}

std::uint64_t VncServerDaemon::framebuffer_hash() const {
  std::scoped_lock lock(mu_);
  return fb_.content_hash();
}

std::size_t VncServerDaemon::viewer_count() const {
  std::scoped_lock lock(mu_);
  return viewers_.size();
}

std::vector<VncServerDaemon::AppWindow> VncServerDaemon::windows() const {
  std::scoped_lock lock(mu_);
  std::vector<AppWindow> out;
  for (const auto& [id, win] : windows_) out.push_back(win);
  return out;
}

// ------------------------------------------------------------------- viewer

VncViewerDaemon::VncViewerDaemon(daemon::Environment& env,
                                 daemon::DaemonHost& host,
                                 daemon::DaemonConfig config)
    : ServiceDaemon(env, host, vnc_viewer_defaults(std::move(config))) {}

util::Status VncViewerDaemon::attach(const net::Address& server,
                                     const std::string& password) {
  CmdLine cmd("vncAttach");
  cmd.arg("password", password);
  cmd.arg("viewer", data_address().to_string());
  auto reply = control_client().call(server, cmd, daemon::kCallOk);
  if (!reply.ok()) return reply.error();
  std::scoped_lock lock(mu_);
  server_ = server;
  return util::Status::ok_status();
}

util::Status VncViewerDaemon::detach() {
  net::Address server;
  {
    std::scoped_lock lock(mu_);
    server = server_;
    server_ = {};
  }
  if (server.host.empty()) return util::Status::ok_status();
  CmdLine cmd("vncDetach");
  cmd.arg("viewer", data_address().to_string());
  auto reply = control_client().call(server, cmd);
  if (!reply.ok()) return reply.error();
  return util::Status::ok_status();
}

void VncViewerDaemon::on_datagram(const net::Datagram& datagram) {
  std::scoped_lock lock(mu_);
  if (fb_.apply_updates(datagram.payload)) {
    updates_++;
    update_bytes_ += datagram.payload.size();
  }
}

std::uint64_t VncViewerDaemon::framebuffer_hash() const {
  std::scoped_lock lock(mu_);
  return fb_.content_hash();
}

std::uint64_t VncViewerDaemon::updates_received() const {
  std::scoped_lock lock(mu_);
  return updates_;
}

std::uint64_t VncViewerDaemon::update_bytes_received() const {
  std::scoped_lock lock(mu_);
  return update_bytes_;
}

}  // namespace ace::apps
