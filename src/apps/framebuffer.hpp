// Remote-framebuffer model for the ACE VNC substitution (paper §5.4):
// an 8-bit grayscale framebuffer with tile-based dirty tracking and an
// RLE rect-update codec, so viewers receive incremental updates rather
// than whole frames — the property that makes thin access points viable.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "util/bytes.hpp"

namespace ace::apps {

inline constexpr int kTileSize = 16;

struct Rect {
  int x = 0, y = 0, w = 0, h = 0;
};

class Framebuffer {
 public:
  Framebuffer(int width, int height);

  int width() const { return width_; }
  int height() const { return height_; }

  std::uint8_t pixel(int x, int y) const;
  void set_pixel(int x, int y, std::uint8_t value);
  void fill_rect(const Rect& rect, std::uint8_t value);
  // Simple 3x5 bitmap "text": enough to make window content distinctive.
  void draw_label(int x, int y, const std::string& text, std::uint8_t value);

  // Dirty-tile tracking ------------------------------------------------------
  bool has_dirty() const;
  void clear_dirty();
  std::vector<Rect> dirty_rects() const;

  // Update encoding ----------------------------------------------------------
  // Encodes the dirty region (or the full frame when `full`), RLE per rect.
  util::Bytes encode_updates(bool full) const;
  // Applies an update blob produced by encode_updates.
  bool apply_updates(util::BytesView data);

  // Content hash for cross-checking server/viewer state (FNV-1a).
  std::uint64_t content_hash() const;

  const util::Bytes& pixels() const { return pixels_; }

 private:
  void mark_dirty(int x, int y);
  util::Bytes encode_rect(const Rect& rect) const;

  int width_;
  int height_;
  int tiles_x_;
  int tiles_y_;
  util::Bytes pixels_;
  std::vector<bool> dirty_;
};

}  // namespace ace::apps
