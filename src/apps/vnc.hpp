// VNC-like remote workspace system (paper §5.4, Fig 16).
//
// "The VNC server ... is responsible for actually housing or running the
//  user's workspace, maintaining all state information, and accepting input
//  and output to the workspace ... The server then redirects all I/O to
//  that client/viewer."
//
// VncServerDaemon hosts exactly one workspace (the paper runs one VNC
// session per workspace): a framebuffer plus the set of running
// applications. Viewers authenticate with the workspace password (managed
// invisibly by the WSS, §5.4), attach their data channel, and receive
// incremental dirty-rect updates. Input events and application launches
// mutate the framebuffer, so state preservation across detach/reattach is
// directly observable via content hashes.
//
// Server commands:
//   vncSetPassword password=;                     (WSS only, in practice)
//   vncAttach password= viewer=<host:port>;       -> ok width= height=
//   vncDetach viewer=;
//   vncRunApp command=;                           -> ok window=
//   vncCloseApp window=;
//   vncInput kind=key|pointer key=? x=? y=?;
//   vncFlush;                                     (push updates to viewers)
//   vncSnapshot;                                  -> ok hash= apps={...}
//   vncCheckpoint; / vncRestore;                  (persistent-store state)
#pragma once

#include <map>

#include "apps/framebuffer.hpp"
#include "daemon/daemon.hpp"
#include "store/store_client.hpp"

namespace ace::apps {

inline constexpr int kWorkspaceWidth = 320;
inline constexpr int kWorkspaceHeight = 240;

class VncServerDaemon : public daemon::ServiceDaemon {
 public:
  struct AppWindow {
    int id = 0;
    std::string command;
    Rect frame;
  };

  VncServerDaemon(daemon::Environment& env, daemon::DaemonHost& host,
                  daemon::DaemonConfig config, std::string owner,
                  std::string workspace_name);

  const std::string& owner() const { return owner_; }
  const std::string& workspace_name() const { return workspace_name_; }
  std::string password() const;
  void set_password(std::string password);

  // Enables vncCheckpoint/vncRestore against the given store replicas.
  void enable_persistence(std::vector<net::Address> store_replicas);

  std::uint64_t framebuffer_hash() const;
  std::size_t viewer_count() const;
  std::vector<AppWindow> windows() const;

 private:
  void repaint_locked();
  void push_updates_locked(bool full, const std::vector<net::Address>& to);
  util::Bytes checkpoint_state_locked() const;
  bool restore_state_locked(const util::Bytes& blob);

  std::string owner_;
  std::string workspace_name_;

  mutable std::mutex mu_;
  std::string password_;
  Framebuffer fb_{kWorkspaceWidth, kWorkspaceHeight};
  std::vector<net::Address> viewers_;
  std::map<int, AppWindow> windows_;
  int next_window_ = 1;
  int input_chars_ = 0;
  std::vector<net::Address> store_replicas_;
};

// Viewer: attaches to a server and mirrors its framebuffer from updates.
class VncViewerDaemon : public daemon::ServiceDaemon {
 public:
  VncViewerDaemon(daemon::Environment& env, daemon::DaemonHost& host,
                  daemon::DaemonConfig config);

  // Attaches to `server` using `password`; the server replies with the
  // initial full-frame update over the data channel.
  util::Status attach(const net::Address& server, const std::string& password);
  util::Status detach();

  std::uint64_t framebuffer_hash() const;
  std::uint64_t updates_received() const;
  std::uint64_t update_bytes_received() const;

 protected:
  void on_datagram(const net::Datagram& datagram) override;

 private:
  mutable std::mutex mu_;
  Framebuffer fb_{kWorkspaceWidth, kWorkspaceHeight};
  net::Address server_;
  std::uint64_t updates_ = 0;
  std::uint64_t update_bytes_ = 0;
};

}  // namespace ace::apps
