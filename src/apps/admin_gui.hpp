// Headless model of the ACE Control GUI (paper §1.2, Fig 2): "On the left
// side, available ACE services and devices are listed in a hierarchical
// tree fashion based on their location within ACE ... By selecting a
// service or device on the left side, the appropriate parameter controls
// are displayed to the right."
//
// The model is exactly that data: a room-keyed tree of services built from
// the Room Database + ASD, and per-service parameter panels derived from
// the service's own command semantics (via `info` and `help`). A real GUI
// would render this structure; tests and Scenario 5 drive it directly.
#pragma once

#include "daemon/client.hpp"
#include "services/asd.hpp"

namespace ace::apps {

struct ParameterControl {
  std::string command;   // e.g. "ptzMove"
  std::string help;
  std::vector<std::string> arguments;  // "pan:float", "zoom:float?"
};

struct ServiceNode {
  std::string name;
  net::Address address;
  std::string service_class;
  std::vector<ParameterControl> controls;
};

struct RoomNode {
  std::string room;
  std::vector<ServiceNode> services;
};

class AdminGuiModel {
 public:
  AdminGuiModel(daemon::Environment& env, daemon::AceClient& client);

  // Rebuilds the tree from the ASD (grouped by room) and loads each
  // service's parameter controls from its command semantics.
  util::Status refresh();

  const std::vector<RoomNode>& tree() const { return tree_; }
  const ServiceNode* find_service(const std::string& name) const;

  // "Clicking" a control: issue the command with the given arguments.
  util::Result<cmdlang::CmdLine> invoke(const std::string& service_name,
                                        const cmdlang::CmdLine& cmd);

 private:
  daemon::Environment& env_;
  daemon::AceClient& client_;
  std::vector<RoomNode> tree_;
};

}  // namespace ace::apps
