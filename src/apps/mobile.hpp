// Mobile service client — the "mobile sockets" the paper schedules as
// future work (Ch 9: "research and development of mobile sockets must be
// integrated with the current ACE service infrastructure to handle downed
// ACE services allowing clients to quickly resume their tasks with other
// service instances"). Implemented here:
//
// Calls address services *by directory query*, not by address. When the
// bound instance dies mid-session, the client re-resolves through the ASD
// (excluding the dead instance) and retries against a replacement, counting
// failovers. This is what lets clients ride across service restarts driven
// by the Robustness Manager.
#pragma once

#include <set>

#include "daemon/client.hpp"
#include "services/asd.hpp"

namespace ace::apps {

class MobileServiceClient {
 public:
  // Binds to services whose ASD class matches `class_glob`.
  MobileServiceClient(daemon::Environment& env, daemon::AceClient& client,
                      std::string class_glob);

  // Calls the bound instance; on failure re-resolves and retries once per
  // available replacement instance.
  util::Result<cmdlang::CmdLine> call(const cmdlang::CmdLine& cmd);

  // Current binding (empty host when unbound).
  net::Address bound() const { return bound_; }
  int failovers() const { return failovers_; }

 private:
  util::Status rebind(const std::set<std::string>& exclude);

  daemon::Environment& env_;
  daemon::AceClient& client_;
  std::string class_glob_;
  net::Address bound_;
  int failovers_ = 0;
};

}  // namespace ace::apps
