#include "apps/admin_gui.hpp"

#include <algorithm>
#include <map>

namespace ace::apps {

using cmdlang::CmdLine;
using cmdlang::Word;

AdminGuiModel::AdminGuiModel(daemon::Environment& env,
                             daemon::AceClient& client)
    : env_(env), client_(client) {}

util::Status AdminGuiModel::refresh() {
  auto services = services::AsdClient(client_, env_.asd_address).query("*", "*", "*");
  if (!services.ok()) return services.error();

  std::map<std::string, RoomNode> rooms;
  for (const services::ServiceLocation& loc : services.value()) {
    ServiceNode node;
    node.name = loc.name;
    node.address = loc.address;
    node.service_class = loc.service_class;

    // Pull the service's command list, then each command's schema.
    auto info = client_.call(loc.address, CmdLine("info"), daemon::kCallOk);
    if (info.ok()) {
      if (auto commands = info->get_vector("commands")) {
        for (const auto& elem : commands->elements) {
          if (!elem.is_word() && !elem.is_string()) continue;
          CmdLine help("help");
          help.arg("command", Word{elem.as_text()});
          auto schema = client_.call(loc.address, help, daemon::kCallOk);
          if (!schema.ok()) continue;
          ParameterControl control;
          control.command = elem.as_text();
          control.help = schema->get_text("help");
          if (auto args = schema->get_vector("args")) {
            for (const auto& a : args->elements)
              if (a.is_string() || a.is_word())
                control.arguments.push_back(a.as_text());
          }
          node.controls.push_back(std::move(control));
        }
      }
    }
    std::string room = loc.room.empty() ? "(unplaced)" : loc.room;
    RoomNode& room_node = rooms[room];
    room_node.room = room;
    room_node.services.push_back(std::move(node));
  }

  tree_.clear();
  for (auto& [room, node] : rooms) {
    std::sort(node.services.begin(), node.services.end(),
              [](const ServiceNode& a, const ServiceNode& b) {
                return a.name < b.name;
              });
    tree_.push_back(std::move(node));
  }
  return util::Status::ok_status();
}

const ServiceNode* AdminGuiModel::find_service(const std::string& name) const {
  for (const RoomNode& room : tree_)
    for (const ServiceNode& svc : room.services)
      if (svc.name == name) return &svc;
  return nullptr;
}

util::Result<cmdlang::CmdLine> AdminGuiModel::invoke(
    const std::string& service_name, const cmdlang::CmdLine& cmd) {
  const ServiceNode* svc = find_service(service_name);
  if (!svc)
    return util::Error{util::Errc::not_found,
                       "service not in GUI tree: " + service_name};
  return client_.call(svc->address, cmd, daemon::kCallOk);
}

}  // namespace ace::apps
