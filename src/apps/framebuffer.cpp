#include "apps/framebuffer.hpp"

#include <algorithm>

namespace ace::apps {

namespace {

// 3x5 glyphs for digits, letters (uppercased) and a few symbols; rows are
// bit-packed, LSB = leftmost pixel.
const std::uint8_t* glyph_for(char c) {
  static const std::uint8_t kDigits[10][5] = {
      {7, 5, 5, 5, 7}, {2, 6, 2, 2, 7}, {7, 1, 7, 4, 7}, {7, 1, 7, 1, 7},
      {5, 5, 7, 1, 1}, {7, 4, 7, 1, 7}, {7, 4, 7, 5, 7}, {7, 1, 1, 1, 1},
      {7, 5, 7, 5, 7}, {7, 5, 7, 1, 7}};
  static const std::uint8_t kAlpha[26][5] = {
      {2, 5, 7, 5, 5}, {6, 5, 6, 5, 6}, {3, 4, 4, 4, 3}, {6, 5, 5, 5, 6},
      {7, 4, 6, 4, 7}, {7, 4, 6, 4, 4}, {3, 4, 5, 5, 3}, {5, 5, 7, 5, 5},
      {7, 2, 2, 2, 7}, {1, 1, 1, 5, 2}, {5, 6, 4, 6, 5}, {4, 4, 4, 4, 7},
      {5, 7, 7, 5, 5}, {5, 7, 7, 7, 5}, {2, 5, 5, 5, 2}, {6, 5, 6, 4, 4},
      {2, 5, 5, 7, 3}, {6, 5, 6, 6, 5}, {3, 4, 2, 1, 6}, {7, 2, 2, 2, 2},
      {5, 5, 5, 5, 7}, {5, 5, 5, 5, 2}, {5, 5, 7, 7, 5}, {5, 5, 2, 5, 5},
      {5, 5, 2, 2, 2}, {7, 1, 2, 4, 7}};
  static const std::uint8_t kBlank[5] = {0, 0, 0, 0, 0};
  static const std::uint8_t kDash[5] = {0, 0, 7, 0, 0};
  if (c >= '0' && c <= '9') return kDigits[c - '0'];
  if (c >= 'a' && c <= 'z') return kAlpha[c - 'a'];
  if (c >= 'A' && c <= 'Z') return kAlpha[c - 'A'];
  if (c == '-' || c == '_') return kDash;
  return kBlank;
}

}  // namespace

Framebuffer::Framebuffer(int width, int height)
    : width_(width),
      height_(height),
      tiles_x_((width + kTileSize - 1) / kTileSize),
      tiles_y_((height + kTileSize - 1) / kTileSize),
      pixels_(static_cast<std::size_t>(width) * height, 0),
      dirty_(static_cast<std::size_t>(tiles_x_) * tiles_y_, false) {}

std::uint8_t Framebuffer::pixel(int x, int y) const {
  if (x < 0 || y < 0 || x >= width_ || y >= height_) return 0;
  return pixels_[static_cast<std::size_t>(y) * width_ + x];
}

void Framebuffer::mark_dirty(int x, int y) {
  dirty_[static_cast<std::size_t>(y / kTileSize) * tiles_x_ + x / kTileSize] =
      true;
}

void Framebuffer::set_pixel(int x, int y, std::uint8_t value) {
  if (x < 0 || y < 0 || x >= width_ || y >= height_) return;
  auto& p = pixels_[static_cast<std::size_t>(y) * width_ + x];
  if (p == value) return;
  p = value;
  mark_dirty(x, y);
}

void Framebuffer::fill_rect(const Rect& rect, std::uint8_t value) {
  int x0 = std::max(0, rect.x);
  int y0 = std::max(0, rect.y);
  int x1 = std::min(width_, rect.x + rect.w);
  int y1 = std::min(height_, rect.y + rect.h);
  for (int y = y0; y < y1; ++y)
    for (int x = x0; x < x1; ++x) set_pixel(x, y, value);
}

void Framebuffer::draw_label(int x, int y, const std::string& text,
                             std::uint8_t value) {
  int cx = x;
  for (char c : text) {
    const std::uint8_t* glyph = glyph_for(c);
    for (int row = 0; row < 5; ++row)
      for (int col = 0; col < 3; ++col)
        if (glyph[row] & (1 << (2 - col))) set_pixel(cx + col, y + row, value);
    cx += 4;
  }
}

bool Framebuffer::has_dirty() const {
  return std::any_of(dirty_.begin(), dirty_.end(), [](bool d) { return d; });
}

void Framebuffer::clear_dirty() {
  std::fill(dirty_.begin(), dirty_.end(), false);
}

std::vector<Rect> Framebuffer::dirty_rects() const {
  // Coalesce horizontal runs of dirty tiles into rects.
  std::vector<Rect> rects;
  for (int ty = 0; ty < tiles_y_; ++ty) {
    int run_start = -1;
    for (int tx = 0; tx <= tiles_x_; ++tx) {
      bool d = tx < tiles_x_ &&
               dirty_[static_cast<std::size_t>(ty) * tiles_x_ + tx];
      if (d && run_start < 0) run_start = tx;
      if (!d && run_start >= 0) {
        Rect r;
        r.x = run_start * kTileSize;
        r.y = ty * kTileSize;
        r.w = std::min((tx - run_start) * kTileSize, width_ - r.x);
        r.h = std::min(kTileSize, height_ - r.y);
        rects.push_back(r);
        run_start = -1;
      }
    }
  }
  return rects;
}

util::Bytes Framebuffer::encode_rect(const Rect& rect) const {
  util::ByteWriter w;
  w.u16(static_cast<std::uint16_t>(rect.x));
  w.u16(static_cast<std::uint16_t>(rect.y));
  w.u16(static_cast<std::uint16_t>(rect.w));
  w.u16(static_cast<std::uint16_t>(rect.h));
  // RLE over the rect scanlines.
  util::Bytes plane;
  plane.reserve(static_cast<std::size_t>(rect.w) * rect.h);
  for (int y = rect.y; y < rect.y + rect.h; ++y)
    for (int x = rect.x; x < rect.x + rect.w; ++x)
      plane.push_back(pixel(x, y));
  std::size_t i = 0;
  util::ByteWriter rle;
  while (i < plane.size()) {
    std::uint8_t value = plane[i];
    std::size_t run = 1;
    while (i + run < plane.size() && plane[i + run] == value && run < 255)
      ++run;
    rle.u8(static_cast<std::uint8_t>(run));
    rle.u8(value);
    i += run;
  }
  w.blob(rle.bytes());
  return w.take();
}

util::Bytes Framebuffer::encode_updates(bool full) const {
  std::vector<Rect> rects;
  if (full) {
    rects.push_back(Rect{0, 0, width_, height_});
  } else {
    rects = dirty_rects();
  }
  util::ByteWriter w;
  w.u16(static_cast<std::uint16_t>(rects.size()));
  for (const Rect& r : rects) w.raw(encode_rect(r));
  return w.take();
}

bool Framebuffer::apply_updates(util::BytesView data) {
  util::ByteReader r(data);
  auto count = r.u16();
  if (!count) return false;
  for (std::uint16_t i = 0; i < *count; ++i) {
    auto x = r.u16();
    auto y = r.u16();
    auto w = r.u16();
    auto h = r.u16();
    auto rle = r.blob();
    if (!x || !y || !w || !h || !rle) return false;
    util::Bytes plane;
    plane.reserve(static_cast<std::size_t>(*w) * *h);
    util::ByteReader rr(*rle);
    while (plane.size() < static_cast<std::size_t>(*w) * *h) {
      auto run = rr.u8();
      auto value = rr.u8();
      if (!run || !value || *run == 0) return false;
      for (std::uint8_t k = 0;
           k < *run && plane.size() < static_cast<std::size_t>(*w) * *h; ++k)
        plane.push_back(*value);
    }
    std::size_t idx = 0;
    for (int py = *y; py < *y + *h; ++py)
      for (int px = *x; px < *x + *w; ++px) set_pixel(px, py, plane[idx++]);
  }
  return true;
}

std::uint64_t Framebuffer::content_hash() const {
  std::uint64_t h = 14695981039346656037ULL;
  for (std::uint8_t p : pixels_) {
    h ^= p;
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace ace::apps
