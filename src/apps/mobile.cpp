#include "apps/mobile.hpp"

namespace ace::apps {

MobileServiceClient::MobileServiceClient(daemon::Environment& env,
                                         daemon::AceClient& client,
                                         std::string class_glob)
    : env_(env), client_(client), class_glob_(std::move(class_glob)) {}

util::Status MobileServiceClient::rebind(
    const std::set<std::string>& exclude) {
  auto candidates = services::AsdClient(client_, env_.asd_address).query("*", class_glob_, "*");
  if (!candidates.ok()) return candidates.error();
  for (const services::ServiceLocation& loc : candidates.value()) {
    if (exclude.contains(loc.address.to_string())) continue;
    bound_ = loc.address;
    return util::Status::ok_status();
  }
  bound_ = {};
  return {util::Errc::unavailable,
          "no live instance of class " + class_glob_};
}

util::Result<cmdlang::CmdLine> MobileServiceClient::call(
    const cmdlang::CmdLine& cmd) {
  std::set<std::string> tried;
  if (bound_.host.empty()) {
    if (auto s = rebind(tried); !s.ok()) return s.error();
  }
  // One attempt per distinct instance, until the directory runs dry.
  for (;;) {
    auto reply = client_.call(
        bound_, cmd,
        daemon::CallOptions{.timeout = std::chrono::milliseconds(500)});
    if (reply.ok()) return reply;
    tried.insert(bound_.to_string());
    client_.drop_connection(bound_);
    auto s = rebind(tried);
    if (!s.ok()) return reply;  // surface the last call error
    failovers_++;
  }
}

}  // namespace ace::apps
