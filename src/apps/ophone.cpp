#include "apps/ophone.hpp"

namespace ace::apps {

using cmdlang::CmdLine;
using cmdlang::CommandSpec;
using cmdlang::string_arg;
using cmdlang::Word;
using daemon::CallerInfo;

namespace {
daemon::DaemonConfig phone_defaults(daemon::DaemonConfig config) {
  config.open_data_channel = true;
  if (config.service_class.empty())
    config.service_class = "Service/Communications/OPhone";
  return config;
}
}  // namespace

OPhoneDaemon::OPhoneDaemon(daemon::Environment& env, daemon::DaemonHost& host,
                           daemon::DaemonConfig config, bool auto_answer)
    : ServiceDaemon(env, host, phone_defaults(std::move(config))),
      auto_answer_(auto_answer) {
  register_command(
      CommandSpec("phoneDial", "place a call to another O-Phone")
          .arg(string_arg("peer")),
      [this](const CmdLine& cmd, const CallerInfo&) {
        auto peer = net::Address::parse(cmd.get_text("peer"));
        if (!peer)
          return cmdlang::make_error(util::Errc::invalid,
                                     "peer must be host:port");
        {
          std::scoped_lock lock(mu_);
          if (state_ != State::idle)
            return cmdlang::make_error(util::Errc::conflict, "phone busy");
          state_ = State::ringing;
          peer_ = *peer;
          peer_data_ = *peer;
        }
        CmdLine ring("phoneRing");
        ring.arg("from", address().to_string());
        auto reply = control_client().call(*peer, ring, daemon::kCallOk);
        std::scoped_lock lock(mu_);
        if (!reply.ok()) {
          state_ = State::idle;
          return cmdlang::make_error(reply.error().code,
                                     reply.error().message);
        }
        if (reply->get_text("answered") == "yes") state_ = State::in_call;
        return cmdlang::make_ok();
      });

  register_command(
      CommandSpec("phoneRing", "incoming call signalling (peer-internal)")
          .arg(string_arg("from")),
      [this](const CmdLine& cmd, const CallerInfo&) {
        auto from = net::Address::parse(cmd.get_text("from"));
        if (!from)
          return cmdlang::make_error(util::Errc::invalid, "bad caller");
        std::scoped_lock lock(mu_);
        if (state_ == State::in_call)
          return cmdlang::make_error(util::Errc::conflict, "phone busy");
        peer_ = *from;
        peer_data_ = *from;
        CmdLine reply = cmdlang::make_ok();
        if (auto_answer_) {
          state_ = State::in_call;
          reply.arg("answered", Word{"yes"});
        } else {
          state_ = State::ringing;
          reply.arg("answered", Word{"no"});
        }
        return reply;
      });

  register_command(CommandSpec("phoneAnswer", "answer a ringing call"),
                   [this](const CmdLine&, const CallerInfo&) {
                     std::scoped_lock lock(mu_);
                     if (state_ != State::ringing)
                       return cmdlang::make_error(util::Errc::invalid,
                                                  "no incoming call");
                     state_ = State::in_call;
                     return cmdlang::make_ok();
                   });

  register_command(CommandSpec("phoneHangup", "end the call"),
                   [this](const CmdLine&, const CallerInfo&) {
                     std::scoped_lock lock(mu_);
                     state_ = State::idle;
                     peer_ = {};
                     peer_data_ = {};
                     jitter_buffer_.clear();
                     return cmdlang::make_ok();
                   });

  register_command(
      CommandSpec("phoneStatus", "call state and stream statistics"),
      [this](const CmdLine&, const CallerInfo&) {
        std::scoped_lock lock(mu_);
        CmdLine reply = cmdlang::make_ok();
        const char* s = state_ == State::idle      ? "idle"
                        : state_ == State::ringing ? "ringing"
                                                   : "in_call";
        reply.arg("state", Word{s});
        reply.arg("rx_frames", static_cast<std::int64_t>(rx_frames_));
        reply.arg("lost", static_cast<std::int64_t>(lost_frames_));
        return reply;
      });
}

util::Status OPhoneDaemon::speak(const std::vector<std::int16_t>& samples) {
  net::Address peer_data;
  {
    std::scoped_lock lock(mu_);
    if (state_ != State::in_call)
      return {util::Errc::invalid, "not in a call"};
    peer_data = peer_data_;
  }
  std::size_t offset = 0;
  while (offset < samples.size()) {
    std::size_t take =
        std::min(media::kFrameSamples, samples.size() - offset);
    std::vector<std::int16_t> chunk(samples.begin() + offset,
                                    samples.begin() + offset + take);
    chunk.resize(media::kFrameSamples, 0);
    offset += take;
    util::ByteWriter w;
    std::uint32_t seq;
    util::Bytes adpcm;
    {
      std::scoped_lock lock(mu_);
      seq = tx_sequence_++;
      adpcm = media::adpcm_encode(chunk, encode_state_);
    }
    w.str("ophone");
    w.u32(seq);
    w.u32(static_cast<std::uint32_t>(media::kFrameSamples));
    w.blob(adpcm);
    if (auto s = send_datagram(peer_data, w.take()); !s.ok()) return s;
  }
  return util::Status::ok_status();
}

void OPhoneDaemon::on_datagram(const net::Datagram& datagram) {
  util::ByteReader r(datagram.payload);
  auto tag = r.str();
  auto seq = r.u32();
  auto sample_count = r.u32();
  auto adpcm = r.blob();
  if (!tag || *tag != "ophone" || !seq || !sample_count || !adpcm) return;
  std::scoped_lock lock(mu_);
  if (state_ != State::in_call) return;
  if (*seq > rx_expected_) lost_frames_ += *seq - rx_expected_;
  rx_expected_ = *seq + 1;
  rx_frames_++;
  std::vector<std::int16_t> pcm =
      media::adpcm_decode(*adpcm, *sample_count, decode_state_);
  jitter_buffer_.push_back(std::move(pcm));
  while (jitter_buffer_.size() > kJitterDepth) jitter_buffer_.pop_front();
}

std::vector<std::int16_t> OPhoneDaemon::drain_audio(std::size_t max_frames) {
  std::scoped_lock lock(mu_);
  std::vector<std::int16_t> out;
  std::size_t frames = 0;
  while (!jitter_buffer_.empty() && frames < max_frames) {
    auto& f = jitter_buffer_.front();
    out.insert(out.end(), f.begin(), f.end());
    jitter_buffer_.pop_front();
    frames++;
  }
  return out;
}

OPhoneDaemon::State OPhoneDaemon::state() const {
  std::scoped_lock lock(mu_);
  return state_;
}

std::uint64_t OPhoneDaemon::frames_received() const {
  std::scoped_lock lock(mu_);
  return rx_frames_;
}

std::uint64_t OPhoneDaemon::frames_lost() const {
  std::scoped_lock lock(mu_);
  return lost_frames_;
}

}  // namespace ace::apps
