// Glue between the WSS and the real VNC implementation (paper §5.4):
//
// "VNC usage was slightly modified for ACE ... the VNC password files were
//  directly accessed and modified by the WSS when new workspaces were
//  created and when users accessed their workspaces from remote access
//  points. This guaranteed that the password verification by VNC was made
//  invisible to the normal ACE user."
//
// VncWorkspaceFactory owns that glue: it creates VncServerDaemons on a pool
// of workspace hosts (round-robin — placement proper belongs to SRM/SAL and
// is exercised separately), generates per-workspace passwords the user
// never sees, and on wssShow spins a VncViewerDaemon on the access-point
// host and attaches it with the managed password.
#pragma once

#include <map>
#include <memory>
#include <mutex>

#include "apps/vnc.hpp"
#include "daemon/host.hpp"
#include "services/workspace.hpp"

namespace ace::apps {

class VncWorkspaceFactory {
 public:
  // `server_pool` hosts run workspace servers; `access_points` maps every
  // host name a viewer may be shown on to its DaemonHost.
  VncWorkspaceFactory(daemon::Environment& env,
                      std::vector<daemon::DaemonHost*> server_pool,
                      std::map<std::string, daemon::DaemonHost*> access_points);

  // Installs this factory as the WSS backend.
  void install(services::WssDaemon& wss);

  // Enables workspace state checkpointing against the persistent store.
  void set_store_replicas(std::vector<net::Address> replicas);

  VncServerDaemon* server_at(const net::Address& address);
  VncViewerDaemon* viewer_on(const std::string& host_name);

 private:
  util::Result<net::Address> create_workspace(const std::string& owner,
                                              const std::string& name);
  util::Status show_workspace(const net::Address& server,
                              const std::string& location,
                              const std::string& owner);

  // Chooses the workspace-server host: asks the SRM (Fig 18's SAL->SRM
  // placement path) when one is registered, else round-robins the pool.
  daemon::DaemonHost* pick_server_host();

  daemon::Environment& env_;
  std::vector<daemon::DaemonHost*> server_pool_;
  std::map<std::string, daemon::DaemonHost*> access_points_;
  std::unique_ptr<daemon::AceClient> client_;

  std::mutex mu_;
  std::size_t next_server_host_ = 0;
  std::map<std::string, VncServerDaemon*> servers_;  // by address string
  std::map<std::string, std::string> passwords_;     // by address string
  std::map<std::string, VncViewerDaemon*> viewers_;  // by access-point host
  std::vector<net::Address> store_replicas_;
  util::Rng password_rng_;
};

}  // namespace ace::apps
