// O-Phone — telephone over IP within ACE (paper §5.5): "enables full-duplex
// telephone communication over IP ... If a valid ACE user is near an access
// point, he/she can bring up a workspace and make a phone call."
//
// Each endpoint is a daemon: signalling (dial/answer/hangup) runs over the
// command channel; voice runs as ADPCM-compressed AudioFrames over the data
// channel through a fixed-depth jitter buffer.
//
// Commands:
//   phoneDial peer=<host:port>;          -> ok   (rings the peer)
//   phoneRing from=<host:port>;          (peer-internal; auto-answer policy)
//   phoneAnswer;  phoneHangup;
//   phoneStatus;                         -> ok state= rx_frames= lost=
#pragma once

#include <deque>

#include "daemon/daemon.hpp"
#include "media/audio.hpp"
#include "media/codec.hpp"

namespace ace::apps {

class OPhoneDaemon : public daemon::ServiceDaemon {
 public:
  enum class State { idle, ringing, in_call };

  OPhoneDaemon(daemon::Environment& env, daemon::DaemonHost& host,
               daemon::DaemonConfig config, bool auto_answer = true);

  // Captures microphone samples into the call (compressed + streamed).
  util::Status speak(const std::vector<std::int16_t>& samples);

  // Drains up to `max_frames` from the jitter buffer, as a speaker would.
  std::vector<std::int16_t> drain_audio(std::size_t max_frames = 64);

  State state() const;
  std::uint64_t frames_received() const;
  std::uint64_t frames_lost() const;

 protected:
  void on_datagram(const net::Datagram& datagram) override;

 private:
  bool auto_answer_;
  mutable std::mutex mu_;
  State state_ = State::idle;
  net::Address peer_;           // peer command address
  net::Address peer_data_;      // peer data address
  std::uint32_t tx_sequence_ = 0;
  std::uint32_t rx_expected_ = 0;
  std::uint64_t rx_frames_ = 0;
  std::uint64_t lost_frames_ = 0;
  media::AdpcmState encode_state_;
  media::AdpcmState decode_state_;
  std::deque<std::vector<std::int16_t>> jitter_buffer_;
  static constexpr std::size_t kJitterDepth = 16;
};

}  // namespace ace::apps
