#include "store/robustness.hpp"

#include <algorithm>

#include "daemon/host.hpp"
#include "services/asd.hpp"

namespace ace::store {

using cmdlang::CmdLine;
using cmdlang::CommandSpec;
using cmdlang::string_arg;
using cmdlang::Word;
using cmdlang::word_arg;
using daemon::CallerInfo;

namespace {
daemon::DaemonConfig rm_defaults(daemon::DaemonConfig config) {
  if (config.service_class.empty())
    config.service_class = "Service/Monitor/RobustnessManager";
  return config;
}
}  // namespace

RobustnessManagerDaemon::RobustnessManagerDaemon(daemon::Environment& env,
                                                 daemon::DaemonHost& host,
                                                 daemon::DaemonConfig config,
                                                 RobustnessOptions options)
    : ServiceDaemon(env, host, rm_defaults(std::move(config))),
      options_(options),
      obs_restarts_(&env.metrics().counter("rm.restarts")),
      obs_restart_failures_(&env.metrics().counter("rm.restart_failures")),
      obs_resubscribes_(&env.metrics().counter("rm.resubscribes")),
      obs_cache_invalidations_(&env.metrics().counter("rm.cache_invalidations")),
      obs_pending_(&env.metrics().gauge("rm.pending_relaunches")) {
  register_command(
      CommandSpec("rmRegister", "manage a restart/robust service")
          .arg(word_arg("name"))
          .arg(word_arg("kind").choices({"restart", "robust"}))
          .arg(string_arg("host").optional_arg()),
      [this](const CmdLine& cmd, const CallerInfo&) {
        ManagedService m;
        m.name = cmd.get_text("name");
        m.kind = cmd.get_text("kind");
        m.host = cmd.get_text("host");
        std::scoped_lock lock(mu_);
        // Fresh registration starts from a clean slate: no stale relaunch
        // backoff, and a grace window so the sweep does not immediately
        // flag a service that registered with the RM before the ASD.
        pending_.erase(m.name);
        last_success_[m.name] = std::chrono::steady_clock::now();
        managed_[m.name] = std::move(m);
        return cmdlang::make_ok();
      });

  register_command(
      CommandSpec("rmUnregister", "stop managing a service")
          .arg(word_arg("name")),
      [this](const CmdLine& cmd, const CallerInfo&) {
        std::scoped_lock lock(mu_);
        const std::string name = cmd.get_text("name");
        managed_.erase(name);
        pending_.erase(name);
        last_success_.erase(name);
        obs_pending_->set(static_cast<std::int64_t>(pending_.size()));
        return cmdlang::make_ok();
      });

  register_command(
      CommandSpec("rmNotify", "notification sink for ASD lease expiries")
          .arg(string_arg("source"))
          .arg(word_arg("command"))
          .arg(string_arg("detail")),
      [this](const CmdLine& cmd, const CallerInfo&) {
        auto detail = cmdlang::Parser::parse(cmd.get_text("detail"));
        if (!detail.ok())
          return cmdlang::make_error(util::Errc::parse_error,
                                     "bad notification detail");
        if (detail->name() == "serviceExpired") {
          const std::string name = detail->get_text("name");
          // Evict before acting: the relaunch path must re-resolve through
          // the directory, never through a cache entry for the dead
          // instance.
          if (auto dir = directory()) {
            dir->asd.invalidate(name);
            obs_cache_invalidations_->inc();
          }
          handle_expiry(name);
        }
        return cmdlang::make_ok();
      });

  register_command(
      CommandSpec("rmStatus", "managed services and restart counts"),
      [this](const CmdLine&, const CallerInfo&) {
        std::vector<std::string> rows;
        int restarts = 0;
        {
          std::scoped_lock lock(mu_);
          for (const auto& [name, m] : managed_)
            rows.push_back(name + "|" + m.kind + "|" +
                           std::to_string(m.restarts));
          restarts = total_restarts_;
        }
        CmdLine reply = cmdlang::make_ok();
        reply.arg("managed", cmdlang::string_vector(std::move(rows)));
        reply.arg("restarts", static_cast<std::int64_t>(restarts));
        return reply;
      });
}

std::shared_ptr<RobustnessManagerDaemon::DirectoryClient>
RobustnessManagerDaemon::directory() {
  std::scoped_lock lock(asd_mu_);
  return asd_;
}

util::Status RobustnessManagerDaemon::on_start() {
  if (!env().asd_address.host.empty()) {
    // Fresh client each life (a restart is a new process; nothing cached
    // survives). The old one, if any, dies when its last user lets go.
    auto transport = std::make_unique<daemon::AceClient>(
        env(), host().net_host(), identity());
    daemon::AceClient& t = *transport;
    auto fresh = std::make_shared<DirectoryClient>(DirectoryClient{
        std::move(transport),
        services::AsdClient(t, env().asd_address,
                            services::AsdCacheOptions{.enabled = true})});
    std::scoped_lock lock(asd_mu_);
    asd_ = std::move(fresh);
  }
  // The ASD may not be up yet when we boot; watch_asd() can be re-invoked
  // by the deployer. Try once here, best effort — the watchdog keeps
  // retrying until the subscription sticks.
  (void)watch_asd();
  watchdog_ =
      std::jthread([this](std::stop_token st) { watchdog_loop(st); });
  return util::Status::ok_status();
}

void RobustnessManagerDaemon::on_stop() { watchdog_ = {}; }

void RobustnessManagerDaemon::on_crash() {
  watchdog_ = {};
  // The managed-service table is this process's volatile state; a relaunch
  // starts unconfigured until operators rmRegister again.
  std::scoped_lock lock(mu_);
  managed_.clear();
  pending_.clear();
  last_success_.clear();
  obs_pending_->set(0);
}

util::Status RobustnessManagerDaemon::watch_asd() {
  if (env().asd_address.host.empty())
    return {util::Errc::invalid, "no ASD configured"};
  CmdLine sub("addNotification");
  sub.arg("command", Word{"serviceExpired"});
  sub.arg("service", address().to_string());
  sub.arg("method", Word{"rmNotify"});
  auto reply = control_client().call(env().asd_address, sub, daemon::kCallOk);
  if (!reply.ok()) return reply.error();
  return util::Status::ok_status();
}

bool RobustnessManagerDaemon::subscription_alive() {
  auto reply = control_client().call(env().asd_address,
                                     CmdLine("listNotifications"),
                                     daemon::kCallOk);
  if (!reply.ok()) return true;  // can't tell; don't thrash while ASD is down
  const std::string wanted =
      "serviceExpired>" + address().to_string() + ">rmNotify";
  if (auto vec = reply->get_vector("entries")) {
    for (const auto& elem : vec->elements) {
      if ((elem.is_string() || elem.is_word()) && elem.as_text() == wanted)
        return true;
    }
  }
  return false;
}

void RobustnessManagerDaemon::handle_expiry(const std::string& service_name) {
  {
    std::scoped_lock lock(mu_);
    if (!managed_.contains(service_name)) return;  // not ours to manage
  }
  net_log("warn", "managed service '" + service_name +
                      "' died; relaunching via SAL");
  schedule_relaunch(service_name);
}

void RobustnessManagerDaemon::schedule_relaunch(const std::string& name) {
  std::scoped_lock lock(mu_);
  if (pending_.contains(name)) return;  // attempt already in flight
  pending_[name] =
      PendingRelaunch{std::chrono::steady_clock::now(), /*failures=*/0};
  obs_pending_->set(static_cast<std::int64_t>(pending_.size()));
}

bool RobustnessManagerDaemon::try_relaunch(const std::string& name) {
  std::string host_pref;
  {
    std::scoped_lock lock(mu_);
    auto it = managed_.find(name);
    if (it == managed_.end()) {  // unmanaged while queued
      pending_.erase(name);
      obs_pending_->set(static_cast<std::int64_t>(pending_.size()));
      return true;
    }
    host_pref = it->second.host;
  }

  auto fail = [&](const std::string& why) {
    obs_restart_failures_->inc();
    std::scoped_lock lock(mu_);
    auto& p = pending_[name];
    p.failures++;
    const int exponent = std::min(p.failures - 1, 16);
    auto delay = options_.retry_base * (std::int64_t{1} << exponent);
    delay = std::min(delay, options_.retry_cap);
    p.next_attempt = std::chrono::steady_clock::now() + delay;
    net_log(p.failures >= options_.escalate_after ? "critical" : "error",
            "relaunch of '" + name + "' failed (" +
                std::to_string(p.failures) + "x): " + why);
    return false;
  };

  auto dir = directory();
  if (!dir) return fail("no ASD configured");
  auto sals = dir->asd.query("*", "Service/Launcher/SAL*", "*");
  if (!sals.ok()) return fail("SAL query failed: " + sals.error().to_string());
  if (sals->empty()) return fail("no SAL registered");

  CmdLine launch("salLaunchService");
  launch.arg("name", Word{name});
  if (!host_pref.empty()) launch.arg("host", host_pref);
  auto reply =
      control_client().call(sals->front().address, launch, daemon::kCallOk);
  if (!reply.ok()) return fail(reply.error().to_string());

  obs_restarts_->inc();
  std::scoped_lock lock(mu_);
  auto it = managed_.find(name);
  if (it != managed_.end()) it->second.restarts++;
  total_restarts_++;
  pending_.erase(name);
  last_success_[name] = std::chrono::steady_clock::now();
  obs_pending_->set(static_cast<std::int64_t>(pending_.size()));
  return true;
}

void RobustnessManagerDaemon::watchdog_loop(std::stop_token st) {
  const auto slice = std::chrono::milliseconds(25);
  while (!st.stop_requested()) {
    auto remaining = options_.watch_interval;
    while (remaining.count() > 0 && !st.stop_requested()) {
      std::this_thread::sleep_for(std::min(remaining, slice));
      remaining -= slice;
    }
    if (st.stop_requested()) return;
    if (env().asd_address.host.empty()) continue;  // nothing to watch

    // 1. Self-heal the watching: an ASD that crashed and came back has an
    // empty notification table, so our serviceExpired subscription — the
    // entire restart mechanism — is gone. Detect and re-subscribe.
    if (!subscription_alive() && watch_asd().ok()) {
      obs_resubscribes_->inc();
      net_log("info", "re-subscribed serviceExpired after ASD restart");
    }

    // 2. Sweep for silent deaths: when the ASD dies *before* a managed
    // service's lease ran out, the expiry notification is never fired, so
    // directory absence is the only remaining death signal.
    std::vector<std::string> names;
    {
      std::scoped_lock lock(mu_);
      const auto now = std::chrono::steady_clock::now();
      for (const auto& [name, m] : managed_) {
        if (pending_.contains(name)) continue;  // already being handled
        auto ls = last_success_.find(name);
        if (ls != last_success_.end() &&
            now - ls->second < options_.relaunch_grace)
          continue;  // just (re)launched; give it time to re-register
        names.push_back(name);
      }
    }
    auto dir = directory();
    if (!dir) continue;
    for (const auto& name : names) {
      // Cached lookups: a hit is lease-bounded, so a dead service is never
      // reported live past the instant the directory itself would have
      // dropped it — the sweep loses no detection latency to the cache.
      auto loc = dir->asd.lookup(name);
      if (!loc.ok() && loc.error().code == util::Errc::not_found) {
        net_log("warn", "managed service '" + name +
                            "' missing from directory; relaunching");
        schedule_relaunch(name);
      }
    }

    // 3. Drain due relaunch attempts (with their capped backoff).
    std::vector<std::string> due;
    {
      std::scoped_lock lock(mu_);
      const auto now = std::chrono::steady_clock::now();
      for (const auto& [name, p] : pending_)
        if (p.next_attempt <= now) due.push_back(name);
    }
    for (const auto& name : due) {
      if (st.stop_requested()) return;
      (void)try_relaunch(name);
    }
  }
}

std::vector<RobustnessManagerDaemon::ManagedService>
RobustnessManagerDaemon::managed() const {
  std::scoped_lock lock(mu_);
  std::vector<ManagedService> out;
  for (const auto& [name, m] : managed_) out.push_back(m);
  return out;
}

int RobustnessManagerDaemon::total_restarts() const {
  std::scoped_lock lock(mu_);
  return total_restarts_;
}

}  // namespace ace::store
