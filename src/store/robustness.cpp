#include "store/robustness.hpp"

#include "services/asd.hpp"

namespace ace::store {

using cmdlang::CmdLine;
using cmdlang::CommandSpec;
using cmdlang::string_arg;
using cmdlang::Word;
using cmdlang::word_arg;
using daemon::CallerInfo;

namespace {
daemon::DaemonConfig rm_defaults(daemon::DaemonConfig config) {
  if (config.service_class.empty())
    config.service_class = "Service/Monitor/RobustnessManager";
  return config;
}
}  // namespace

RobustnessManagerDaemon::RobustnessManagerDaemon(daemon::Environment& env,
                                                 daemon::DaemonHost& host,
                                                 daemon::DaemonConfig config)
    : ServiceDaemon(env, host, rm_defaults(std::move(config))) {
  register_command(
      CommandSpec("rmRegister", "manage a restart/robust service")
          .arg(word_arg("name"))
          .arg(word_arg("kind").choices({"restart", "robust"}))
          .arg(string_arg("host").optional_arg()),
      [this](const CmdLine& cmd, const CallerInfo&) {
        ManagedService m;
        m.name = cmd.get_text("name");
        m.kind = cmd.get_text("kind");
        m.host = cmd.get_text("host");
        std::scoped_lock lock(mu_);
        managed_[m.name] = std::move(m);
        return cmdlang::make_ok();
      });

  register_command(
      CommandSpec("rmUnregister", "stop managing a service")
          .arg(word_arg("name")),
      [this](const CmdLine& cmd, const CallerInfo&) {
        std::scoped_lock lock(mu_);
        managed_.erase(cmd.get_text("name"));
        return cmdlang::make_ok();
      });

  register_command(
      CommandSpec("rmNotify", "notification sink for ASD lease expiries")
          .arg(string_arg("source"))
          .arg(word_arg("command"))
          .arg(string_arg("detail")),
      [this](const CmdLine& cmd, const CallerInfo&) {
        auto detail = cmdlang::Parser::parse(cmd.get_text("detail"));
        if (!detail.ok())
          return cmdlang::make_error(util::Errc::parse_error,
                                     "bad notification detail");
        if (detail->name() == "serviceExpired")
          handle_expiry(detail->get_text("name"));
        return cmdlang::make_ok();
      });

  register_command(
      CommandSpec("rmStatus", "managed services and restart counts"),
      [this](const CmdLine&, const CallerInfo&) {
        std::vector<std::string> rows;
        int restarts = 0;
        {
          std::scoped_lock lock(mu_);
          for (const auto& [name, m] : managed_)
            rows.push_back(name + "|" + m.kind + "|" +
                           std::to_string(m.restarts));
          restarts = total_restarts_;
        }
        CmdLine reply = cmdlang::make_ok();
        reply.arg("managed", cmdlang::string_vector(std::move(rows)));
        reply.arg("restarts", static_cast<std::int64_t>(restarts));
        return reply;
      });
}

util::Status RobustnessManagerDaemon::on_start() {
  // The ASD may not be up yet when we boot; watch_asd() can be re-invoked
  // by the deployer. Try once here, best effort.
  (void)watch_asd();
  return util::Status::ok_status();
}

util::Status RobustnessManagerDaemon::watch_asd() {
  if (env().asd_address.host.empty())
    return {util::Errc::invalid, "no ASD configured"};
  CmdLine sub("addNotification");
  sub.arg("command", Word{"serviceExpired"});
  sub.arg("service", address().to_string());
  sub.arg("method", Word{"rmNotify"});
  auto reply = control_client().call(env().asd_address, sub, daemon::kCallOk);
  if (!reply.ok()) return reply.error();
  return util::Status::ok_status();
}

void RobustnessManagerDaemon::handle_expiry(const std::string& service_name) {
  std::string host_pref;
  {
    std::scoped_lock lock(mu_);
    auto it = managed_.find(service_name);
    if (it == managed_.end()) return;  // not ours to manage
    host_pref = it->second.host;
  }

  net_log("warn", "managed service '" + service_name +
                      "' died; relaunching via SAL");

  auto sals = services::AsdClient(control_client(), env().asd_address).query("*", "Service/Launcher/SAL*", "*");
  if (!sals.ok() || sals->empty()) {
    net_log("error", "cannot relaunch '" + service_name +
                         "': no SAL registered");
    return;
  }
  CmdLine launch("salLaunchService");
  launch.arg("name", Word{service_name});
  if (!host_pref.empty()) launch.arg("host", host_pref);
  auto reply = control_client().call(sals->front().address, launch, daemon::kCallOk);
  if (!reply.ok()) {
    net_log("error", "relaunch of '" + service_name +
                         "' failed: " + reply.error().to_string());
    return;
  }
  std::scoped_lock lock(mu_);
  auto it = managed_.find(service_name);
  if (it != managed_.end()) it->second.restarts++;
  total_restarts_++;
}

std::vector<RobustnessManagerDaemon::ManagedService>
RobustnessManagerDaemon::managed() const {
  std::scoped_lock lock(mu_);
  std::vector<ManagedService> out;
  for (const auto& [name, m] : managed_) out.push_back(m);
  return out;
}

int RobustnessManagerDaemon::total_restarts() const {
  std::scoped_lock lock(mu_);
  return total_restarts_;
}

}  // namespace ace::store
