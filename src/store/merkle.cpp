#include "store/merkle.hpp"

#include <algorithm>

#include "store/ring.hpp"

namespace ace::store {

namespace {

std::uint64_t mix2(std::uint64_t a, std::uint64_t b) {
  // Order-sensitive combiner (boost::hash_combine shape, 64-bit constant),
  // so sibling swaps and child/parent confusions change the parent digest.
  std::uint64_t h = a + 0x9e3779b97f4a7c15ULL;
  h ^= b + 0x9e3779b97f4a7c15ULL + (h << 12) + (h >> 4);
  h *= 0xff51afd7ed558ccdULL;
  return h ^ (h >> 33);
}

}  // namespace

MerkleTree::MerkleTree(int depth)
    : depth_(std::clamp(depth, 1, 20)),
      leaf_count_(std::size_t{1} << depth_),
      nodes_(leaf_count_ * 2, 0) {
  // Establish the invariant node[i] = mix2(children) even over empty
  // leaves, so trees with identical content always compare equal no matter
  // what update history produced them.
  for (std::size_t id = leaf_count_ - 1; id >= 1; --id)
    nodes_[id] = mix2(nodes_[2 * id], nodes_[2 * id + 1]);
}

std::uint64_t MerkleTree::entry_hash(std::string_view key,
                                     std::uint64_t version, bool deleted) {
  return mix2(mix2(Ring::hash_key(key), version), deleted ? 0xdeadULL : 0);
}

std::size_t MerkleTree::bucket_of(std::uint64_t key_position) const {
  return static_cast<std::size_t>(key_position >> (64 - depth_));
}

void MerkleTree::update(std::uint64_t key_position, std::uint64_t old_hash,
                        std::uint64_t new_hash) {
  std::size_t id = first_leaf() + bucket_of(key_position);
  nodes_[id] ^= old_hash ^ new_hash;
  for (id /= 2; id >= 1; id /= 2)
    nodes_[id] = mix2(nodes_[2 * id], nodes_[2 * id + 1]);
}

std::uint64_t MerkleTree::node(std::size_t id) const {
  if (id < 1 || id >= nodes_.size()) return 0;
  return nodes_[id];
}

void MerkleTree::clear() {
  std::fill(nodes_.begin(), nodes_.end(), 0);
  for (std::size_t id = leaf_count_ - 1; id >= 1; --id)
    nodes_[id] = mix2(nodes_[2 * id], nodes_[2 * id + 1]);
}

}  // namespace ace::store
