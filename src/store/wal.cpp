#include "store/wal.hpp"

#include <algorithm>
#include <optional>

namespace ace::store {

namespace {

// Anything past this is a corrupt length field, not a real record.
constexpr std::uint32_t kMaxRecordBytes = 64u << 20;

util::Bytes encode_payload(const WalRecord& r) {
  util::ByteWriter w;
  w.u8(r.kind);
  switch (r.kind) {
    case WalRecord::kPut:
      w.str(r.key);
      w.varint(r.version);
      w.blob(r.data);
      break;
    case WalRecord::kDelete:
      w.str(r.key);
      w.varint(r.version);
      break;
    case WalRecord::kHint:
      w.str(r.key);
      w.varint(r.version);
      w.str(r.owner);
      break;
    case WalRecord::kHintDrained:
      w.str(r.key);
      w.str(r.owner);
      break;
    case WalRecord::kErase:
      w.str(r.key);
      break;
    case WalRecord::kSeal:
      w.varint(r.version);
      break;
    default:
      break;
  }
  return w.take();
}

bool decode_payload(util::BytesView payload, WalRecord& out) {
  util::ByteReader r(payload);
  auto kind = r.u8();
  if (!kind) return false;
  out.kind = *kind;
  switch (out.kind) {
    case WalRecord::kPut: {
      auto key = r.str();
      auto version = r.varint();
      auto data = r.blob();
      if (!key || !version || !data) return false;
      out.key = std::move(*key);
      out.version = *version;
      out.data = std::move(*data);
      break;
    }
    case WalRecord::kDelete: {
      auto key = r.str();
      auto version = r.varint();
      if (!key || !version) return false;
      out.key = std::move(*key);
      out.version = *version;
      break;
    }
    case WalRecord::kHint: {
      auto key = r.str();
      auto version = r.varint();
      auto owner = r.str();
      if (!key || !version || !owner) return false;
      out.key = std::move(*key);
      out.version = *version;
      out.owner = std::move(*owner);
      break;
    }
    case WalRecord::kHintDrained: {
      auto key = r.str();
      auto owner = r.str();
      if (!key || !owner) return false;
      out.key = std::move(*key);
      out.owner = std::move(*owner);
      break;
    }
    case WalRecord::kErase: {
      auto key = r.str();
      if (!key) return false;
      out.key = std::move(*key);
      break;
    }
    case WalRecord::kSeal: {
      auto count = r.varint();
      if (!count) return false;
      out.version = *count;
      break;
    }
    default:
      return false;
  }
  return r.at_end();
}

void frame_record(util::ByteWriter& w, const WalRecord& r) {
  util::Bytes payload = encode_payload(r);
  w.u32(static_cast<std::uint32_t>(payload.size()));
  w.u32(util::crc32(payload));
  w.raw(payload);
}

}  // namespace

util::Bytes encode_wal_record(const WalRecord& r) {
  util::ByteWriter w;
  frame_record(w, r);
  return w.take();
}

std::size_t Wal::scan(util::BytesView data,
                      const std::function<void(const WalRecord&)>& fn) {
  std::size_t pos = 0;
  while (data.size() - pos >= 8) {
    util::ByteReader hdr(data.data() + pos, 8);
    std::uint32_t len = *hdr.u32();
    std::uint32_t crc = *hdr.u32();
    if (len > kMaxRecordBytes || data.size() - pos - 8 < len) break;
    util::BytesView payload(data.data() + pos + 8, len);
    if (util::crc32(payload) != crc) break;
    WalRecord r;
    if (!decode_payload(payload, r)) break;
    fn(r);
    pos += 8 + len;
  }
  return pos;
}

Wal::Wal(io::SimDisk& disk, std::string file, WalCounters counters,
         std::uint64_t resume_records, std::size_t resume_bytes)
    : disk_(disk),
      file_(std::move(file)),
      counters_(counters),
      appended_(resume_records),
      synced_(resume_records),
      bytes_(resume_bytes) {}

std::uint64_t Wal::append(const WalRecord& r) {
  util::Bytes frame = encode_wal_record(r);
  std::scoped_lock lock(mu_);
  if (closed_) return 0;
  if (!disk_.append(file_, frame).ok()) return 0;
  bytes_ += frame.size();
  if (counters_.appends) counters_.appends->inc();
  return ++appended_;
}

bool Wal::sync(std::uint64_t lsn) {
  if (lsn == 0) return true;
  std::unique_lock lock(mu_);
  for (;;) {
    if (synced_ >= lsn) return true;
    if (closed_) return false;
    if (!sync_inflight_) {
      // Leader: one fsync covers every record appended so far; waiters
      // that arrived meanwhile ride the same flush (group commit).
      sync_inflight_ = true;
      const std::uint64_t target = appended_;
      lock.unlock();
      util::Status st = disk_.fsync(file_);
      lock.lock();
      sync_inflight_ = false;
      if (st.ok()) {
        synced_ = std::max(synced_, target);
        if (counters_.fsyncs) counters_.fsyncs->inc();
      }
      cv_.notify_all();
      if (!st.ok()) return false;
    } else {
      cv_.wait(lock);
    }
  }
}

bool Wal::sync_all() {
  std::uint64_t target;
  {
    std::scoped_lock lock(mu_);
    target = appended_;
  }
  return sync(target);
}

void Wal::close() {
  std::scoped_lock lock(mu_);
  closed_ = true;
  cv_.notify_all();
}

std::uint64_t Wal::records() const {
  std::scoped_lock lock(mu_);
  return appended_;
}

std::size_t Wal::bytes() const {
  std::scoped_lock lock(mu_);
  return bytes_;
}

DurableLog::DurableLog(io::SimDisk& disk, std::string prefix,
                       WalCounters counters)
    : disk_(disk), prefix_(std::move(prefix)), counters_(counters) {}

std::string DurableLog::wal_file(int gen) const {
  return prefix_ + ".wal." + std::to_string(gen);
}

std::string DurableLog::snap_file(int gen) const {
  return prefix_ + ".snap." + std::to_string(gen);
}

std::shared_ptr<Wal> DurableLog::current() const {
  std::scoped_lock lock(mu_);
  return wal_;
}

namespace {

// Splits "<prefix>.wal.<g>" / "<prefix>.snap.<g>" into kind + generation.
std::optional<std::pair<char, int>> parse_gen(const std::string& name,
                                              const std::string& prefix) {
  if (name.rfind(prefix + ".", 0) != 0) return std::nullopt;
  std::string rest = name.substr(prefix.size() + 1);
  char kind;
  if (rest.rfind("wal.", 0) == 0) {
    kind = 'w';
    rest = rest.substr(4);
  } else if (rest.rfind("snap.", 0) == 0) {
    kind = 's';
    rest = rest.substr(5);
  } else {
    return std::nullopt;
  }
  if (rest.empty() ||
      rest.find_first_not_of("0123456789") != std::string::npos)
    return std::nullopt;
  return std::make_pair(kind, std::stoi(rest));
}

}  // namespace

DurableLog::RecoveryStats DurableLog::recover(
    const std::function<void(const WalRecord&)>& fn) {
  std::scoped_lock lock(mu_);
  RecoveryStats rs;

  // A .tmp is an interrupted compaction that never published; discard it.
  (void)disk_.remove(prefix_ + ".snap.tmp");

  std::vector<int> snap_gens, wal_gens;
  for (const std::string& name : disk_.list(prefix_ + ".")) {
    if (auto parsed = parse_gen(name, prefix_)) {
      (parsed->first == 'w' ? wal_gens : snap_gens).push_back(parsed->second);
    }
  }
  std::sort(snap_gens.rbegin(), snap_gens.rend());
  std::sort(wal_gens.begin(), wal_gens.end());

  // Newest snapshot whose every record decodes, whose bytes are exactly
  // consumed, and that ends in a matching seal. Anything less (bit rot,
  // torn write that somehow got renamed) falls back a generation.
  int snap_gen = -1;
  for (int g : snap_gens) {
    auto data = disk_.read(snap_file(g));
    if (!data.ok()) {
      ++rs.snapshot_fallbacks;
      continue;
    }
    std::vector<WalRecord> records;
    std::size_t consumed =
        Wal::scan(*data, [&](const WalRecord& r) { records.push_back(r); });
    bool sealed = consumed == data->size() && !records.empty() &&
                  records.back().kind == WalRecord::kSeal &&
                  records.back().version == records.size() - 1;
    if (!sealed) {
      ++rs.snapshot_fallbacks;
      continue;
    }
    records.pop_back();  // drop the seal
    for (const WalRecord& r : records) fn(r);
    rs.snapshot_records = records.size();
    snap_gen = g;
    break;
  }

  // Replay every WAL at or after the chosen snapshot, oldest first. LWW
  // apply makes the overlap from a fallback harmless. A short or
  // CRC-failing tail is a torn write: count it and chop it off so it can
  // never prefix future appends.
  std::uint64_t live_records = 0;
  std::size_t live_bytes = 0;
  for (int g : wal_gens) {
    if (g < snap_gen) continue;
    auto data = disk_.read(wal_file(g));
    if (!data.ok()) continue;
    std::uint64_t n = 0;
    std::size_t consumed = Wal::scan(*data, [&](const WalRecord& r) {
      fn(r);
      ++n;
    });
    rs.wal_records += n;
    if (consumed < data->size()) {
      rs.torn_bytes += data->size() - consumed;
      ++rs.torn_tails;
      (void)disk_.truncate(wal_file(g), consumed);
      if (counters_.torn_tail_dropped) counters_.torn_tail_dropped->inc();
    }
    live_records = n;
    live_bytes = consumed;
  }

  gen_ = std::max({snap_gen, wal_gens.empty() ? 0 : wal_gens.back(), 0});
  if (wal_gens.empty() || wal_gens.back() != gen_) {
    live_records = 0;
    live_bytes = 0;
  }
  wal_ = std::make_shared<Wal>(disk_, wal_file(gen_), counters_, live_records,
                               live_bytes);
  rs.generation = gen_;
  recovery_ = rs;
  return rs;
}

WalTicket DurableLog::append(const WalRecord& r) {
  std::shared_ptr<Wal> w = current();
  if (!w) return {};
  std::uint64_t lsn = w->append(r);
  if (lsn == 0) return {};
  return {std::move(w), lsn};
}

bool DurableLog::sync(const WalTicket& t) {
  if (!t.wal) return true;
  return t.wal->sync(t.lsn);
}

bool DurableLog::sync_all() {
  std::shared_ptr<Wal> w = current();
  return w ? w->sync_all() : true;
}

void DurableLog::close() {
  std::shared_ptr<Wal> w = current();
  if (w) w->close();
}

util::Status DurableLog::compact(const std::vector<WalRecord>& records) {
  std::scoped_lock lock(mu_);
  if (!wal_) return {util::Errc::invalid, "durable log not recovered"};
  const int next = gen_ + 1;
  const std::string tmp = prefix_ + ".snap.tmp";
  (void)disk_.remove(tmp);

  util::ByteWriter w;
  for (const WalRecord& r : records) frame_record(w, r);
  WalRecord seal;
  seal.kind = WalRecord::kSeal;
  seal.version = records.size();
  frame_record(w, seal);
  util::Bytes body = w.take();

  // tmp → fsync → atomic rename: a crash anywhere before the rename leaves
  // the previous generation authoritative; after it, the new one is.
  if (auto st = disk_.append(tmp, body); !st.ok()) return st;
  if (auto st = disk_.fsync(tmp); !st.ok()) return st;
  if (auto st = disk_.rename(tmp, snap_file(next)); !st.ok()) return st;

  // Rotate appends to the new generation. The old Wal object stays open:
  // stragglers holding tickets fsync the retained old file harmlessly
  // (their records are durable via the snapshot either way).
  wal_ = std::make_shared<Wal>(disk_, wal_file(next), counters_);
  gen_ = next;

  // Keep generation next-1 as the fallback chain; prune anything older.
  for (const std::string& name : disk_.list(prefix_ + ".")) {
    if (auto parsed = parse_gen(name, prefix_)) {
      if (parsed->second <= next - 2) (void)disk_.remove(name);
    }
  }
  return util::Status::ok_status();
}

int DurableLog::generation() const {
  std::scoped_lock lock(mu_);
  return gen_;
}

std::uint64_t DurableLog::wal_records() const {
  std::shared_ptr<Wal> w = current();
  return w ? w->records() : 0;
}

std::size_t DurableLog::wal_bytes() const {
  std::shared_ptr<Wal> w = current();
  return w ? w->bytes() : 0;
}

}  // namespace ace::store
