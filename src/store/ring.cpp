#include "store/ring.hpp"

#include <algorithm>

namespace ace::store {

namespace {

// FNV-1a over the bytes, then a splitmix64 finalizer so nearby inputs
// (store1:6000, store2:6000, ...) land far apart on the circle.
std::uint64_t mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::uint64_t fnv1a(std::string_view bytes) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : bytes) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace

std::uint64_t Ring::hash_key(std::string_view key) {
  return mix(fnv1a(key));
}

Ring::Ring(std::vector<net::Address> nodes, int vnodes_per_node) {
  std::sort(nodes.begin(), nodes.end());
  nodes.erase(std::unique(nodes.begin(), nodes.end()), nodes.end());
  nodes_ = std::move(nodes);
  if (vnodes_per_node < 1) vnodes_per_node = 1;
  points_.reserve(nodes_.size() * static_cast<std::size_t>(vnodes_per_node));
  for (std::uint32_t i = 0; i < nodes_.size(); ++i) {
    const std::string base = nodes_[i].to_string();
    for (int v = 0; v < vnodes_per_node; ++v)
      points_.emplace_back(hash_key(base + "#" + std::to_string(v)), i);
  }
  std::sort(points_.begin(), points_.end());
}

std::vector<net::Address> Ring::walk(std::string_view key) const {
  std::vector<net::Address> out;
  if (points_.empty()) return out;
  out.reserve(nodes_.size());
  std::vector<bool> seen(nodes_.size(), false);
  auto it = std::lower_bound(
      points_.begin(), points_.end(),
      std::make_pair(hash_key(key), std::uint32_t{0}));
  for (std::size_t steps = 0;
       steps < points_.size() && out.size() < nodes_.size(); ++steps, ++it) {
    if (it == points_.end()) it = points_.begin();
    if (seen[it->second]) continue;
    seen[it->second] = true;
    out.push_back(nodes_[it->second]);
  }
  return out;
}

std::vector<net::Address> Ring::preference_list(std::string_view key,
                                                std::size_t n) const {
  auto order = walk(key);
  if (order.size() > n) order.resize(n);
  return order;
}

bool Ring::contains(const net::Address& node) const {
  return std::binary_search(nodes_.begin(), nodes_.end(), node);
}

}  // namespace ace::store
