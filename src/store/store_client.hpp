// StoreClient — failover client for the replicated persistent store, and
// the checkpoint API that restart/robust applications use (paper §5.2/§5.3):
// state is written under "state/<service>/<key>" so that a restarted
// instance "can quickly be recovered to their last known state".
//
// Writes go to the first reachable replica (that replica propagates to its
// peers); reads fail over across replicas, which both tolerates 1-2 replica
// failures and spreads read load (Ch 6).
#pragma once

#include "daemon/client.hpp"

namespace ace::store {

class StoreClient {
 public:
  StoreClient(daemon::AceClient& client, std::vector<net::Address> replicas);

  util::Status put(const std::string& key, const util::Bytes& data);
  util::Result<util::Bytes> get(const std::string& key);
  util::Status remove(const std::string& key);
  util::Result<std::vector<std::string>> list(const std::string& prefix);

  // Checkpoint helpers for robust applications.
  util::Status save_state(const std::string& service, const std::string& key,
                          const util::Bytes& state);
  util::Result<util::Bytes> load_state(const std::string& service,
                                       const std::string& key);

  // Rotates the preferred read replica (deterministic round-robin), which
  // is how read load is spread across the cluster.
  void rotate();

  const std::vector<net::Address>& replicas() const { return replicas_; }

 private:
  daemon::AceClient& client_;
  std::vector<net::Address> replicas_;
  std::size_t preferred_ = 0;
};

}  // namespace ace::store
