// StoreClient — ring-routing failover client for the sharded persistent
// store, and the checkpoint API that restart/robust applications use
// (paper §5.2/§5.3): state is written under "state/<service>/<key>" so that
// a restarted instance "can quickly be recovered to their last known
// state".
//
// The client derives the same consistent-hash layout the servers use
// (store/ring.hpp is deterministic in the member set), so each request is
// sent to a replica that owns the key — a one-hop read, and a write whose
// coordinator applies locally instead of forwarding. Non-owners still
// accept and coordinate any request, so the owners are merely *preferred*:
// on failure the client falls over to the key's remaining owners, then to
// every other replica, which is what tolerates 1-2 replica failures
// (Ch 6, Fig 17).
#pragma once

#include "daemon/client.hpp"
#include "store/ring.hpp"

namespace ace::store {

class StoreClient;

// Iterator-style pager over the cluster's ordered key space (storeScan).
// Each next_page() returns one ascending page of keys; done() turns true
// once the final page has been fetched. The resume cursor is opaque and
// names, per shard, where the merge stands — so a pager survives
// coordinator failover mid-scan (any replica can resume it).
class StoreScanner {
 public:
  // One page, at most `limit` keys, strictly after everything already
  // returned. An empty page with done() true is the end marker.
  util::Result<std::vector<std::string>> next_page();
  bool done() const { return done_; }

 private:
  friend class StoreClient;
  StoreScanner(StoreClient* client, std::string prefix, int limit)
      : client_(client), prefix_(std::move(prefix)), limit_(limit) {}

  StoreClient* client_;
  std::string prefix_;
  int limit_;
  std::string cursor_;
  bool done_ = false;
};

class StoreClient {
 public:
  // `replication` must match the cluster's StoreOptions.replication for
  // routing to hit owners on the first try (a mismatch only costs extra
  // hops, never correctness).
  StoreClient(daemon::AceClient& client, std::vector<net::Address> replicas,
              int replication = 3);

  util::Status put(const std::string& key, const util::Bytes& data);
  util::Result<util::Bytes> get(const std::string& key);
  util::Status remove(const std::string& key);
  // Full ascending key listing, built by draining the scan() pager — every
  // wire reply stays page-sized, so this is safe at any namespace size
  // (the result vector still holds the whole listing; iterate with scan()
  // when even that is too big).
  util::Result<std::vector<std::string>> list(const std::string& prefix);
  // Paginated ordered scan; prefer this over list() when the namespace
  // should be streamed instead of materialized (every reply is bounded by
  // `limit`).
  StoreScanner scan(const std::string& prefix = "", int limit = 256);

  // Checkpoint helpers for robust applications.
  util::Status save_state(const std::string& service, const std::string& key,
                          const util::Bytes& state);
  util::Result<util::Bytes> load_state(const std::string& service,
                                       const std::string& key);

  // Rotates the preferred replica among each key's owners (deterministic
  // round-robin), which is how read load is spread across the cluster.
  void rotate();

  const std::vector<net::Address>& replicas() const { return replicas_; }

 private:
  friend class StoreScanner;

  // The key's owners (rotated by `preferred_`) followed by every other
  // replica — the failover order for one request.
  std::vector<net::Address> route(const std::string& key) const;

  daemon::AceClient& client_;
  std::vector<net::Address> replicas_;
  Ring ring_;
  std::size_t replication_;
  std::size_t preferred_ = 0;
};

}  // namespace ace::store
