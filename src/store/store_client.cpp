#include "store/store_client.hpp"

#include <algorithm>

#include "store/persistent_store.hpp"

namespace ace::store {

using cmdlang::CmdLine;

StoreClient::StoreClient(daemon::AceClient& client,
                         std::vector<net::Address> replicas, int replication)
    : client_(client),
      replicas_(std::move(replicas)),
      ring_(replicas_, kDefaultVnodes),
      replication_(static_cast<std::size_t>(std::max(1, replication))) {}

void StoreClient::rotate() {
  if (!replicas_.empty()) preferred_ = (preferred_ + 1) % replicas_.size();
}

std::vector<net::Address> StoreClient::route(const std::string& key) const {
  std::vector<net::Address> order = ring_.preference_list(key, replication_);
  if (order.empty()) order = replicas_;
  if (!order.empty())
    std::rotate(order.begin(), order.begin() + preferred_ % order.size(),
                order.end());
  for (const net::Address& replica : replicas_)
    if (std::find(order.begin(), order.end(), replica) == order.end())
      order.push_back(replica);
  return order;
}

util::Status StoreClient::put(const std::string& key,
                              const util::Bytes& data) {
  CmdLine cmd("storePut");
  cmd.arg("key", key);
  cmd.arg("data", hex_of(data));
  for (const net::Address& replica : route(key)) {
    auto reply = client_.call(
        replica, cmd,
        daemon::CallOptions{.timeout = std::chrono::milliseconds(800)});
    if (reply.ok() && cmdlang::is_ok(reply.value()))
      return util::Status::ok_status();
  }
  return {util::Errc::unavailable, "no persistent-store replica reachable"};
}

util::Result<util::Bytes> StoreClient::get(const std::string& key) {
  CmdLine cmd("storeGet");
  cmd.arg("key", key);
  util::Error last{util::Errc::unavailable, "no replica reachable"};
  for (const net::Address& replica : route(key)) {
    auto reply = client_.call(
        replica, cmd,
        daemon::CallOptions{.timeout = std::chrono::milliseconds(800)});
    if (!reply.ok()) {
      last = reply.error();
      continue;
    }
    if (cmdlang::is_error(reply.value())) {
      const util::Error err = cmdlang::reply_error(reply.value());
      if (err.code == util::Errc::unavailable) {
        // The coordinator answered but could not reach the key's owners;
        // another coordinator may sit on the right side of a partition.
        last = err;
        continue;
      }
      // A definitive not_found from a live replica is authoritative enough
      // for the simulation's read semantics.
      return err;
    }
    return bytes_of_hex(reply->get_text("data"));
  }
  return last;
}

util::Status StoreClient::remove(const std::string& key) {
  CmdLine cmd("storeDelete");
  cmd.arg("key", key);
  for (const net::Address& replica : route(key)) {
    auto reply = client_.call(
        replica, cmd,
        daemon::CallOptions{.timeout = std::chrono::milliseconds(800)});
    if (reply.ok() && cmdlang::is_ok(reply.value()))
      return util::Status::ok_status();
  }
  return {util::Errc::unavailable, "no persistent-store replica reachable"};
}

util::Result<std::vector<std::string>> StoreClient::list(
    const std::string& prefix) {
  CmdLine cmd("storeList");
  cmd.arg("prefix", prefix);
  // A prefix spans ring arcs, so any replica works as the aggregation
  // coordinator; plain failover order.
  for (std::size_t i = 0; i < replicas_.size(); ++i) {
    const net::Address& replica =
        replicas_[(preferred_ + i) % replicas_.size()];
    auto reply = client_.call(
        replica, cmd,
        daemon::CallOptions{.timeout = std::chrono::milliseconds(800)});
    if (!reply.ok() || !cmdlang::is_ok(reply.value())) continue;
    std::vector<std::string> keys;
    if (auto vec = reply->get_vector("keys")) {
      for (const auto& elem : vec->elements)
        if (elem.is_string() || elem.is_word()) keys.push_back(elem.as_text());
    }
    return keys;
  }
  return util::Error{util::Errc::unavailable, "no replica reachable"};
}

util::Status StoreClient::save_state(const std::string& service,
                                     const std::string& key,
                                     const util::Bytes& state) {
  return put("state/" + service + "/" + key, state);
}

util::Result<util::Bytes> StoreClient::load_state(const std::string& service,
                                                  const std::string& key) {
  return get("state/" + service + "/" + key);
}

}  // namespace ace::store
