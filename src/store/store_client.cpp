#include "store/store_client.hpp"

#include "store/persistent_store.hpp"

namespace ace::store {

using cmdlang::CmdLine;

StoreClient::StoreClient(daemon::AceClient& client,
                         std::vector<net::Address> replicas)
    : client_(client), replicas_(std::move(replicas)) {}

void StoreClient::rotate() {
  if (!replicas_.empty()) preferred_ = (preferred_ + 1) % replicas_.size();
}

util::Status StoreClient::put(const std::string& key,
                              const util::Bytes& data) {
  CmdLine cmd("storePut");
  cmd.arg("key", key);
  cmd.arg("data", hex_of(data));
  for (std::size_t i = 0; i < replicas_.size(); ++i) {
    const net::Address& replica =
        replicas_[(preferred_ + i) % replicas_.size()];
    auto reply = client_.call(
        replica, cmd,
        daemon::CallOptions{.timeout = std::chrono::milliseconds(800)});
    if (reply.ok() && cmdlang::is_ok(reply.value()))
      return util::Status::ok_status();
  }
  return {util::Errc::unavailable, "no persistent-store replica reachable"};
}

util::Result<util::Bytes> StoreClient::get(const std::string& key) {
  CmdLine cmd("storeGet");
  cmd.arg("key", key);
  util::Error last{util::Errc::unavailable, "no replica reachable"};
  for (std::size_t i = 0; i < replicas_.size(); ++i) {
    const net::Address& replica =
        replicas_[(preferred_ + i) % replicas_.size()];
    auto reply = client_.call(
        replica, cmd,
        daemon::CallOptions{.timeout = std::chrono::milliseconds(800)});
    if (!reply.ok()) {
      last = reply.error();
      continue;
    }
    if (cmdlang::is_error(reply.value())) {
      // A definitive not_found from a live replica is authoritative enough
      // for the simulation's read semantics.
      return cmdlang::reply_error(reply.value());
    }
    return bytes_of_hex(reply->get_text("data"));
  }
  return last;
}

util::Status StoreClient::remove(const std::string& key) {
  CmdLine cmd("storeDelete");
  cmd.arg("key", key);
  for (std::size_t i = 0; i < replicas_.size(); ++i) {
    const net::Address& replica =
        replicas_[(preferred_ + i) % replicas_.size()];
    auto reply = client_.call(
        replica, cmd,
        daemon::CallOptions{.timeout = std::chrono::milliseconds(800)});
    if (reply.ok() && cmdlang::is_ok(reply.value()))
      return util::Status::ok_status();
  }
  return {util::Errc::unavailable, "no persistent-store replica reachable"};
}

util::Result<std::vector<std::string>> StoreClient::list(
    const std::string& prefix) {
  CmdLine cmd("storeList");
  cmd.arg("prefix", prefix);
  for (std::size_t i = 0; i < replicas_.size(); ++i) {
    const net::Address& replica =
        replicas_[(preferred_ + i) % replicas_.size()];
    auto reply = client_.call(
        replica, cmd,
        daemon::CallOptions{.timeout = std::chrono::milliseconds(800)});
    if (!reply.ok() || !cmdlang::is_ok(reply.value())) continue;
    std::vector<std::string> keys;
    if (auto vec = reply->get_vector("keys")) {
      for (const auto& elem : vec->elements)
        if (elem.is_string() || elem.is_word()) keys.push_back(elem.as_text());
    }
    return keys;
  }
  return util::Error{util::Errc::unavailable, "no replica reachable"};
}

util::Status StoreClient::save_state(const std::string& service,
                                     const std::string& key,
                                     const util::Bytes& state) {
  return put("state/" + service + "/" + key, state);
}

util::Result<util::Bytes> StoreClient::load_state(const std::string& service,
                                                  const std::string& key) {
  return get("state/" + service + "/" + key);
}

}  // namespace ace::store
