#include "store/store_client.hpp"

#include <algorithm>

#include "store/persistent_store.hpp"

namespace ace::store {

using cmdlang::CmdLine;

StoreClient::StoreClient(daemon::AceClient& client,
                         std::vector<net::Address> replicas, int replication)
    : client_(client),
      replicas_(std::move(replicas)),
      ring_(replicas_, kDefaultVnodes),
      replication_(static_cast<std::size_t>(std::max(1, replication))) {}

void StoreClient::rotate() {
  if (!replicas_.empty()) preferred_ = (preferred_ + 1) % replicas_.size();
}

std::vector<net::Address> StoreClient::route(const std::string& key) const {
  std::vector<net::Address> order = ring_.preference_list(key, replication_);
  if (order.empty()) order = replicas_;
  if (!order.empty())
    std::rotate(order.begin(), order.begin() + preferred_ % order.size(),
                order.end());
  for (const net::Address& replica : replicas_)
    if (std::find(order.begin(), order.end(), replica) == order.end())
      order.push_back(replica);
  return order;
}

util::Status StoreClient::put(const std::string& key,
                              const util::Bytes& data) {
  CmdLine cmd("storePut");
  cmd.arg("key", key);
  cmd.arg("data", hex_of(data));
  for (const net::Address& replica : route(key)) {
    auto reply = client_.call(
        replica, cmd,
        daemon::CallOptions{.timeout = std::chrono::milliseconds(800)});
    if (reply.ok() && cmdlang::is_ok(reply.value()))
      return util::Status::ok_status();
  }
  return {util::Errc::unavailable, "no persistent-store replica reachable"};
}

util::Result<util::Bytes> StoreClient::get(const std::string& key) {
  CmdLine cmd("storeGet");
  cmd.arg("key", key);
  util::Error last{util::Errc::unavailable, "no replica reachable"};
  for (const net::Address& replica : route(key)) {
    auto reply = client_.call(
        replica, cmd,
        daemon::CallOptions{.timeout = std::chrono::milliseconds(800)});
    if (!reply.ok()) {
      last = reply.error();
      continue;
    }
    if (cmdlang::is_error(reply.value())) {
      const util::Error err = cmdlang::reply_error(reply.value());
      if (err.code == util::Errc::unavailable) {
        // The coordinator answered but could not reach the key's owners;
        // another coordinator may sit on the right side of a partition.
        last = err;
        continue;
      }
      // A definitive not_found from a live replica is authoritative enough
      // for the simulation's read semantics.
      return err;
    }
    return bytes_of_hex(reply->get_text("data"));
  }
  return last;
}

util::Status StoreClient::remove(const std::string& key) {
  CmdLine cmd("storeDelete");
  cmd.arg("key", key);
  for (const net::Address& replica : route(key)) {
    auto reply = client_.call(
        replica, cmd,
        daemon::CallOptions{.timeout = std::chrono::milliseconds(800)});
    if (reply.ok() && cmdlang::is_ok(reply.value()))
      return util::Status::ok_status();
  }
  return {util::Errc::unavailable, "no persistent-store replica reachable"};
}

util::Result<std::vector<std::string>> StoreClient::list(
    const std::string& prefix) {
  // Drain the storeScan pager rather than asking for one giant storeList
  // reply: every RPC stays bounded by the page limit, so the aggregate
  // scales with namespace size instead of racing a whole-namespace reply
  // against the call timeout — and a replica lost mid-list just fails the
  // next page over to a peer (the cursor is coordinator-independent).
  std::vector<std::string> keys;
  StoreScanner pager = scan(prefix, 256);
  while (!pager.done()) {
    auto page = pager.next_page();
    if (!page.ok()) return page.error();
    keys.insert(keys.end(), std::make_move_iterator(page->begin()),
                std::make_move_iterator(page->end()));
  }
  return keys;
}

StoreScanner StoreClient::scan(const std::string& prefix, int limit) {
  return StoreScanner(this, prefix, std::max(1, limit));
}

util::Result<std::vector<std::string>> StoreScanner::next_page() {
  if (done_) return std::vector<std::string>{};
  CmdLine cmd("storeScan");
  cmd.arg("prefix", prefix_);
  cmd.arg("cursor", cursor_);
  cmd.arg("limit", static_cast<std::int64_t>(limit_));
  util::Error last{util::Errc::unavailable, "no replica reachable"};
  const std::size_t n = client_->replicas_.size();
  for (std::size_t i = 0; i < n; ++i) {
    // Any replica coordinates a scan page; the cursor itself records where
    // each shard stands, so failing over mid-scan neither skips nor
    // repeats keys.
    const net::Address& replica =
        client_->replicas_[(client_->preferred_ + i) % n];
    auto reply = client_->client_.call(
        replica, cmd,
        daemon::CallOptions{.timeout = std::chrono::milliseconds(800)});
    if (!reply.ok()) {
      last = reply.error();
      continue;
    }
    if (!cmdlang::is_ok(reply.value())) {
      last = cmdlang::reply_error(reply.value());
      continue;
    }
    std::vector<std::string> keys;
    if (auto vec = reply->get_vector("keys"))
      for (const auto& elem : vec->elements)
        if (elem.is_string() || elem.is_word()) keys.push_back(elem.as_text());
    cursor_ = reply->get_text("next");
    done_ = reply->get_text("done") == "yes" || cursor_.empty();
    return keys;
  }
  return last;
}

util::Status StoreClient::save_state(const std::string& service,
                                     const std::string& key,
                                     const util::Bytes& state) {
  return put("state/" + service + "/" + key, state);
}

util::Result<util::Bytes> StoreClient::load_state(const std::string& service,
                                                  const std::string& key) {
  return get("state/" + service + "/" + key);
}

}  // namespace ace::store
