// ACE Persistent Store (paper Ch 6, Fig 17): "a cluster of three persistent
// store servers ... completely redundant storage systems guarantee safe and
// up to date storage of information. If ... one or two of the servers fail
// or crash, ACE services may still access the stored information."
//
// Each replica is an ordinary ACE service daemon holding an
// object-oriented namespace ("a straightforward object-oriented namespace
// approach to storing application and program state information"):
// '/'-separated keys mapping to versioned blobs.
//
// Scaled-out design (Dynamo-shaped; see docs/store.md for the operator
// guide):
//   * Sharding — a consistent-hash ring (store/ring.hpp) assigns every key
//     a preference list of N replicas. With N >= cluster size this reduces
//     to the paper's "3 copies of everything"; with more nodes the
//     namespace shards and capacity scales horizontally.
//   * Quorum replication — any replica coordinates a write: it applies
//     locally when it owns the key and fans the record out to the rest of
//     the preference list. `StoreOptions.write_quorum` (W) picks the ack
//     count that makes the write durable-acknowledged; reads consult
//     `read_quorum` (R) copies and return the newest version.
//   * Sloppy quorum + hinted handoff — when a preference-list peer is
//     down, the coordinator hands the write to the next ring successor (or
//     keeps a local hint when the ring is exhausted) tagged with the
//     intended owner; hints drain automatically when the owner returns.
//     This is how the Fig 17 "1 or 2 of 3 may fail" availability claim
//     survives sharding.
//   * Group commit — replica fan-out rides a per-peer batcher
//     (store/batch.hpp) that coalesces concurrent writes into one framed
//     `storeReplicateBatch` per peer per flush, on the v2 pipelined
//     channel.
//   * Merkle anti-entropy — a rejoining replica compares O(log n) digest
//     tree hashes (`storeDigestTree`) against each peer and fetches only
//     divergent buckets, replacing the O(n) full `storeDigest` exchange
//     (kept as an ablation/back-compat path).
//   * Local durability — with `StoreOptions.disk` attached, every applied
//     record (and hinted-handoff obligation) is logged to a CRC-framed WAL
//     on a fault-injectable simulated disk (io::SimDisk) and group-commit
//     fsynced before the write acks; compaction snapshots state behind an
//     atomic rename, and on_start recovers snapshot + WAL so anti-entropy
//     afterwards only covers the divergence tail. docs/store.md has the
//     full recovery walkthrough.
//
// Command set (docs/commands.md is the cross-checked reference):
//   storePut key= data=<hex>;          -> ok version= acks=
//   storeGet key= scope=?;             -> ok data=<hex> version=
//   storeGetDigest key=;               -> ok version= deleted=   (no data)
//   storeDelete key=;                  -> ok version= acks=
//   storeScan prefix=? cursor=? limit=? scope=?;
//                                      -> ok keys={...} next= done=
//   storeList prefix=? scope=?;        -> ok keys={...} (shim over storeScan)
//   storeCount;                        -> ok count=        (this replica)
//   storeDigest;                       -> ok entries={key|version|flag ...}
//   storeDigestTree nodes=;            -> ok depth= leaves= hashes={id|hash}
//   storeDigestBucket bucket=;         -> ok entries={key|version|flag ...}
//   storeSync;                         -> ok fetched=
//   storeWalStats;                     -> ok durable= generation= ...
//   storeCompact;                      -> ok generation= records=
//   storeReplicate key= version= data= deleted= hint=?;           (internal)
//   storeReplicateBatch entries=;      -> ok applied=              (internal)
#pragma once

#include <map>
#include <set>

#include "daemon/daemon.hpp"
#include "io/sim_disk.hpp"
#include "net/reactor.hpp"
#include "store/batch.hpp"
#include "store/merkle.hpp"
#include "store/ring.hpp"
#include "store/wal.hpp"

namespace ace::store {

struct StoreOptions {
  // Peer liveness probe cadence. Each replica pings its peers; a peer
  // transitioning unreachable -> reachable (either side of a partition
  // heal, or a peer restart) triggers an automatic anti-entropy round and
  // drains any hinted-handoff writes held for that peer.
  std::chrono::milliseconds probe_interval{250};
  std::chrono::milliseconds probe_timeout{150};

  // N: replicas per key (clamped to cluster size). With the default 3 and
  // a 3-node cluster, every node owns every key (Fig 17).
  int replication = 3;
  // W: acknowledgements required before a write returns ok. 0 keeps the
  // seed's best-effort semantics: wait for every preference-list attempt,
  // then succeed regardless of the ack count. W > 0 is a strict sloppy
  // quorum: ok once W replicas (owners or hinted fallbacks) hold the
  // write, error `unavailable` otherwise.
  int write_quorum = 0;
  // R: copies consulted per cluster-scope read; the newest version wins.
  // 1 serves straight from local state when this replica owns the key.
  int read_quorum = 1;
  // Virtual nodes per replica on the consistent-hash ring.
  int vnodes = kDefaultVnodes;
  // Merkle digest tree depth: 2^depth anti-entropy buckets.
  int merkle_depth = 12;

  // Group-commit replication (false: seed-style sequential per-write
  // storeReplicate RPCs — kept as the E16 ablation baseline).
  bool group_commit = true;
  // Extra batcher coalescing wait before each flush (0 = flush when idle;
  // the in-flight RPC is the natural batching window).
  std::chrono::milliseconds flush_interval{0};
  // Per-peer replication deadline (batched and direct).
  std::chrono::milliseconds replicate_timeout{300};

  // Merkle-tree anti-entropy (false: full storeDigest scan — ablation).
  bool merkle_sync = true;

  // Digest reads: a cluster-scope storeGet fetches one full value plus
  // version digests (storeGetDigest) from the other preference-list
  // replicas, all in parallel on the pipelined channel. false restores the
  // legacy serial full-value quorum loop (the E20 ablation baseline).
  bool digest_reads = true;
  // Read repair: a replica observed stale or absent during a read gets an
  // async storeReplicate of the winning record on the ops pool, so hot
  // keys converge without waiting for Merkle anti-entropy.
  bool read_repair = true;
  // storeScan page size: the default when the caller omits limit=, and the
  // hard per-page cap any request is clamped to.
  int scan_limit = 256;
  int scan_limit_max = 4096;
  // storeList compatibility shim: keys per reply cap (the shim pages
  // through storeScan and stops here, flagging the reply truncated=yes).
  int list_max_keys = 100000;

  // Local durability. When a disk is attached every applied record is
  // WAL-logged (CRC-framed, group-commit fsynced before the write acks),
  // hints persist across restarts, on_start recovers snapshot + WAL, and
  // a process crash wipes volatile state (recovery is the real contract).
  // nullptr keeps the seed's pure in-memory replica.
  std::shared_ptr<io::SimDisk> disk;
  // Compact (snapshot + WAL rotation) when the live WAL outgrows this,
  // checked each monitor round. 0 = manual storeCompact only.
  std::size_t compact_wal_bytes = 1u << 20;
};

// Rejects contradictory configurations (W or R above N, non-positive
// vnodes, out-of-range merkle_depth) with a clear message. Checked at
// daemon construction; a failed validation makes start() fail.
util::Status validate_store_options(const StoreOptions& options);

class PersistentStoreDaemon : public daemon::ServiceDaemon {
 public:
  struct ObjectRecord {
    // hybrid clock (wall microseconds, Lamport-absorbed) << 8 | replica id
    std::uint64_t version = 0;
    util::Bytes data;
    bool deleted = false;
  };

  PersistentStoreDaemon(daemon::Environment& env, daemon::DaemonHost& host,
                        daemon::DaemonConfig config, int replica_id,
                        StoreOptions options = {});

  // Configures the peer replicas this server synchronizes with (self is
  // added to the ring implicitly).
  void set_peers(std::vector<net::Address> peers);

  std::size_t object_count() const;  // live (non-tombstone) objects
  std::optional<ObjectRecord> object(const std::string& key) const;

  // Runs one anti-entropy round against all reachable peers; returns the
  // number of objects fetched. (Also exposed as the storeSync command, and
  // triggered automatically on boot and on peer-rejoin detection.) Uses the
  // Merkle digest tree unless StoreOptions.merkle_sync is off.
  util::Result<std::int64_t> sync_from_peers();

  // Introspection for tests and benches.
  const Ring& ring() const { return ring_; }
  std::uint64_t merkle_root() const;
  std::size_t hints_pending() const;  // hinted writes awaiting handoff
  // Durable mode: stats of the most recent on_start recovery.
  DurableLog::RecoveryStats last_recovery() const;
  // Snapshot local state and rotate the WAL now (also the storeCompact
  // command). Returns the number of records snapshotted.
  util::Result<std::int64_t> compact_now();

 protected:
  util::Status on_start() override;
  void on_stop() override;
  void on_crash() override;

 private:
  struct WriteOutcome {
    int acks = 0;
    bool quorum_met = false;
  };

  std::uint64_t next_version();
  // Applies a record (LWW) and, in durable mode, WAL-logs it. The ticket
  // must be group-commit synced before the write is acknowledged.
  WalTicket apply(const std::string& key, const ObjectRecord& record);
  // Core of apply(); caller holds mu_. `log` is false during recovery
  // replay (the record came *from* the WAL).
  WalTicket apply_locked(const std::string& key, const ObjectRecord& record,
                         bool log);
  void erase_local(const std::string& key);  // drained hint, not an owner
  void erase_local_locked(const std::string& key, bool log);
  // Folds one recovered snapshot/WAL record into in-memory state.
  void fold_recovered(const WalRecord& r);
  void rebuild_ring();
  void shutdown_runtime(bool flush);
  void maybe_compact();

  // One page of an ordered prefix scan.
  struct ScanPage {
    std::vector<std::string> keys;  // ascending, live keys only
    // Resume point when !done: the last key examined (tombstones included,
    // so a tombstone-dense page still advances).
    std::string next;
    bool done = false;
  };
  // Cluster-scope scan state: where the merge stands per peer.
  struct PeerCursor {
    net::Address addr;
    bool exhausted = false;
    std::string last;  // resume after this key
  };
  struct ClusterPage {
    std::vector<std::string> keys;
    std::string next;  // opaque resume blob; empty when done
    bool done = false;
  };

  // Coordinates one write: local apply (when owner) + preference-list
  // fan-out + sloppy-quorum fallback with hinted handoff.
  WriteOutcome coordinate_write(const std::string& key,
                                const ObjectRecord& record);
  // Cluster-scope read gathering up to R copies; newest version wins.
  // Dispatches to the parallel digest path or the legacy serial loop.
  cmdlang::CmdLine coordinate_read(const std::string& key);
  cmdlang::CmdLine coordinate_read_digest(const std::string& key);
  cmdlang::CmdLine coordinate_read_serial(const std::string& key);
  // Pushes the winning record to replicas observed stale/absent during a
  // read — async on the ops pool, off the reply path.
  void schedule_read_repair(const std::string& key, const ObjectRecord& winner,
                            std::vector<net::Address> stale);
  // One ordered page of this replica's live keys under `prefix`, resuming
  // strictly after `cursor`.
  ScanPage scan_local(const std::string& prefix, const std::string& cursor,
                      std::size_t limit) const;
  // Per-peer cursor merge over every shard's local pages (parallel
  // fan-out; self answers without an RPC).
  util::Result<ClusterPage> scan_cluster(const std::string& prefix,
                                         const std::string& cursor_blob,
                                         std::size_t limit);
  static std::string encode_scan_cursor(const std::vector<PeerCursor>& entries);
  static std::optional<std::vector<PeerCursor>> parse_scan_cursor(
      const std::string& blob);

  bool owns(const std::string& key) const;
  WalTicket record_hint(const net::Address& intended, const std::string& key,
                        std::uint64_t version);
  void drain_hints(const net::Address& peer);

  std::int64_t sync_with_peer_full(const net::Address& peer);
  std::int64_t sync_with_peer_merkle(const net::Address& peer);
  // Applies one "key|version|flag" digest entry, fetching the payload from
  // `peer` when it is newer than local state. Returns 1 if applied.
  std::int64_t ingest_digest_entry(const net::Address& peer,
                                   const std::string& entry);

  void monitor_loop(std::stop_token st);

  int replica_id_;
  StoreOptions options_;
  util::Status options_status_;  // construction-time validation verdict
  mutable std::mutex mu_;
  std::map<std::string, ObjectRecord> objects_;
  std::uint64_t lamport_ = 0;
  std::vector<net::Address> peers_;
  Ring ring_;  // self + peers; rebuilt by set_peers and on_start
  MerkleTree tree_;
  // Per-bucket key index so storeDigestBucket answers in O(bucket size).
  std::vector<std::set<std::string>> bucket_keys_;
  // Hinted handoff ledger: intended owner -> key -> version it still needs.
  std::map<net::Address, std::map<std::string, std::uint64_t>> hints_;
  std::shared_ptr<ReplicationBatcher> batcher_;  // swapped per start
  std::shared_ptr<DurableLog> dlog_;  // durable mode only; swapped per start
  // Revoked in shutdown_runtime so in-flight read fan-out / read-repair
  // tasks on the ops pool can never touch a dead daemon. Re-armed (fresh
  // guard) each on_start.
  net::TaskGuard read_tasks_;
  // Cumulative per-replica durability stats (storeWalStats; the obs
  // counters aggregate across the whole deployment).
  std::uint64_t recoveries_ = 0;
  std::uint64_t compactions_ = 0;
  std::uint64_t torn_tails_ = 0;
  std::uint64_t snapshot_fallbacks_ = 0;
  DurableLog::RecoveryStats recovery_stats_;
  std::jthread monitor_;

  // Cached obs cells (deployment registry, `store.*` names).
  obs::Counter* obs_writes_;
  obs::Counter* obs_replica_acks_;
  obs::Counter* obs_rejoin_syncs_;
  obs::Counter* obs_hints_recorded_;
  obs::Counter* obs_hints_drained_;
  obs::Counter* obs_quorum_failures_;
  obs::Counter* obs_tree_rpcs_;
  obs::Counter* obs_bucket_rpcs_;
  obs::Counter* obs_sync_fetched_;
  obs::Counter* obs_digest_reads_;
  obs::Counter* obs_digest_mismatches_;
  obs::Counter* obs_read_repairs_;
  obs::Counter* obs_read_unavailable_;
  obs::Counter* obs_scan_pages_;
  obs::Counter* obs_wal_appends_;
  obs::Counter* obs_wal_fsyncs_;
  obs::Counter* obs_wal_torn_;
  obs::Counter* obs_recoveries_;
  obs::Counter* obs_compactions_;
  obs::Counter* obs_snap_fallbacks_;
};

std::string hex_of(const util::Bytes& data);
util::Bytes bytes_of_hex(const std::string& hex);

}  // namespace ace::store
