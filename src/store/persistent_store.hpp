// ACE Persistent Store (paper Ch 6, Fig 17): "a cluster of three persistent
// store servers ... completely redundant storage systems guarantee safe and
// up to date storage of information. If ... one or two of the servers fail
// or crash, ACE services may still access the stored information."
//
// Each replica is an ordinary ACE service daemon holding an
// object-oriented namespace ("a straightforward object-oriented namespace
// approach to storing application and program state information"):
// '/'-separated keys mapping to versioned blobs.
//
// Replication: a client writes to any replica; that replica assigns a
// Lamport-style version (counter, replica-id tiebreak) and synchronously
// propagates to its peers (best effort — unreachable peers catch up later).
// Reads go to any replica, which spreads load as the paper argues. A
// rejoining replica runs anti-entropy (`storeSync`): it pulls peers'
// digests and fetches every newer object.
//
// Command set:
//   storePut key= data=<hex>;          -> ok version= acks=
//   storeGet key=;                     -> ok data=<hex> version=
//   storeDelete key=;                  -> ok version=
//   storeList prefix=?;                -> ok keys={...}
//   storeCount;                        -> ok count=
//   storeDigest;                       -> ok entries={key|version|flag ...}
//   storeSync;                         -> ok fetched=
//   storeReplicate key= version= replica= data= deleted=;   (peer internal)
#pragma once

#include <map>

#include "daemon/daemon.hpp"

namespace ace::store {

struct StoreOptions {
  // Peer liveness probe cadence. Each replica pings its peers; a peer
  // transitioning unreachable -> reachable (either side of a partition
  // heal, or a peer restart) triggers an automatic anti-entropy round, so
  // replicas converge without anyone calling storeSync by hand.
  std::chrono::milliseconds probe_interval{250};
  std::chrono::milliseconds probe_timeout{150};
};

class PersistentStoreDaemon : public daemon::ServiceDaemon {
 public:
  struct ObjectRecord {
    std::uint64_t version = 0;   // lamport counter << 8 | replica id
    util::Bytes data;
    bool deleted = false;
  };

  PersistentStoreDaemon(daemon::Environment& env, daemon::DaemonHost& host,
                        daemon::DaemonConfig config, int replica_id,
                        StoreOptions options = {});

  // Configures the peer replicas this server synchronizes with.
  void set_peers(std::vector<net::Address> peers);

  std::size_t object_count() const;  // live (non-tombstone) objects
  std::optional<ObjectRecord> object(const std::string& key) const;

  // Runs one anti-entropy round against all reachable peers; returns the
  // number of objects fetched. (Also exposed as the storeSync command, and
  // triggered automatically on boot and on peer-rejoin detection.)
  util::Result<std::int64_t> sync_from_peers();

 protected:
  util::Status on_start() override;
  void on_stop() override;
  void on_crash() override;

 private:
  std::uint64_t next_version();
  void apply(const std::string& key, const ObjectRecord& record);
  int replicate(const std::string& key, const ObjectRecord& record);
  void monitor_loop(std::stop_token st);

  int replica_id_;
  StoreOptions options_;
  mutable std::mutex mu_;
  std::map<std::string, ObjectRecord> objects_;
  std::uint64_t lamport_ = 0;
  std::vector<net::Address> peers_;
  std::jthread monitor_;

  // Cached obs cells (deployment registry, `store.*` names).
  obs::Counter* obs_writes_;
  obs::Counter* obs_replica_acks_;
  obs::Counter* obs_rejoin_syncs_;
};

std::string hex_of(const util::Bytes& data);
util::Bytes bytes_of_hex(const std::string& hex);

}  // namespace ace::store
