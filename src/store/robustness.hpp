// Robustness Manager — the watcher/restarter the paper calls for but had
// not yet built (§5.2: "these applications must be closely watched by other
// ACE services in order to make sure they are up and running and be
// restarted in case of a crash. Such a service has not yet been implemented
// but the ACE infrastructure makes this possible"; Ch 9 lists it as the
// first piece of future work). We implement it:
//
//  * managed services are registered with a kind — `restart` (relaunch on
//    death) or `robust` (relaunch; the service restores its own state from
//    the persistent store on startup),
//  * the manager subscribes to the ASD's `serviceExpired` notifications,
//  * on expiry of a managed service it relaunches through the SAL
//    (salLaunchService), optionally pinned to a host.
//
// The manager must survive the infrastructure failing around it, so a
// watchdog thread self-heals the watching itself:
//
//  * the `serviceExpired` subscription lives in the ASD's volatile memory —
//    after an ASD crash+restart it is gone and every managed service would
//    silently lose its safety net. The watchdog polls the ASD's
//    listNotifications and re-subscribes whenever its entry is missing
//    (`rm.resubscribes`).
//  * an expiry notification can be lost outright (e.g. the ASD died before
//    the managed service's lease ran out and restarted knowing nothing).
//    The watchdog sweeps the directory for each managed name and treats
//    `not_found` as a death.
//  * relaunches that fail (SAL down, partition) are retried with capped
//    exponential backoff instead of being dropped; repeated failures are
//    escalated to the Network Logger (`rm.restart_failures`).
//
// Command set:
//   rmRegister name= kind=restart|robust host=?;
//   rmUnregister name=;
//   rmNotify source= command= detail=;     (notification sink)
//   rmStatus;                              -> ok managed={...} restarts=
#pragma once

#include "daemon/daemon.hpp"
#include "services/asd.hpp"

namespace ace::store {

struct RobustnessOptions {
  // Watchdog tick: subscription check, directory sweep, and retry drain.
  std::chrono::milliseconds watch_interval{250};
  // Relaunch retry backoff: base * 2^(failures-1), capped.
  std::chrono::milliseconds retry_base{200};
  std::chrono::milliseconds retry_cap{2000};
  // After a successful relaunch, leave the service alone for this long so
  // the sweep does not double-launch an instance that is still booting and
  // has not yet re-registered.
  std::chrono::milliseconds relaunch_grace{1500};
  // Consecutive failures after which the escalation is logged as critical.
  int escalate_after = 5;
};

class RobustnessManagerDaemon : public daemon::ServiceDaemon {
 public:
  struct ManagedService {
    std::string name;
    std::string kind;  // "restart" | "robust"
    std::string host;  // preferred relaunch host ("" = SRM decides)
    int restarts = 0;
  };

  RobustnessManagerDaemon(daemon::Environment& env, daemon::DaemonHost& host,
                          daemon::DaemonConfig config,
                          RobustnessOptions options = {});

  // Subscribes to the ASD's serviceExpired notifications. Call once the
  // ASD is up (after start()). The watchdog re-invokes this whenever the
  // subscription disappears from the directory.
  util::Status watch_asd();

  std::vector<ManagedService> managed() const;
  int total_restarts() const;

 protected:
  util::Status on_start() override;
  void on_stop() override;
  void on_crash() override;

 private:
  // One relaunch in (possibly repeated) flight.
  struct PendingRelaunch {
    std::chrono::steady_clock::time_point next_attempt;
    int failures = 0;
  };

  void handle_expiry(const std::string& service_name);
  // Queues `name` for relaunch at the watchdog's next tick (idempotent
  // while an attempt is already pending).
  void schedule_relaunch(const std::string& name);
  // One salLaunchService attempt. Returns false (and re-arms the backoff)
  // on failure.
  bool try_relaunch(const std::string& name);
  void watchdog_loop(std::stop_token st);
  // True when the ASD still lists our serviceExpired subscription.
  bool subscription_alive();

  // The manager's cached directory client with the transport it rides on
  // (owned together: the base class replaces control_client() on every
  // start(), so a cache built over it would dangle across a restart).
  struct DirectoryClient {
    std::unique_ptr<daemon::AceClient> transport;
    services::AsdClient asd;
  };
  // Snapshot of the current client; null before the first start or when no
  // ASD is configured. Callers keep the snapshot alive across their calls,
  // so a concurrent restart swapping in a fresh client never pulls the rug.
  std::shared_ptr<DirectoryClient> directory();

  RobustnessOptions options_;
  mutable std::mutex mu_;
  std::map<std::string, ManagedService> managed_;
  std::map<std::string, PendingRelaunch> pending_;
  std::map<std::string, std::chrono::steady_clock::time_point> last_success_;
  int total_restarts_ = 0;
  std::jthread watchdog_;

  // The watchdog sweeps the directory every tick for every managed name,
  // which made the manager the chattiest ASD reader in the deployment. A
  // lease-bounded lookup cache absorbs most of that traffic, and the
  // rmNotify handler evicts on serviceExpired so a death is acted on the
  // moment the directory announces it rather than a TTL later.
  std::mutex asd_mu_;  // guards the asd_ pointer swap only
  std::shared_ptr<DirectoryClient> asd_;

  // Cached obs cells (deployment registry, `rm.*` names).
  obs::Counter* obs_restarts_;
  obs::Counter* obs_restart_failures_;
  obs::Counter* obs_resubscribes_;
  obs::Counter* obs_cache_invalidations_;
  obs::Gauge* obs_pending_;
};

}  // namespace ace::store
