// Robustness Manager — the watcher/restarter the paper calls for but had
// not yet built (§5.2: "these applications must be closely watched by other
// ACE services in order to make sure they are up and running and be
// restarted in case of a crash. Such a service has not yet been implemented
// but the ACE infrastructure makes this possible"; Ch 9 lists it as the
// first piece of future work). We implement it:
//
//  * managed services are registered with a kind — `restart` (relaunch on
//    death) or `robust` (relaunch; the service restores its own state from
//    the persistent store on startup),
//  * the manager subscribes to the ASD's `serviceExpired` notifications,
//  * on expiry of a managed service it relaunches through the SAL
//    (salLaunchService), optionally pinned to a host.
//
// Command set:
//   rmRegister name= kind=restart|robust host=?;
//   rmUnregister name=;
//   rmNotify source= command= detail=;     (notification sink)
//   rmStatus;                              -> ok managed={...} restarts=
#pragma once

#include "daemon/daemon.hpp"

namespace ace::store {

class RobustnessManagerDaemon : public daemon::ServiceDaemon {
 public:
  struct ManagedService {
    std::string name;
    std::string kind;  // "restart" | "robust"
    std::string host;  // preferred relaunch host ("" = SRM decides)
    int restarts = 0;
  };

  RobustnessManagerDaemon(daemon::Environment& env, daemon::DaemonHost& host,
                          daemon::DaemonConfig config);

  // Subscribes to the ASD's serviceExpired notifications. Call once the
  // ASD is up (after start()).
  util::Status watch_asd();

  std::vector<ManagedService> managed() const;
  int total_restarts() const;

 protected:
  util::Status on_start() override;

 private:
  void handle_expiry(const std::string& service_name);

  mutable std::mutex mu_;
  std::map<std::string, ManagedService> managed_;
  int total_restarts_ = 0;
};

}  // namespace ace::store
