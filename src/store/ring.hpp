// Consistent-hash ring for the sharded persistent store (Ch 6 scaled out;
// partitioning scheme after DeCandia et al., "Dynamo", PAPERS.md).
//
// Every store replica is mapped onto a 64-bit hash circle at `vnodes`
// pseudo-random points ("virtual nodes"), which evens out the per-node
// share of the keyspace and makes adding a node steal small slices from
// everyone instead of half of one victim. A key lives on the first N
// distinct nodes walking clockwise from hash(key) — its *preference list*.
// With N >= cluster size every node owns every key and the ring reduces to
// the paper's "3 copies of everything" Fig 17 cluster; with more nodes the
// namespace shards.
//
// The ring is a pure value: built deterministically from the sorted node
// set, so every replica and every client that knows the same membership
// derives the identical layout with no coordination traffic.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "net/network.hpp"

namespace ace::store {

// Shared by StoreOptions and StoreClient: both sides must agree on the
// vnode count to derive the same layout.
inline constexpr int kDefaultVnodes = 16;

class Ring {
 public:
  Ring() = default;
  // `nodes` may arrive in any order and with duplicates; the ring sorts and
  // dedups so all parties agree on the layout.
  Ring(std::vector<net::Address> nodes, int vnodes_per_node);

  // Position of a key on the hash circle (also used to index Merkle
  // buckets, so ownership arcs map to contiguous bucket ranges).
  static std::uint64_t hash_key(std::string_view key);

  // The first n distinct nodes clockwise from the key's position.
  std::vector<net::Address> preference_list(std::string_view key,
                                            std::size_t n) const;

  // Every distinct node in clockwise order from the key's position: the
  // preference list followed by the sloppy-quorum fallback candidates.
  std::vector<net::Address> walk(std::string_view key) const;

  bool contains(const net::Address& node) const;

  std::size_t size() const { return nodes_.size(); }
  bool empty() const { return nodes_.empty(); }
  const std::vector<net::Address>& nodes() const { return nodes_; }

 private:
  std::vector<net::Address> nodes_;  // sorted, deduped
  // (point hash, index into nodes_) sorted by hash.
  std::vector<std::pair<std::uint64_t, std::uint32_t>> points_;
};

}  // namespace ace::store
