// Incremental Merkle digest tree for store anti-entropy (Dynamo-style,
// PAPERS.md; replaces the O(n) full `storeDigest` entry exchange).
//
// The keyspace is bucketed by the top `depth` bits of the key's ring
// position (Ring::hash_key), giving 2^depth leaves. A leaf's digest is the
// XOR of the per-entry hashes of every object in its bucket — XOR so that
// a write updates its leaf in O(1) (xor out the old entry hash, xor in the
// new) — and each internal node is an order-sensitive mix of its children.
// A local write therefore recomputes exactly one root-to-leaf path:
// O(depth) work, no rescans.
//
// Two replicas compare trees top-down: equal roots mean converged in one
// hash exchange; otherwise they descend only into differing subtrees and
// exchange full key/version lists for the few divergent leaf buckets. For
// a fixed amount of divergence the cost is O(log n) hashes + O(divergent
// bucket) entries, instead of O(n) total entries.
//
// Node ids are 1-based heap indices: root = 1, children of i are 2i and
// 2i+1, leaves occupy [2^depth, 2^(depth+1)). Ids are what the
// `storeDigestTree` command speaks on the wire.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

namespace ace::store {

class MerkleTree {
 public:
  explicit MerkleTree(int depth);

  // Digest of one object record; feed the previous hash back through
  // update() when a key is overwritten.
  static std::uint64_t entry_hash(std::string_view key, std::uint64_t version,
                                  bool deleted);

  // Leaf *bucket index* (0-based) for a key's ring position.
  std::size_t bucket_of(std::uint64_t key_position) const;

  // Applies a record change: `old_hash` is the entry hash the bucket
  // currently contains for this key (0 if the key is new), `new_hash` the
  // replacement (0 to remove). O(depth).
  void update(std::uint64_t key_position, std::uint64_t old_hash,
              std::uint64_t new_hash);

  std::uint64_t root() const { return nodes_[1]; }
  // Digest of heap node `id` (1-based); 0 for out-of-range ids.
  std::uint64_t node(std::size_t id) const;

  int depth() const { return depth_; }
  std::size_t leaf_count() const { return leaf_count_; }
  // Heap id of the first leaf (leaf ids are first_leaf() + bucket index).
  std::size_t first_leaf() const { return leaf_count_; }

  void clear();

 private:
  int depth_;
  std::size_t leaf_count_;
  std::vector<std::uint64_t> nodes_;  // 1-based heap; [0] unused
};

}  // namespace ace::store
