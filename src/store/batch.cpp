#include "store/batch.hpp"

#include "cmdlang/value.hpp"
#include "daemon/wire.hpp"

namespace ace::store {

using std::chrono::steady_clock;

bool ReplicationBatcher::Pending::wait_until(steady_clock::time_point deadline) {
  std::unique_lock lock(mu_);
  cv_.wait_until(lock, deadline, [this] { return done_; });
  return done_ && ok_;
}

void ReplicationBatcher::Pending::settle(bool ok) {
  {
    std::scoped_lock lock(mu_);
    done_ = true;
    ok_ = ok;
  }
  cv_.notify_all();
}

ReplicationBatcher::ReplicationBatcher(obs::MetricsRegistry& metrics,
                                       daemon::AceClient& client,
                                       BatcherOptions options)
    : client_(client),
      options_(options),
      obs_flushes_(&metrics.counter("store.batch_flushes")),
      obs_records_(&metrics.counter("store.batch_records")) {}

ReplicationBatcher::~ReplicationBatcher() { shutdown(); }

std::shared_ptr<ReplicationBatcher::Pending> ReplicationBatcher::submit(
    const net::Address& peer, std::string record) {
  auto pending = std::make_shared<Pending>();
  Lane* lane = nullptr;
  {
    std::scoped_lock lock(lanes_mu_);
    if (stopped_) {
      pending->settle(false);
      return pending;
    }
    auto it = lanes_.find(peer);
    if (it == lanes_.end()) {
      auto fresh = std::make_unique<Lane>();
      fresh->flusher = std::jthread(
          [this, raw = fresh.get(), peer](std::stop_token st) {
            flusher_loop(st, raw, peer);
          });
      it = lanes_.emplace(peer, std::move(fresh)).first;
    }
    lane = it->second.get();
  }
  {
    std::scoped_lock lock(lane->mu);
    lane->queue.push_back(Item{std::move(record), pending});
  }
  lane->cv.notify_one();
  return pending;
}

void ReplicationBatcher::shutdown() {
  std::map<net::Address, std::unique_ptr<Lane>> lanes;
  {
    std::scoped_lock lock(lanes_mu_);
    stopped_ = true;
    lanes.swap(lanes_);
  }
  for (auto& [peer, lane] : lanes) {
    lane->flusher.request_stop();
    lane->cv.notify_all();
    lane->flusher = {};  // join
    for (auto& item : lane->queue) item.pending->settle(false);
  }
}

void ReplicationBatcher::flusher_loop(std::stop_token st, Lane* lane,
                                      net::Address peer) {
  while (true) {
    std::vector<Item> batch;
    {
      std::unique_lock lock(lane->mu);
      lane->cv.wait(lock, st, [&] { return !lane->queue.empty(); });
      if (st.stop_requested()) return;  // shutdown() fails the leftovers
    }
    if (options_.flush_interval.count() > 0)
      std::this_thread::sleep_for(options_.flush_interval);
    {
      std::scoped_lock lock(lane->mu);
      batch.swap(lane->queue);
    }
    if (batch.empty()) continue;

    std::vector<std::string> records;
    records.reserve(batch.size());
    for (auto& item : batch) records.push_back(std::move(item.record));
    cmdlang::CmdLine cmd("storeReplicateBatch");
    cmd.arg("entries", daemon::wire::pack_batch(records));

    auto reply = client_.call(
        peer, cmd,
        daemon::CallOptions{.timeout = options_.call_timeout, .retries = 0});
    const bool ok = reply.ok() && cmdlang::is_ok(reply.value());

    obs_flushes_->inc();
    obs_records_->inc(batch.size());
    for (auto& item : batch) item.pending->settle(ok);
  }
}

}  // namespace ace::store
