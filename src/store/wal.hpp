// Write-ahead log + snapshot generations for the persistent store.
//
// Both the live WAL and snapshot files share one on-disk framing: a
// sequence of CRC32-framed, length-prefixed records
//
//   u32 payload_len | u32 crc32(payload) | payload
//
// where the payload is LEB128/varint-encoded (kind, key, hybrid-clock
// version, value bytes). A snapshot is simply a compacted log — the same
// records a replay would produce, ending in a `seal` record carrying the
// record count — written to a `.tmp` file, fsynced, and atomically renamed
// into place. Sharing the framing means one reader, one checksum story,
// and one corruption model for both files.
//
// DurableLog manages generations:
//
//   <prefix>.wal.<g>    records applied after snapshot generation g
//   <prefix>.snap.<g>   sealed state as of the start of wal.<g>
//
// Compaction writes snap.<g+1>, rotates appends to wal.<g+1>, and keeps
// generation g as a fallback: recovery picks the newest snapshot whose
// every record checks out AND that ends in a matching seal; a bit-rotted
// snapshot falls back to the previous generation, whose WAL chain replays
// the difference (last-writer-wins makes double replay harmless). A torn
// WAL tail (power loss mid-append) is detected by the frame CRC, counted,
// and truncated off the file.
//
// Group commit: append() under the log's own mutex assigns an LSN;
// sync(lsn) elects the first waiter as leader, which issues one fsync
// covering every record appended so far — concurrent writers ride the
// same flush, mirroring the replication batcher's flush window.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "io/sim_disk.hpp"
#include "obs/metrics.hpp"
#include "util/bytes.hpp"
#include "util/result.hpp"

namespace ace::store {

struct WalRecord {
  enum Kind : std::uint8_t {
    kPut = 1,          // key, version, data
    kDelete = 2,       // key, version (tombstone)
    kHint = 3,         // key, version, owner — hinted-handoff obligation
    kHintDrained = 4,  // key, owner — obligation delivered
    kErase = 5,        // key — non-owned copy shed after handoff
    kSeal = 6,         // version = record count; terminates a snapshot
  };
  std::uint8_t kind = kPut;
  std::string key;
  std::uint64_t version = 0;
  util::Bytes data;
  std::string owner;
};

util::Bytes encode_wal_record(const WalRecord& r);

// Counters the daemon shares with its log (any pointer may be null).
struct WalCounters {
  obs::Counter* appends = nullptr;
  obs::Counter* fsyncs = nullptr;
  obs::Counter* torn_tail_dropped = nullptr;
};

// Single-writer framed log over one SimDisk file with group-commit fsync.
class Wal {
 public:
  // resume_records/resume_bytes seed the counters when reopening a file
  // that already holds recovered records.
  Wal(io::SimDisk& disk, std::string file, WalCounters counters,
      std::uint64_t resume_records = 0, std::size_t resume_bytes = 0);

  // Appends one framed record; returns its LSN (1-based), 0 after close().
  std::uint64_t append(const WalRecord& r);
  // Blocks until every record up to `lsn` is durable. One leader fsync
  // covers all concurrent callers. Returns false if the log was closed or
  // the disk rejected the flush. sync(0) is a no-op returning true.
  bool sync(std::uint64_t lsn);
  // Flushes everything appended so far.
  bool sync_all();
  void close();

  const std::string& file() const { return file_; }
  std::uint64_t records() const;
  std::size_t bytes() const;

  // Decodes framed records from `data`, invoking `fn` per record. Stops at
  // the first short or CRC-failing frame and returns the byte offset of
  // the valid prefix (== data.size() when the log is clean).
  static std::size_t scan(util::BytesView data,
                          const std::function<void(const WalRecord&)>& fn);

 private:
  io::SimDisk& disk_;
  const std::string file_;
  WalCounters counters_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::uint64_t appended_ = 0;
  std::uint64_t synced_ = 0;
  bool sync_inflight_ = false;
  bool closed_ = false;
  std::size_t bytes_ = 0;
};

// An append's receipt: the WAL incarnation it landed in plus its LSN.
// Sync through the ticket, not the log — compaction may rotate the live
// WAL between an append and its sync, and records already rotated out are
// durable via the published snapshot, so flushing the old file is both
// safe and sufficient.
struct WalTicket {
  std::shared_ptr<Wal> wal;
  std::uint64_t lsn = 0;

  explicit operator bool() const { return wal != nullptr && lsn != 0; }
};

// Snapshot + WAL generation manager for one replica. Thread-safety: append
// and sync may race freely; compact() must be externally serialized with
// appenders (the store calls it under its own state mutex, which every
// appender also holds — giving the snapshot a consistent cut for free).
class DurableLog {
 public:
  struct RecoveryStats {
    int generation = 0;            // generation appends resume on
    std::uint64_t snapshot_records = 0;
    std::uint64_t wal_records = 0;
    std::size_t torn_bytes = 0;    // bytes truncated off torn WAL tails
    int torn_tails = 0;            // WAL files that needed truncation
    int snapshot_fallbacks = 0;    // corrupt snapshots skipped
  };

  DurableLog(io::SimDisk& disk, std::string prefix, WalCounters counters);

  // Loads the newest valid snapshot, replays every newer WAL (torn tails
  // truncated), and opens the live WAL. `fn` receives each surviving
  // record in apply order. Call once, before append/sync.
  RecoveryStats recover(const std::function<void(const WalRecord&)>& fn);

  WalTicket append(const WalRecord& r);
  static bool sync(const WalTicket& t);
  bool sync_all();
  void close();

  // Writes `records` (+ seal) as the next snapshot generation, atomically
  // publishes it, rotates the live WAL, and prunes generations older than
  // the previous one. Caller must hold the store state lock (see above).
  util::Status compact(const std::vector<WalRecord>& records);

  int generation() const;
  std::uint64_t wal_records() const;
  std::size_t wal_bytes() const;
  const RecoveryStats& last_recovery() const { return recovery_; }

 private:
  std::string wal_file(int gen) const;
  std::string snap_file(int gen) const;
  std::shared_ptr<Wal> current() const;

  io::SimDisk& disk_;
  const std::string prefix_;
  WalCounters counters_;

  mutable std::mutex mu_;  // guards gen_/wal_ swaps, not record appends
  int gen_ = 0;
  std::shared_ptr<Wal> wal_;
  RecoveryStats recovery_;
};

}  // namespace ace::store
