// Group commit for store replication: a per-peer batcher that coalesces
// concurrent replicated writes into one framed `storeReplicateBatch` RPC
// per peer per flush, riding the v2 pipelined channel.
//
// Each destination replica gets a *lane*: a queue plus a flusher thread.
// Writers enqueue an opaque record and receive a Pending handle to await
// the replica's acknowledgement. The flusher sends immediately when idle;
// while a batch RPC is in flight, new records pile up behind it and the
// next flush ships them all in one frame — classic group commit, where the
// in-flight round trip is the natural coalescing window. An optional
// `flush_interval` adds a fixed wait before each flush to trade write
// latency for bigger batches (docs/store.md discusses tuning).
//
// A batch either lands whole (the peer applies every record; LWW apply
// cannot fail per-record) or fails whole (transport error / timeout), so
// one reply settles every Pending in the flight.
#pragma once

#include <chrono>
#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "daemon/client.hpp"
#include "obs/metrics.hpp"

namespace ace::store {

struct BatcherOptions {
  // Extra coalescing wait once a flush has at least one record. 0 = flush
  // as soon as the lane is idle (in-flight RPCs still batch naturally).
  std::chrono::milliseconds flush_interval{0};
  std::chrono::milliseconds call_timeout{300};
};

class ReplicationBatcher {
 public:
  // One record awaiting its batch acknowledgement.
  class Pending {
   public:
    // Blocks until the record's batch settles or `deadline` passes;
    // returns true iff the batch was acknowledged in time.
    bool wait_until(std::chrono::steady_clock::time_point deadline);

   private:
    friend class ReplicationBatcher;
    void settle(bool ok);

    mutable std::mutex mu_;
    std::condition_variable cv_;
    bool done_ = false;
    bool ok_ = false;
  };

  ReplicationBatcher(obs::MetricsRegistry& metrics, daemon::AceClient& client,
                     BatcherOptions options);
  ~ReplicationBatcher();

  ReplicationBatcher(const ReplicationBatcher&) = delete;
  ReplicationBatcher& operator=(const ReplicationBatcher&) = delete;

  // Enqueues a record for `peer`; never blocks on the network. After
  // shutdown() the returned handle is already settled as failed.
  std::shared_ptr<Pending> submit(const net::Address& peer,
                                  std::string record);

  // Stops every lane (joins flushers) and fails all queued records.
  // Idempotent; submit() afterwards fast-fails. Called from the store
  // daemon's on_stop/on_crash, where command handlers may still be racing
  // in — the object stays valid, merely inert.
  void shutdown();

 private:
  struct Item {
    std::string record;
    std::shared_ptr<Pending> pending;
  };
  struct Lane {
    std::mutex mu;
    std::condition_variable_any cv;
    std::vector<Item> queue;
    std::jthread flusher;  // joined by shutdown()
  };

  void flusher_loop(std::stop_token st, Lane* lane, net::Address peer);

  daemon::AceClient& client_;
  BatcherOptions options_;

  std::mutex lanes_mu_;
  bool stopped_ = false;
  std::map<net::Address, std::unique_ptr<Lane>> lanes_;

  obs::Counter* obs_flushes_;
  obs::Counter* obs_records_;
};

}  // namespace ace::store
