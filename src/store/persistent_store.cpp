#include "store/persistent_store.hpp"

#include <algorithm>
#include <condition_variable>
#include <cstdlib>
#include <optional>

#include "daemon/wire.hpp"
#include "util/strings.hpp"

namespace ace::store {

using cmdlang::CmdLine;
using cmdlang::CommandSpec;
using cmdlang::integer_arg;
using cmdlang::string_arg;
using cmdlang::Word;
using cmdlang::word_arg;
using daemon::CallerInfo;
using std::chrono::steady_clock;

namespace {

daemon::DaemonConfig store_defaults(daemon::DaemonConfig config) {
  if (config.service_class.empty())
    config.service_class = "Service/PersistentStore";
  return config;
}

// One replicated record on the wire: a netstring-packed field tuple
// [key, version, d|l, hex data, hint owner or ""], nested inside the
// storeReplicateBatch `entries` payload (daemon/wire.hpp pack_batch).
std::string encode_replica_entry(const std::string& key,
                                 const PersistentStoreDaemon::ObjectRecord& r,
                                 const std::string& hint) {
  return daemon::wire::pack_batch({key, std::to_string(r.version),
                                   r.deleted ? "d" : "l", hex_of(r.data),
                                   hint});
}

CmdLine make_replicate_cmd(const std::string& key,
                           const PersistentStoreDaemon::ObjectRecord& r,
                           const std::string& hint) {
  CmdLine rep("storeReplicate");
  rep.arg("key", key);
  rep.arg("version", static_cast<std::int64_t>(r.version));
  rep.arg("data", hex_of(r.data));
  rep.arg("deleted", Word{r.deleted ? "yes" : "no"});
  if (!hint.empty()) rep.arg("hint", hint);
  return rep;
}

}  // namespace

util::Status validate_store_options(const StoreOptions& o) {
  auto bad = [](const std::string& msg) {
    return util::Status(util::Errc::invalid, "store config: " + msg);
  };
  if (o.replication < 1)
    return bad("replication must be >= 1 (got " +
               std::to_string(o.replication) + ")");
  if (o.write_quorum < 0 || o.write_quorum > o.replication)
    return bad("write_quorum (W=" + std::to_string(o.write_quorum) +
               ") must be in [0, replication=" +
               std::to_string(o.replication) + "]");
  if (o.read_quorum < 1 || o.read_quorum > o.replication)
    return bad("read_quorum (R=" + std::to_string(o.read_quorum) +
               ") must be in [1, replication=" +
               std::to_string(o.replication) + "]");
  if (o.vnodes < 1)
    return bad("vnodes must be positive (got " + std::to_string(o.vnodes) +
               ")");
  if (o.merkle_depth < 1 || o.merkle_depth > 20)
    return bad("merkle_depth must be in [1, 20] (got " +
               std::to_string(o.merkle_depth) + ")");
  if (o.scan_limit_max < 1)
    return bad("scan_limit_max must be >= 1 (got " +
               std::to_string(o.scan_limit_max) + ")");
  if (o.scan_limit < 1 || o.scan_limit > o.scan_limit_max)
    return bad("scan_limit (" + std::to_string(o.scan_limit) +
               ") must be in [1, scan_limit_max=" +
               std::to_string(o.scan_limit_max) + "]");
  if (o.list_max_keys < 1)
    return bad("list_max_keys must be >= 1 (got " +
               std::to_string(o.list_max_keys) + ")");
  return util::Status::ok_status();
}

std::string hex_of(const util::Bytes& data) { return util::hex_encode(data); }

util::Bytes bytes_of_hex(const std::string& hex) {
  return util::hex_decode(hex);
}

PersistentStoreDaemon::PersistentStoreDaemon(daemon::Environment& env,
                                             daemon::DaemonHost& host,
                                             daemon::DaemonConfig config,
                                             int replica_id,
                                             StoreOptions options)
    : ServiceDaemon(env, host, store_defaults(std::move(config))),
      replica_id_(replica_id),
      options_(options),
      options_status_(validate_store_options(options)),
      // Clamped so a rejected config cannot blow up member construction;
      // on_start() surfaces the validation error before any use.
      tree_(std::clamp(options.merkle_depth, 1, 20)),
      bucket_keys_(tree_.leaf_count()),
      obs_writes_(&env.metrics().counter("store.writes")),
      obs_replica_acks_(&env.metrics().counter("store.replica_acks")),
      obs_rejoin_syncs_(&env.metrics().counter("store.rejoin_syncs")),
      obs_hints_recorded_(&env.metrics().counter("store.hints_recorded")),
      obs_hints_drained_(&env.metrics().counter("store.hints_drained")),
      obs_quorum_failures_(&env.metrics().counter("store.quorum_failures")),
      obs_tree_rpcs_(&env.metrics().counter("store.sync_tree_rpcs")),
      obs_bucket_rpcs_(&env.metrics().counter("store.sync_bucket_rpcs")),
      obs_sync_fetched_(&env.metrics().counter("store.sync_fetched")),
      obs_digest_reads_(&env.metrics().counter("store.digest_reads")),
      obs_digest_mismatches_(
          &env.metrics().counter("store.digest_mismatches")),
      obs_read_repairs_(&env.metrics().counter("store.read_repairs")),
      obs_read_unavailable_(
          &env.metrics().counter("store.read_unavailable")),
      obs_scan_pages_(&env.metrics().counter("store.scan_pages")),
      obs_wal_appends_(&env.metrics().counter("store.wal_appends")),
      obs_wal_fsyncs_(&env.metrics().counter("store.wal_fsyncs")),
      obs_wal_torn_(&env.metrics().counter("store.wal_torn_tail_dropped")),
      obs_recoveries_(&env.metrics().counter("store.recoveries")),
      obs_compactions_(&env.metrics().counter("store.snapshot_compactions")),
      obs_snap_fallbacks_(&env.metrics().counter("store.snapshot_fallbacks")) {
  register_command(
      CommandSpec("storePut", "store an object (quorum write)").concurrent_ok()
          .arg(string_arg("key"))
          .arg(string_arg("data")),
      [this](const CmdLine& cmd, const CallerInfo&) {
        ObjectRecord record;
        record.data = bytes_of_hex(cmd.get_text("data"));
        record.version = next_version();
        std::string key = cmd.get_text("key");
        WriteOutcome out = coordinate_write(key, record);
        if (!out.quorum_met)
          return cmdlang::make_error(
              util::Errc::unavailable,
              "write quorum not met (acks=" + std::to_string(out.acks) + ")");
        CmdLine reply = cmdlang::make_ok();
        reply.arg("version", static_cast<std::int64_t>(record.version));
        reply.arg("acks", static_cast<std::int64_t>(out.acks));
        return reply;
      });

  register_command(
      CommandSpec("storeGet", "fetch an object (quorum read)").concurrent_ok()
          .arg(string_arg("key"))
          .arg(word_arg("scope").optional_arg().choices({"cluster", "local"})),
      [this](const CmdLine& cmd, const CallerInfo&) {
        const std::string key = cmd.get_text("key");
        if (cmd.get_text("scope") == "local") {
          std::scoped_lock lock(mu_);
          auto it = objects_.find(key);
          if (it == objects_.end())
            return cmdlang::make_error(util::Errc::not_found,
                                       "no such object");
          CmdLine reply = cmdlang::make_ok();
          reply.arg("data", hex_of(it->second.data));
          reply.arg("version",
                    static_cast<std::int64_t>(it->second.version));
          reply.arg("deleted", Word{it->second.deleted ? "yes" : "no"});
          return reply;
        }
        return coordinate_read(key);
      });

  // Read-path internal: version/tombstone digest only — no value bytes.
  // This is what lets a quorum read ship one full copy plus R-1 digests.
  register_command(
      CommandSpec("storeGetDigest",
                  "version digest of one object (this replica)").concurrent_ok()
          .arg(string_arg("key")),
      [this](const CmdLine& cmd, const CallerInfo&) {
        std::scoped_lock lock(mu_);
        auto it = objects_.find(cmd.get_text("key"));
        if (it == objects_.end())
          return cmdlang::make_error(util::Errc::not_found, "no such object");
        CmdLine reply = cmdlang::make_ok();
        reply.arg("version", static_cast<std::int64_t>(it->second.version));
        reply.arg("deleted", Word{it->second.deleted ? "yes" : "no"});
        return reply;
      });

  register_command(
      CommandSpec("storeDelete", "remove an object (tombstone)").concurrent_ok()
          .arg(string_arg("key")),
      [this](const CmdLine& cmd, const CallerInfo&) {
        ObjectRecord record;
        record.deleted = true;
        record.version = next_version();
        std::string key = cmd.get_text("key");
        WriteOutcome out = coordinate_write(key, record);
        if (!out.quorum_met)
          return cmdlang::make_error(
              util::Errc::unavailable,
              "write quorum not met (acks=" + std::to_string(out.acks) + ")");
        CmdLine reply = cmdlang::make_ok();
        reply.arg("version", static_cast<std::int64_t>(record.version));
        reply.arg("acks", static_cast<std::int64_t>(out.acks));
        return reply;
      });

  // Paginated ordered prefix scan. Local scope answers one page of this
  // replica's map; cluster scope merges per-peer pages (parallel fan-out,
  // self answered without an RPC) behind an opaque resume cursor that
  // stays stable under concurrent writes. docs/store.md §"Read path" has
  // the cursor contract.
  register_command(
      CommandSpec("storeScan",
                  "one ordered key page under a prefix (resumable)").concurrent_ok()
          .arg(string_arg("prefix").optional_arg())
          .arg(string_arg("cursor").optional_arg())
          .arg(integer_arg("limit").optional_arg())
          .arg(word_arg("scope").optional_arg().choices({"cluster", "local"})),
      [this](const CmdLine& cmd, const CallerInfo&) {
        const std::string prefix = cmd.get_text("prefix");
        const std::string cursor = cmd.get_text("cursor");
        const auto limit = static_cast<std::size_t>(std::clamp<std::int64_t>(
            cmd.get_integer("limit", options_.scan_limit), 1,
            options_.scan_limit_max));
        if (cmd.get_text("scope") == "local") {
          ScanPage page = scan_local(prefix, cursor, limit);
          CmdLine reply = cmdlang::make_ok();
          reply.arg("keys", cmdlang::string_vector(std::move(page.keys)));
          reply.arg("next", page.done ? std::string() : page.next);
          reply.arg("done", Word{page.done ? "yes" : "no"});
          return reply;
        }
        auto page = scan_cluster(prefix, cursor, limit);
        if (!page.ok())
          return cmdlang::make_error(page.error().code, page.error().message);
        CmdLine reply = cmdlang::make_ok();
        reply.arg("keys", cmdlang::string_vector(std::move(page->keys)));
        reply.arg("next", page->next);
        reply.arg("done", Word{page->done ? "yes" : "no"});
        return reply;
      });

  // Compatibility shim over storeScan: pages through the whole prefix and
  // concatenates, capped at StoreOptions.list_max_keys (truncated=yes when
  // the cap bites). New callers should page with storeScan instead.
  register_command(
      CommandSpec("storeList", "list keys under a namespace prefix").concurrent_ok()
          .arg(string_arg("prefix").optional_arg())
          .arg(word_arg("scope").optional_arg().choices({"cluster", "local"})),
      [this](const CmdLine& cmd, const CallerInfo&) {
        const std::string prefix = cmd.get_text("prefix");
        const bool local = cmd.get_text("scope") == "local";
        const auto page_limit = static_cast<std::size_t>(
            std::clamp(options_.scan_limit, 1, options_.scan_limit_max));
        const auto cap =
            static_cast<std::size_t>(std::max(1, options_.list_max_keys));
        std::vector<std::string> keys;
        std::string cursor;
        bool truncated = false;
        while (true) {
          std::vector<std::string> page_keys;
          bool done = false;
          if (local) {
            ScanPage p = scan_local(prefix, cursor, page_limit);
            page_keys = std::move(p.keys);
            done = p.done;
            cursor = p.next;
          } else {
            auto p = scan_cluster(prefix, cursor, page_limit);
            if (!p.ok())
              return cmdlang::make_error(p.error().code, p.error().message);
            page_keys = std::move(p->keys);
            done = p->done;
            cursor = p->next;
          }
          for (std::string& key : page_keys) {
            if (keys.size() >= cap) {
              truncated = true;
              break;
            }
            keys.push_back(std::move(key));
          }
          if (truncated || done) break;
        }
        CmdLine reply = cmdlang::make_ok();
        reply.arg("keys", cmdlang::string_vector(std::move(keys)));
        if (truncated) reply.arg("truncated", Word{"yes"});
        return reply;
      });

  register_command(CommandSpec("storeCount", "count live objects (this replica)").concurrent_ok(),
                   [this](const CmdLine&, const CallerInfo&) {
                     CmdLine reply = cmdlang::make_ok();
                     reply.arg("count",
                               static_cast<std::int64_t>(object_count()));
                     return reply;
                   });

  register_command(
      CommandSpec("storeDigest", "full key/version digest (anti-entropy ablation)").concurrent_ok(),
      [this](const CmdLine&, const CallerInfo&) {
        std::vector<std::string> entries;
        {
          std::scoped_lock lock(mu_);
          for (const auto& [key, record] : objects_)
            entries.push_back(key + "|" + std::to_string(record.version) +
                              "|" + (record.deleted ? "d" : "l"));
        }
        CmdLine reply = cmdlang::make_ok();
        reply.arg("entries", cmdlang::string_vector(std::move(entries)));
        return reply;
      });

  register_command(
      CommandSpec("storeDigestTree", "Merkle digest-tree hashes for anti-entropy").concurrent_ok()
          .arg(string_arg("nodes")),
      [this](const CmdLine& cmd, const CallerInfo&) {
        std::vector<std::string> hashes;
        std::size_t served = 0;
        {
          std::scoped_lock lock(mu_);
          for (const std::string& tok :
               util::split(cmd.get_text("nodes"), ' ')) {
            if (tok.empty()) continue;
            if (++served > 2048) break;  // request-size cap
            const std::size_t id = std::strtoull(tok.c_str(), nullptr, 10);
            hashes.push_back(tok + "|" + std::to_string(tree_.node(id)));
          }
        }
        CmdLine reply = cmdlang::make_ok();
        reply.arg("depth", static_cast<std::int64_t>(tree_.depth()));
        reply.arg("leaves", static_cast<std::int64_t>(tree_.leaf_count()));
        reply.arg("hashes", cmdlang::string_vector(std::move(hashes)));
        return reply;
      });

  register_command(
      CommandSpec("storeDigestBucket", "key/version digest of one Merkle bucket").concurrent_ok()
          .arg(integer_arg("bucket")),
      [this](const CmdLine& cmd, const CallerInfo&) {
        const auto bucket = static_cast<std::size_t>(
            std::max<std::int64_t>(0, cmd.get_integer("bucket")));
        std::vector<std::string> entries;
        {
          std::scoped_lock lock(mu_);
          if (bucket < bucket_keys_.size())
            for (const std::string& key : bucket_keys_[bucket]) {
              auto it = objects_.find(key);
              if (it == objects_.end()) continue;
              entries.push_back(key + "|" +
                                std::to_string(it->second.version) + "|" +
                                (it->second.deleted ? "d" : "l"));
            }
        }
        CmdLine reply = cmdlang::make_ok();
        reply.arg("entries", cmdlang::string_vector(std::move(entries)));
        return reply;
      });

  register_command(
      CommandSpec("storeSync", "pull newer objects from peer replicas").concurrent_ok(),
      [this](const CmdLine&, const CallerInfo&) {
        auto fetched = sync_from_peers();
        if (!fetched.ok())
          return cmdlang::make_error(fetched.error().code,
                                     fetched.error().message);
        CmdLine reply = cmdlang::make_ok();
        reply.arg("fetched", fetched.value());
        return reply;
      });

  // Peer-internal replication message. `hint` names the intended owner
  // when this replica is a sloppy-quorum stand-in for a downed peer.
  register_command(
      CommandSpec("storeReplicate", "apply a replicated write (internal)").concurrent_ok()
          .arg(string_arg("key"))
          .arg(integer_arg("version"))
          .arg(string_arg("data"))
          .arg(word_arg("deleted").choices({"yes", "no"}))
          .arg(string_arg("hint").optional_arg()),
      [this](const CmdLine& cmd, const CallerInfo&) {
        ObjectRecord record;
        record.version = static_cast<std::uint64_t>(cmd.get_integer("version"));
        record.data = bytes_of_hex(cmd.get_text("data"));
        record.deleted = cmd.get_text("deleted") == "yes";
        const std::string key = cmd.get_text("key");
        WalTicket t = apply(key, record);
        WalTicket h;
        if (auto intended = net::Address::parse(cmd.get_text("hint")))
          h = record_hint(*intended, key, record.version);
        // The ok below is this replica's durability promise: flush first.
        DurableLog::sync(t);
        DurableLog::sync(h);
        return cmdlang::make_ok();
      });

  // Peer-internal group commit: one frame carrying many replicated writes
  // (daemon/wire.hpp pack_batch of encode_replica_entry records).
  register_command(
      CommandSpec("storeReplicateBatch", "apply a batch of replicated writes (internal)").concurrent_ok()
          .arg(string_arg("entries")),
      [this](const CmdLine& cmd, const CallerInfo&) {
        auto records = daemon::wire::unpack_batch(cmd.get_text("entries"));
        if (!records)
          return cmdlang::make_error(util::Errc::semantic_error,
                                     "malformed batch payload");
        std::int64_t applied = 0;
        std::vector<WalTicket> tickets;
        for (const std::string& packed : *records) {
          auto fields = daemon::wire::unpack_batch(packed);
          if (!fields || fields->size() != 5) continue;
          ObjectRecord record;
          record.version = std::strtoull((*fields)[1].c_str(), nullptr, 10);
          record.deleted = (*fields)[2] == "d";
          record.data = bytes_of_hex((*fields)[3]);
          tickets.push_back(apply((*fields)[0], record));
          if (auto intended = net::Address::parse((*fields)[4]))
            tickets.push_back(
                record_hint(*intended, (*fields)[0], record.version));
          ++applied;
        }
        // One group-commit flush covers the whole batch: the first sync
        // fsyncs everything appended, the rest return immediately.
        for (const WalTicket& t : tickets) DurableLog::sync(t);
        CmdLine reply = cmdlang::make_ok();
        reply.arg("applied", applied);
        return reply;
      });

  register_command(
      CommandSpec("storeWalStats", "durability status of this replica").concurrent_ok(),
      [this](const CmdLine&, const CallerInfo&) {
        std::shared_ptr<DurableLog> dlog;
        std::uint64_t recoveries, compactions, torn, fallbacks;
        {
          std::scoped_lock lock(mu_);
          dlog = dlog_;
          recoveries = recoveries_;
          compactions = compactions_;
          torn = torn_tails_;
          fallbacks = snapshot_fallbacks_;
        }
        const bool durable = options_.disk != nullptr;
        CmdLine reply = cmdlang::make_ok();
        reply.arg("durable", Word{durable ? "yes" : "no"});
        reply.arg("generation",
                  static_cast<std::int64_t>(dlog ? dlog->generation() : 0));
        reply.arg("wal_records",
                  static_cast<std::int64_t>(dlog ? dlog->wal_records() : 0));
        reply.arg("wal_bytes",
                  static_cast<std::int64_t>(dlog ? dlog->wal_bytes() : 0));
        reply.arg("recoveries", static_cast<std::int64_t>(recoveries));
        reply.arg("compactions", static_cast<std::int64_t>(compactions));
        reply.arg("torn_dropped", static_cast<std::int64_t>(torn));
        reply.arg("snapshot_fallbacks", static_cast<std::int64_t>(fallbacks));
        return reply;
      });

  register_command(
      CommandSpec("storeCompact",
                  "snapshot local state and rotate the WAL").concurrent_ok(),
      [this](const CmdLine&, const CallerInfo&) {
        auto records = compact_now();
        if (!records.ok())
          return cmdlang::make_error(records.error().code,
                                     records.error().message);
        std::shared_ptr<DurableLog> dlog;
        {
          std::scoped_lock lock(mu_);
          dlog = dlog_;
        }
        CmdLine reply = cmdlang::make_ok();
        reply.arg("generation",
                  static_cast<std::int64_t>(dlog ? dlog->generation() : 0));
        reply.arg("records", records.value());
        return reply;
      });
}

void PersistentStoreDaemon::set_peers(std::vector<net::Address> peers) {
  {
    std::scoped_lock lock(mu_);
    peers_ = std::move(peers);
  }
  rebuild_ring();
}

void PersistentStoreDaemon::rebuild_ring() {
  std::scoped_lock lock(mu_);
  std::vector<net::Address> nodes = peers_;
  nodes.push_back(address());
  // max() guards a rejected config (on_start refuses it before any use).
  ring_ = Ring(std::move(nodes), std::max(1, options_.vnodes));
}

util::Status PersistentStoreDaemon::on_start() {
  if (!options_status_.ok()) return options_status_;
  rebuild_ring();  // the listen port is final now
  if (options_.disk) {
    // Local recovery first, before the monitor's boot sync: snapshot + WAL
    // replay rebuilds everything this replica had durably acknowledged, so
    // Merkle anti-entropy afterwards only covers the divergence tail.
    auto dlog = std::make_shared<DurableLog>(
        *options_.disk, config().name,
        WalCounters{obs_wal_appends_, obs_wal_fsyncs_, obs_wal_torn_});
    std::scoped_lock lock(mu_);
    recovery_stats_ =
        dlog->recover([this](const WalRecord& r) { fold_recovered(r); });
    dlog_ = std::move(dlog);
    ++recoveries_;
    torn_tails_ += static_cast<std::uint64_t>(recovery_stats_.torn_tails);
    snapshot_fallbacks_ +=
        static_cast<std::uint64_t>(recovery_stats_.snapshot_fallbacks);
    obs_recoveries_->inc();
    if (recovery_stats_.snapshot_fallbacks > 0)
      obs_snap_fallbacks_->inc(
          static_cast<std::uint64_t>(recovery_stats_.snapshot_fallbacks));
    net_log("info",
            "recovered generation " +
                std::to_string(recovery_stats_.generation) + ": " +
                std::to_string(recovery_stats_.snapshot_records) +
                " snapshot + " + std::to_string(recovery_stats_.wal_records) +
                " wal records" +
                (recovery_stats_.torn_tails > 0
                     ? ", torn tail dropped (" +
                           std::to_string(recovery_stats_.torn_bytes) +
                           " bytes)"
                     : ""));
  }
  {
    std::scoped_lock lock(mu_);
    batcher_ = std::make_shared<ReplicationBatcher>(
        env().metrics(), control_client(),
        BatcherOptions{.flush_interval = options_.flush_interval,
                       .call_timeout = options_.replicate_timeout});
    // Fresh guard per start: the previous one stays revoked so any task
    // still queued from the last life remains a no-op.
    read_tasks_ = net::TaskGuard();
  }
  monitor_ = std::jthread([this](std::stop_token st) { monitor_loop(st); });
  return util::Status::ok_status();
}

void PersistentStoreDaemon::shutdown_runtime(bool flush) {
  monitor_ = {};
  std::shared_ptr<ReplicationBatcher> batcher;
  std::shared_ptr<DurableLog> dlog;
  net::TaskGuard read_tasks;
  {
    std::scoped_lock lock(mu_);
    batcher = batcher_;
    dlog = dlog_;
    read_tasks = read_tasks_;
  }
  // Read fan-out / read-repair tasks still on the ops pool become no-ops;
  // revoke() waits out any mid-run one, so nothing touches a dead daemon.
  read_tasks.revoke();
  // Left in place (inert) — command handlers may still be draining and
  // submit() must fast-fail rather than touch a dead object.
  if (batcher) batcher->shutdown();
  // Graceful stop flushes the WAL tail; a crash must not (whatever was
  // not yet fsynced is exactly what the durability contract is about).
  if (dlog && flush) dlog->sync_all();
}

void PersistentStoreDaemon::on_stop() { shutdown_runtime(true); }

void PersistentStoreDaemon::on_crash() {
  shutdown_runtime(false);
  std::scoped_lock lock(mu_);
  if (!options_.disk) return;  // legacy in-memory replica: seed semantics
  // Process memory dies with the process: drop everything volatile and
  // make the next on_start prove itself from the disk.
  objects_.clear();
  tree_ = MerkleTree(tree_.depth());
  for (auto& bucket : bucket_keys_) bucket.clear();
  hints_.clear();
  lamport_ = 0;
  dlog_.reset();
}

// Peer liveness monitor: detects rejoins (peer restart or partition heal,
// from either side), runs anti-entropy so the cluster converges without a
// manual storeSync, and pushes hinted-handoff writes back to their owners.
// The first iteration doubles as the boot catch-up sync a rejoining
// replica needs.
void PersistentStoreDaemon::monitor_loop(std::stop_token st) {
  const auto slice = std::chrono::milliseconds(25);
  std::map<net::Address, bool> peer_up;
  bool first = true;
  while (!st.stop_requested()) {
    if (!first) {
      auto remaining = options_.probe_interval;
      while (remaining.count() > 0 && !st.stop_requested()) {
        std::this_thread::sleep_for(std::min(remaining, slice));
        remaining -= slice;
      }
      if (st.stop_requested()) return;
    }

    std::vector<net::Address> peers;
    {
      std::scoped_lock lock(mu_);
      peers = peers_;
    }
    bool rejoined = false;
    std::vector<net::Address> reachable;
    for (const net::Address& peer : peers) {
      auto pong = control_client().call(
          peer, CmdLine("ping"),
          daemon::CallOptions{.timeout = options_.probe_timeout,
                              .require_ok = true,
                              .retries = 0,
                              .backoff = std::chrono::milliseconds(0)});
      const bool up = pong.ok();
      if (up) reachable.push_back(peer);
      auto it = peer_up.find(peer);
      if (it == peer_up.end()) {
        peer_up[peer] = up;
      } else {
        if (!it->second && up) rejoined = true;
        it->second = up;
      }
    }
    if (st.stop_requested()) return;
    for (const net::Address& peer : reachable) drain_hints(peer);
    maybe_compact();  // durable mode: snapshot once the WAL outgrows it
    if (first || rejoined) {
      auto fetched = sync_from_peers();
      if (!first && fetched.ok()) {
        obs_rejoin_syncs_->inc();
        net_log("info", "peer rejoin detected; anti-entropy fetched " +
                            std::to_string(fetched.value()) + " objects");
      }
    }
    first = false;
  }
}

std::uint64_t PersistentStoreDaemon::next_version() {
  // Hybrid clock: wall microseconds, bumped past anything already seen
  // (Lamport absorption in apply()), replica id as tiebreak. The wall
  // component keeps versions monotone across coordinator failover — a
  // freshly restarted coordinator must not issue versions that lose LWW
  // to writes it never saw.
  const auto now = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          steady_clock::now().time_since_epoch())
          .count());
  std::scoped_lock lock(mu_);
  lamport_ = std::max(lamport_ + 1, now);
  return lamport_ << 8 | static_cast<std::uint64_t>(replica_id_ & 0xff);
}

WalTicket PersistentStoreDaemon::apply(const std::string& key,
                                       const ObjectRecord& record) {
  std::scoped_lock lock(mu_);
  return apply_locked(key, record, /*log=*/true);
}

WalTicket PersistentStoreDaemon::apply_locked(const std::string& key,
                                              const ObjectRecord& record,
                                              bool log) {
  // Lamport clock absorption: future local writes order after this one.
  lamport_ = std::max(lamport_, record.version >> 8);
  auto it = objects_.find(key);
  if (it != objects_.end() && it->second.version >= record.version) return {};
  const std::uint64_t pos = Ring::hash_key(key);
  std::uint64_t old_hash = 0;
  if (it != objects_.end()) {
    old_hash =
        MerkleTree::entry_hash(key, it->second.version, it->second.deleted);
  } else {
    bucket_keys_[tree_.bucket_of(pos)].insert(key);
  }
  tree_.update(pos, old_hash,
               MerkleTree::entry_hash(key, record.version, record.deleted));
  objects_[key] = record;
  if (!log) return {};  // recovery replay: the record came *from* the WAL
  obs_writes_->inc();
  if (!dlog_) return {};
  WalRecord r;
  r.kind = record.deleted ? WalRecord::kDelete : WalRecord::kPut;
  r.key = key;
  r.version = record.version;
  r.data = record.data;
  return dlog_->append(r);
}

void PersistentStoreDaemon::fold_recovered(const WalRecord& r) {
  switch (r.kind) {
    case WalRecord::kPut:
    case WalRecord::kDelete: {
      ObjectRecord record;
      record.version = r.version;
      record.data = r.data;
      record.deleted = r.kind == WalRecord::kDelete;
      apply_locked(r.key, record, /*log=*/false);
      break;
    }
    case WalRecord::kHint: {
      // Satellite of the durability contract: a W-acked sloppy write held
      // only as a hint survives the coordinator's death. The monitor's
      // drain probe picks it back up once the owner is reachable.
      if (auto owner = net::Address::parse(r.owner)) {
        std::uint64_t& slot = hints_[*owner][r.key];
        slot = std::max(slot, r.version);
      }
      break;
    }
    case WalRecord::kHintDrained: {
      if (auto owner = net::Address::parse(r.owner)) {
        auto it = hints_.find(*owner);
        if (it != hints_.end()) {
          it->second.erase(r.key);
          if (it->second.empty()) hints_.erase(it);
        }
      }
      break;
    }
    case WalRecord::kErase:
      erase_local_locked(r.key, /*log=*/false);
      break;
    default:
      break;
  }
}

void PersistentStoreDaemon::erase_local(const std::string& key) {
  std::scoped_lock lock(mu_);
  erase_local_locked(key, /*log=*/true);
}

void PersistentStoreDaemon::erase_local_locked(const std::string& key,
                                               bool log) {
  auto it = objects_.find(key);
  if (it == objects_.end()) return;
  const std::uint64_t pos = Ring::hash_key(key);
  tree_.update(pos,
               MerkleTree::entry_hash(key, it->second.version,
                                      it->second.deleted),
               0);
  bucket_keys_[tree_.bucket_of(pos)].erase(key);
  objects_.erase(it);
  if (log && dlog_) {
    // Lazily synced: resurrecting a shed stand-in copy after a crash is
    // harmless (the owner already has the record).
    WalRecord r;
    r.kind = WalRecord::kErase;
    r.key = key;
    (void)dlog_->append(r);
  }
}

bool PersistentStoreDaemon::owns(const std::string& key) const {
  std::scoped_lock lock(mu_);
  if (ring_.empty()) return true;
  const auto n =
      static_cast<std::size_t>(std::max(1, options_.replication));
  for (const net::Address& node : ring_.preference_list(key, n))
    if (node == address()) return true;
  return false;
}

WalTicket PersistentStoreDaemon::record_hint(const net::Address& intended,
                                             const std::string& key,
                                             std::uint64_t version) {
  if (intended == address()) return {};
  std::scoped_lock lock(mu_);
  std::uint64_t& slot = hints_[intended][key];
  slot = std::max(slot, version);
  obs_hints_recorded_->inc();
  if (!dlog_) return {};
  WalRecord r;
  r.kind = WalRecord::kHint;
  r.key = key;
  r.version = version;
  r.owner = intended.to_string();
  return dlog_->append(r);
}

void PersistentStoreDaemon::drain_hints(const net::Address& peer) {
  std::map<std::string, std::uint64_t> batch;
  {
    std::scoped_lock lock(mu_);
    auto it = hints_.find(peer);
    if (it == hints_.end() || it->second.empty()) return;
    batch.swap(it->second);
    hints_.erase(it);
  }
  for (const auto& [key, version] : batch) {
    ObjectRecord record;
    bool have = false;
    {
      std::scoped_lock lock(mu_);
      auto it = objects_.find(key);
      if (it != objects_.end() && it->second.version >= version) {
        record = it->second;
        have = true;
      }
    }
    if (!have) continue;  // superseded locally; anti-entropy covers the rest
    auto reply = control_client().call(
        peer, make_replicate_cmd(key, record, ""),
        daemon::CallOptions{.timeout = options_.replicate_timeout,
                            .retries = 0});
    if (reply.ok() && cmdlang::is_ok(reply.value())) {
      obs_hints_drained_->inc();
      {
        // Lazily synced: replaying an already-drained hint after a crash
        // just re-sends a record the owner LWW-ignores.
        std::scoped_lock lock(mu_);
        if (dlog_) {
          WalRecord r;
          r.kind = WalRecord::kHintDrained;
          r.key = key;
          r.owner = peer.to_string();
          (void)dlog_->append(r);
        }
      }
      // A stand-in that is not in the key's preference list sheds its
      // temporary copy once the owner has it.
      if (!owns(key)) erase_local(key);
    } else {
      std::scoped_lock lock(mu_);
      std::uint64_t& slot = hints_[peer][key];
      slot = std::max(slot, version);  // retry next probe round
    }
  }
}

std::size_t PersistentStoreDaemon::hints_pending() const {
  std::scoped_lock lock(mu_);
  std::size_t n = 0;
  for (const auto& [peer, keys] : hints_) n += keys.size();
  return n;
}

std::uint64_t PersistentStoreDaemon::merkle_root() const {
  std::scoped_lock lock(mu_);
  return tree_.root();
}

PersistentStoreDaemon::WriteOutcome PersistentStoreDaemon::coordinate_write(
    const std::string& key, const ObjectRecord& record) {
  obs::Span span(env().metrics(), "store", "replicate");
  std::vector<net::Address> order;
  std::shared_ptr<ReplicationBatcher> batcher;
  {
    std::scoped_lock lock(mu_);
    order = ring_.walk(key);
    batcher = batcher_;
  }
  const net::Address self = address();
  if (order.empty()) order.push_back(self);
  const auto n = std::min<std::size_t>(
      static_cast<std::size_t>(std::max(1, options_.replication)),
      order.size());
  const int w_eff =
      options_.write_quorum <= 0
          ? 0
          : std::min(options_.write_quorum, static_cast<int>(n));

  std::vector<net::Address> targets;
  bool self_owner = false;
  for (std::size_t i = 0; i < n; ++i) {
    if (order[i] == self)
      self_owner = true;
    else
      targets.push_back(order[i]);
  }

  int acks = 0;
  int peer_acks = 0;
  std::vector<WalTicket> tickets;
  if (self_owner) {
    tickets.push_back(apply(key, record));
    ++acks;
  }

  const auto deadline = steady_clock::now() + options_.replicate_timeout;
  std::vector<net::Address> failed;
  if (batcher && options_.group_commit) {
    std::vector<std::pair<net::Address,
                          std::shared_ptr<ReplicationBatcher::Pending>>>
        inflight;
    inflight.reserve(targets.size());
    const std::string entry = encode_replica_entry(key, record, "");
    for (const net::Address& t : targets)
      inflight.emplace_back(t, batcher->submit(t, entry));
    for (auto& [t, pending] : inflight) {
      // Every attempt is awaited even once W acks are in: a miss must be
      // *observed* to leave a hint behind, and that hint is what makes the
      // downed replica converge on heal. The per-peer circuit breaker
      // keeps waits on a dead peer cheap after the first few timeouts.
      if (pending->wait_until(deadline)) {
        ++acks;
        ++peer_acks;
      } else {
        failed.push_back(t);
      }
    }
  } else {
    // Ablation path: the seed's sequential per-write fan-out.
    CmdLine rep = make_replicate_cmd(key, record, "");
    for (const net::Address& t : targets) {
      auto reply = control_client().call(
          t, rep,
          daemon::CallOptions{.timeout = options_.replicate_timeout,
                              .retries = 0});
      if (reply.ok() && cmdlang::is_ok(reply.value())) {
        ++acks;
        ++peer_acks;
      } else {
        failed.push_back(t);
      }
    }
  }

  // Sloppy quorum: each unreachable owner's copy is handed to the next
  // ring successor, tagged with the intended owner so the stand-in can
  // push it home on heal. When the ring is exhausted (e.g. the 3-node
  // cluster, where there is no one left), an owning coordinator keeps a
  // local hint instead — targeted anti-entropy for the downed peer.
  std::size_t fallback_index = n;
  for (const net::Address& dead : failed) {
    bool handed = false;
    while (fallback_index < order.size() && !handed) {
      const net::Address fb = order[fallback_index++];
      if (fb == self) {
        tickets.push_back(apply(key, record));
        tickets.push_back(record_hint(dead, key, record.version));
        ++acks;
        handed = true;
        break;
      }
      auto reply = control_client().call(
          fb, make_replicate_cmd(key, record, dead.to_string()),
          daemon::CallOptions{.timeout = options_.replicate_timeout,
                              .retries = 0});
      if (reply.ok() && cmdlang::is_ok(reply.value())) {
        ++acks;
        ++peer_acks;
        handed = true;
      }
    }
    if (!handed && self_owner)
      tickets.push_back(record_hint(dead, key, record.version));
  }

  // Durability point: the local apply and any hints this ack rests on must
  // be on the platter before the coordinator replies ok. Concurrent
  // coordinators ride one leader fsync (group commit), so this costs one
  // flush per batch, not per write.
  for (const WalTicket& t : tickets) DurableLog::sync(t);

  obs_replica_acks_->inc(static_cast<std::uint64_t>(peer_acks));

  WriteOutcome out;
  out.acks = acks;
  out.quorum_met = w_eff == 0 || acks >= w_eff;
  if (!out.quorum_met) obs_quorum_failures_->inc();
  span.set_ok(out.quorum_met && failed.empty());
  return out;
}

CmdLine PersistentStoreDaemon::coordinate_read(const std::string& key) {
  return options_.digest_reads ? coordinate_read_digest(key)
                               : coordinate_read_serial(key);
}

// Parallel digest read: one full value (from this replica when it owns
// the key, else from the first listed owner) plus version digests from
// every other preference-list replica, all RPCs issued concurrently on
// the pipelined channel. The reply waits for R countable answers, not for
// the whole fan-out; if a digest outvotes the full copy, the newest value
// is fetched from one of its holders before replying, and any replica
// observed stale or absent is repaired off the reply path.
CmdLine PersistentStoreDaemon::coordinate_read_digest(const std::string& key) {
  std::vector<net::Address> prefs;
  net::TaskGuard guard;
  {
    std::scoped_lock lock(mu_);
    prefs = ring_.preference_list(
        key, static_cast<std::size_t>(std::max(1, options_.replication)));
    guard = read_tasks_;
  }
  const net::Address self = address();
  if (prefs.empty()) prefs.push_back(self);
  const int r_eff = std::max(
      1, std::min(options_.read_quorum, static_cast<int>(prefs.size())));

  // The full-value target; everyone else ships a digest.
  std::size_t full_index = 0;
  bool self_owner = false;
  for (std::size_t i = 0; i < prefs.size(); ++i) {
    if (prefs[i] == self) {
      full_index = i;
      self_owner = true;
      break;
    }
  }

  // Fast path: an owning coordinator's own copy satisfies R=1 without any
  // fan-out — identical to the legacy loop's first iteration.
  if (r_eff == 1 && self_owner) {
    std::scoped_lock lock(mu_);
    auto it = objects_.find(key);
    if (it == objects_.end() || it->second.deleted)
      return cmdlang::make_error(util::Errc::not_found, "no such object");
    CmdLine reply = cmdlang::make_ok();
    reply.arg("data", hex_of(it->second.data));
    reply.arg("version", static_cast<std::int64_t>(it->second.version));
    return reply;
  }

  obs_digest_reads_->inc();

  struct Vote {
    bool finished = false;  // the attempt completed (even unreachable)
    bool replied = false;   // countable: ok or authoritative not_found
    bool has = false;       // holds a record (maybe a tombstone)
    bool full = false;      // record.data is populated
    ObjectRecord record;
  };
  struct Gather {
    std::mutex mu;
    std::condition_variable cv;
    std::vector<Vote> votes;
  };
  auto gather = std::make_shared<Gather>();
  gather->votes.resize(prefs.size());

  // The local vote is answered inline under one lock scope — an owner
  // that lacks the key is a countable "authoritative absent".
  if (self_owner) {
    Vote& v = gather->votes[full_index];
    std::scoped_lock lock(mu_);
    v.finished = v.replied = true;
    auto it = objects_.find(key);
    if (it != objects_.end()) {
      v.has = v.full = true;
      v.record = it->second;
    }
  }

  const auto timeout = options_.replicate_timeout;
  for (std::size_t i = 0; i < prefs.size(); ++i) {
    if (self_owner && i == full_index) continue;
    const net::Address target = prefs[i];
    const bool want_full = !self_owner && i == full_index;
    env().reactor().post_blocking(guard.wrap([this, gather, i, target,
                                              want_full, key, timeout] {
      CmdLine sub(want_full ? "storeGet" : "storeGetDigest");
      sub.arg("key", key);
      if (want_full) sub.arg("scope", Word{"local"});
      auto reply = control_client().call(
          target, sub, daemon::CallOptions{.timeout = timeout, .retries = 0});
      Vote v;
      v.finished = true;
      if (reply.ok() && cmdlang::is_ok(reply.value())) {
        v.replied = v.has = true;
        v.record.version =
            static_cast<std::uint64_t>(reply->get_integer("version"));
        v.record.deleted = reply->get_text("deleted") == "yes";
        if (want_full) {
          v.full = true;
          v.record.data = bytes_of_hex(reply->get_text("data"));
        }
      } else if (reply.ok() && cmdlang::reply_error(reply.value()).code ==
                                   util::Errc::not_found) {
        v.replied = true;  // authoritative absence
      }
      std::scoped_lock lock(gather->mu);
      gather->votes[i] = std::move(v);
      gather->cv.notify_all();
    }));
  }

  // Quorum wait: R countable replies with the full-value attempt settled,
  // or everything finished, whichever is first. The deadline covers tasks
  // dropped by a stopping reactor or a revoked guard.
  std::vector<Vote> votes;
  {
    std::unique_lock lk(gather->mu);
    gather->cv.wait_until(
        lk, steady_clock::now() + timeout + std::chrono::milliseconds(200),
        [&] {
          int finished = 0;
          int replied = 0;
          for (const Vote& v : gather->votes) {
            if (v.finished) ++finished;
            if (v.replied) ++replied;
          }
          if (finished == static_cast<int>(gather->votes.size())) return true;
          return replied >= r_eff && gather->votes[full_index].finished;
        });
    votes = gather->votes;
  }

  int replies = 0;
  std::optional<std::size_t> best;  // newest record among the votes
  for (std::size_t i = 0; i < votes.size(); ++i) {
    if (votes[i].replied) ++replies;
    if (votes[i].has &&
        (!best || votes[i].record.version > votes[*best].record.version))
      best = i;
  }
  if (replies < r_eff) {
    obs_read_unavailable_->inc();
    return cmdlang::make_error(
        util::Errc::unavailable,
        "read quorum not met (replies=" + std::to_string(replies) +
            " R=" + std::to_string(r_eff) + ")");
  }
  if (!best)
    return cmdlang::make_error(util::Errc::not_found, "no such object");

  ObjectRecord winner = votes[*best].record;
  if (!votes[*best].full) {
    // The full-value copy was not the newest (or did not answer): the
    // digests disagreed. A live winner needs its bytes fetched from one
    // of the replicas that voted the newest version.
    obs_digest_mismatches_->inc();
    if (!winner.deleted) {
      bool materialized = false;
      CmdLine sub("storeGet");
      sub.arg("key", key);
      sub.arg("scope", Word{"local"});
      for (std::size_t i = 0; i < votes.size() && !materialized; ++i) {
        if (!votes[i].has || votes[i].record.version != winner.version)
          continue;
        auto reply = control_client().call(
            prefs[i], sub,
            daemon::CallOptions{.timeout = timeout, .retries = 0});
        if (!reply.ok() || !cmdlang::is_ok(reply.value())) continue;
        ObjectRecord fetched;
        fetched.version =
            static_cast<std::uint64_t>(reply->get_integer("version"));
        fetched.deleted = reply->get_text("deleted") == "yes";
        fetched.data = bytes_of_hex(reply->get_text("data"));
        if (fetched.version >= winner.version) {
          winner = std::move(fetched);
          materialized = true;
        }
      }
      // Never reply with a value older than the newest version observed:
      // the client's failover can try another coordinator instead.
      if (!materialized) {
        obs_read_unavailable_->inc();
        return cmdlang::make_error(util::Errc::unavailable,
                                   "newest version unreachable");
      }
    }
  }

  if (options_.read_repair) {
    std::vector<net::Address> stale;
    bool self_stale = false;
    for (std::size_t i = 0; i < votes.size(); ++i) {
      if (!votes[i].replied) continue;  // unreachable: hints/anti-entropy
      if (votes[i].has && votes[i].record.version >= winner.version) continue;
      if (prefs[i] == self)
        self_stale = true;
      else
        stale.push_back(prefs[i]);
    }
    if (self_stale) {
      // Inline and lazily synced: LWW makes a crash-replayed repair a
      // no-op, so the reply need not wait on the fsync.
      (void)apply(key, winner);
    }
    if (!stale.empty()) schedule_read_repair(key, winner, std::move(stale));
  }

  if (winner.deleted)
    return cmdlang::make_error(util::Errc::not_found, "no such object");
  CmdLine reply = cmdlang::make_ok();
  reply.arg("data", hex_of(winner.data));
  reply.arg("version", static_cast<std::int64_t>(winner.version));
  return reply;
}

// Legacy serial quorum read — the digest_reads=false ablation baseline.
// Kept bit-identical in reply shape to the digest path.
CmdLine PersistentStoreDaemon::coordinate_read_serial(const std::string& key) {
  std::vector<net::Address> prefs;
  {
    std::scoped_lock lock(mu_);
    prefs = ring_.preference_list(
        key, static_cast<std::size_t>(std::max(1, options_.replication)));
  }
  const net::Address self = address();
  const int r_eff = std::max(
      1, std::min(options_.read_quorum, static_cast<int>(prefs.size())));
  const bool self_owner =
      std::find(prefs.begin(), prefs.end(), self) != prefs.end();

  int replies = 0;
  std::optional<ObjectRecord> best;
  auto offer = [&best](ObjectRecord candidate) {
    if (!best || candidate.version > best->version)
      best = std::move(candidate);
  };

  if (self_owner) {
    // One lock scope for the whole local vote (an owner's authoritative
    // answer, even "absent").
    std::scoped_lock lock(mu_);
    ++replies;
    auto it = objects_.find(key);
    if (it != objects_.end()) offer(it->second);
  }

  if (replies < r_eff) {
    CmdLine sub("storeGet");
    sub.arg("key", key);
    sub.arg("scope", Word{"local"});
    for (const net::Address& node : prefs) {
      if (node == self) continue;
      if (replies >= r_eff) break;
      auto reply = control_client().call(
          node, sub,
          daemon::CallOptions{.timeout = options_.replicate_timeout,
                              .retries = 0});
      if (!reply.ok()) continue;
      if (cmdlang::is_ok(reply.value())) {
        ObjectRecord candidate;
        candidate.version =
            static_cast<std::uint64_t>(reply->get_integer("version"));
        candidate.deleted = reply->get_text("deleted") == "yes";
        candidate.data = bytes_of_hex(reply->get_text("data"));
        ++replies;
        offer(std::move(candidate));
      } else if (cmdlang::reply_error(reply.value()).code ==
                 util::Errc::not_found) {
        ++replies;  // authoritative absence
      }
    }
  }

  if (replies < r_eff) {
    obs_read_unavailable_->inc();
    return cmdlang::make_error(
        util::Errc::unavailable,
        "read quorum not met (replies=" + std::to_string(replies) +
            " R=" + std::to_string(r_eff) + ")");
  }
  if (!best || best->deleted)
    return cmdlang::make_error(util::Errc::not_found, "no such object");
  CmdLine reply = cmdlang::make_ok();
  reply.arg("data", hex_of(best->data));
  reply.arg("version", static_cast<std::int64_t>(best->version));
  return reply;
}

void PersistentStoreDaemon::schedule_read_repair(
    const std::string& key, const ObjectRecord& winner,
    std::vector<net::Address> stale) {
  net::TaskGuard guard;
  {
    std::scoped_lock lock(mu_);
    guard = read_tasks_;
  }
  const auto timeout = options_.replicate_timeout;
  for (const net::Address& peer : stale) {
    env().reactor().post_blocking(guard.wrap([this, key, winner, peer,
                                              timeout] {
      auto reply = control_client().call(
          peer, make_replicate_cmd(key, winner, ""),
          daemon::CallOptions{.timeout = timeout, .retries = 0});
      if (reply.ok() && cmdlang::is_ok(reply.value())) {
        obs_read_repairs_->inc();
      } else {
        // The repair missed; leave a hinted-handoff obligation so the
        // monitor pushes it home when the peer is reachable again.
        WalTicket t = record_hint(peer, key, winner.version);
        DurableLog::sync(t);
      }
    }));
  }
}

PersistentStoreDaemon::ScanPage PersistentStoreDaemon::scan_local(
    const std::string& prefix, const std::string& cursor,
    std::size_t limit) const {
  ScanPage page;
  std::scoped_lock lock(mu_);
  // Keys sharing a prefix are one contiguous run of the ordered map, so a
  // page is O(limit + tombstones skipped): start at the later of the
  // prefix run and the cursor, stop at the first non-matching key.
  auto it = (cursor.empty() || cursor < prefix) ? objects_.lower_bound(prefix)
                                                : objects_.upper_bound(cursor);
  for (; it != objects_.end(); ++it) {
    if (!util::starts_with(it->first, prefix)) break;
    if (page.keys.size() >= limit) {
      obs_scan_pages_->inc();
      return page;  // more remain past page.next: done stays false
    }
    page.next = it->first;  // advances over tombstones too
    if (!it->second.deleted) page.keys.push_back(it->first);
  }
  page.done = true;
  obs_scan_pages_->inc();
  return page;
}

std::string PersistentStoreDaemon::encode_scan_cursor(
    const std::vector<PeerCursor>& entries) {
  std::vector<std::string> packed;
  packed.reserve(entries.size());
  for (const PeerCursor& e : entries)
    packed.push_back(daemon::wire::pack_batch(
        {e.addr.to_string(), e.exhausted ? "e" : "a", e.last}));
  return daemon::wire::pack_batch(packed);
}

std::optional<std::vector<PersistentStoreDaemon::PeerCursor>>
PersistentStoreDaemon::parse_scan_cursor(const std::string& blob) {
  auto outer = daemon::wire::unpack_batch(blob);
  if (!outer || outer->empty()) return std::nullopt;
  std::vector<PeerCursor> entries;
  entries.reserve(outer->size());
  for (const std::string& packed : *outer) {
    auto fields = daemon::wire::unpack_batch(packed);
    if (!fields || fields->size() != 3) return std::nullopt;
    auto addr = net::Address::parse((*fields)[0]);
    if (!addr || ((*fields)[1] != "a" && (*fields)[1] != "e"))
      return std::nullopt;
    entries.push_back(PeerCursor{*addr, (*fields)[1] == "e", (*fields)[2]});
  }
  return entries;
}

// Cluster scan page: each shard serves one local page in parallel (self
// answered without an RPC), the coordinator merges them in order and only
// emits keys at or below the lowest point every still-active shard has
// been scanned to (the "barrier"), so no key can later arrive behind the
// emission front. The cursor blob records, per peer, where to resume —
// which makes the cursor resumable through any coordinator. Unreachable
// peers are dropped from the remainder of the scan, best effort, matching
// the storeList contract.
util::Result<PersistentStoreDaemon::ClusterPage>
PersistentStoreDaemon::scan_cluster(const std::string& prefix,
                                    const std::string& cursor_blob,
                                    std::size_t limit) {
  const net::Address self = address();
  std::vector<PeerCursor> entries;
  net::TaskGuard guard;
  if (cursor_blob.empty()) {
    std::scoped_lock lock(mu_);
    entries.push_back(PeerCursor{self, false, ""});
    for (const net::Address& peer : peers_)
      entries.push_back(PeerCursor{peer, false, ""});
    guard = read_tasks_;
  } else {
    auto parsed = parse_scan_cursor(cursor_blob);
    if (!parsed)
      return util::Error{util::Errc::semantic_error, "malformed scan cursor"};
    entries = std::move(*parsed);
    std::scoped_lock lock(mu_);
    guard = read_tasks_;
  }

  struct Slot {
    bool finished = false;
    bool ok = false;
    ScanPage page;
  };
  struct Gather {
    std::mutex mu;
    std::condition_variable cv;
    int outstanding = 0;
    std::vector<Slot> slots;
  };
  auto gather = std::make_shared<Gather>();
  gather->slots.resize(entries.size());

  const auto timeout = options_.replicate_timeout;
  for (std::size_t i = 0; i < entries.size(); ++i) {
    if (entries[i].exhausted || entries[i].addr == self) continue;
    ++gather->outstanding;
  }
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const PeerCursor& e = entries[i];
    Slot& slot = gather->slots[i];
    if (e.exhausted) {
      slot.finished = slot.ok = true;
      slot.page.done = true;
      continue;
    }
    if (e.addr == self) {
      slot.finished = slot.ok = true;
      slot.page = scan_local(prefix, e.last, limit);
      continue;
    }
    env().reactor().post_blocking(guard.wrap([this, gather, i, e, prefix,
                                              limit, timeout] {
      CmdLine sub("storeScan");
      sub.arg("prefix", prefix);
      sub.arg("cursor", e.last);
      sub.arg("limit", static_cast<std::int64_t>(limit));
      sub.arg("scope", Word{"local"});
      auto reply = control_client().call(
          e.addr, sub, daemon::CallOptions{.timeout = timeout, .retries = 0});
      Slot slot;
      slot.finished = true;
      if (reply.ok() && cmdlang::is_ok(reply.value())) {
        slot.ok = true;
        if (auto vec = reply->get_vector("keys"))
          for (const auto& elem : vec->elements)
            if (elem.is_string() || elem.is_word())
              slot.page.keys.push_back(elem.as_text());
        slot.page.next = reply->get_text("next");
        slot.page.done = reply->get_text("done") == "yes";
      }
      std::scoped_lock lock(gather->mu);
      gather->slots[i] = std::move(slot);
      if (--gather->outstanding == 0) gather->cv.notify_all();
    }));
  }

  std::vector<Slot> slots;
  {
    std::unique_lock lk(gather->mu);
    gather->cv.wait_until(
        lk, steady_clock::now() + timeout + std::chrono::milliseconds(200),
        [&] { return gather->outstanding == 0; });
    slots = gather->slots;
  }

  // Merge in order. A shard whose page is not done may hold further keys
  // just past what it sent, so nothing above the lowest such resume point
  // may be emitted yet.
  std::set<std::string> merged;
  std::optional<std::string> barrier;
  for (const Slot& s : slots) {
    if (!s.ok) continue;
    merged.insert(s.page.keys.begin(), s.page.keys.end());
    if (!s.page.done && (!barrier || s.page.next < *barrier))
      barrier = s.page.next;
  }

  ClusterPage out;
  for (const std::string& k : merged) {
    if (barrier && k > *barrier) break;
    if (out.keys.size() >= limit) break;
    out.keys.push_back(k);
  }

  const std::string front = out.keys.empty() ? "" : out.keys.back();
  bool all_done = true;
  for (std::size_t i = 0; i < entries.size(); ++i) {
    PeerCursor& e = entries[i];
    if (e.exhausted) continue;
    const Slot& s = slots[i];
    if (!s.ok || !s.finished) {
      e.exhausted = true;  // unreachable: dropped for the rest of the scan
      continue;
    }
    if (!out.keys.empty()) {
      if (s.page.done &&
          (s.page.keys.empty() || s.page.keys.back() <= front)) {
        e.exhausted = true;
      } else {
        // Anything this shard sent above the emission front is refetched
        // next page — bounded, duplicate-free waste.
        e.last = front;
        all_done = false;
      }
    } else {
      // Nothing emitted this round: a tombstone-dense shard may still be
      // walking. Advance it past its examined run; shards holding keys
      // above the barrier keep their cursor and re-send next round.
      if (s.page.done && s.page.keys.empty()) {
        e.exhausted = true;
      } else {
        if (!s.page.done) e.last = s.page.next;
        all_done = false;
      }
    }
  }

  out.done = all_done;
  out.next = all_done ? std::string() : encode_scan_cursor(entries);
  return out;
}

std::size_t PersistentStoreDaemon::object_count() const {
  std::scoped_lock lock(mu_);
  std::size_t n = 0;
  for (const auto& [key, record] : objects_)
    if (!record.deleted) ++n;
  return n;
}

std::optional<PersistentStoreDaemon::ObjectRecord>
PersistentStoreDaemon::object(const std::string& key) const {
  std::scoped_lock lock(mu_);
  auto it = objects_.find(key);
  if (it == objects_.end()) return std::nullopt;
  return it->second;
}

std::int64_t PersistentStoreDaemon::ingest_digest_entry(
    const net::Address& peer, const std::string& entry) {
  auto parts = util::split(entry, '|');
  if (parts.size() != 3) return 0;
  const std::string& key = parts[0];
  const std::uint64_t version = std::strtoull(parts[1].c_str(), nullptr, 10);
  bool newer;
  {
    std::scoped_lock lock(mu_);
    auto it = objects_.find(key);
    newer = it == objects_.end() || it->second.version < version;
  }
  if (!newer) return 0;
  // Sharded clusters: do not hoard keys this replica is not an owner of.
  if (!owns(key)) return 0;
  if (parts[2] == "d") {
    ObjectRecord tomb;
    tomb.version = version;
    tomb.deleted = true;
    apply(key, tomb);
    obs_sync_fetched_->inc();
    return 1;
  }
  CmdLine get("storeGet");
  get.arg("key", key);
  get.arg("scope", Word{"local"});
  auto obj = control_client().call(
      peer, get, daemon::CallOptions{.timeout = std::chrono::milliseconds(500),
                                     .retries = 0});
  if (!obj.ok() || !cmdlang::is_ok(obj.value())) return 0;
  ObjectRecord record;
  record.version = static_cast<std::uint64_t>(obj->get_integer("version"));
  record.data = bytes_of_hex(obj->get_text("data"));
  record.deleted = obj->get_text("deleted") == "yes";
  apply(key, record);
  obs_sync_fetched_->inc();
  return 1;
}

std::int64_t PersistentStoreDaemon::sync_with_peer_full(
    const net::Address& peer) {
  std::int64_t fetched = 0;
  auto digest = control_client().call(
      peer, CmdLine("storeDigest"),
      daemon::CallOptions{.timeout = std::chrono::milliseconds(500),
                          .retries = 0});
  if (!digest.ok() || !cmdlang::is_ok(digest.value())) return 0;
  auto entries = digest->get_vector("entries");
  if (!entries) return 0;
  for (const auto& elem : entries->elements) {
    if (!elem.is_string() && !elem.is_word()) continue;
    fetched += ingest_digest_entry(peer, elem.as_text());
  }
  return fetched;
}

std::int64_t PersistentStoreDaemon::sync_with_peer_merkle(
    const net::Address& peer) {
  std::int64_t fetched = 0;
  std::vector<std::size_t> frontier{1};
  std::vector<std::size_t> divergent_buckets;
  const std::size_t first_leaf = tree_.first_leaf();

  while (!frontier.empty()) {
    std::vector<std::size_t> divergent;
    for (std::size_t chunk = 0; chunk < frontier.size(); chunk += 256) {
      const std::size_t end = std::min(frontier.size(), chunk + 256);
      std::string ids;
      for (std::size_t i = chunk; i < end; ++i) {
        if (!ids.empty()) ids += ' ';
        ids += std::to_string(frontier[i]);
      }
      CmdLine req("storeDigestTree");
      req.arg("nodes", ids);
      auto reply = control_client().call(
          peer, req,
          daemon::CallOptions{.timeout = std::chrono::milliseconds(500),
                              .retries = 0});
      obs_tree_rpcs_->inc();
      if (!reply.ok() || !cmdlang::is_ok(reply.value())) return fetched;
      if (static_cast<int>(reply->get_integer("depth")) != tree_.depth())
        return fetched + sync_with_peer_full(peer);  // incompatible layout
      auto hashes = reply->get_vector("hashes");
      if (!hashes) return fetched;
      std::scoped_lock lock(mu_);
      for (const auto& elem : hashes->elements) {
        if (!elem.is_string() && !elem.is_word()) continue;
        auto parts = util::split(elem.as_text(), '|');
        if (parts.size() != 2) continue;
        const std::size_t id = std::strtoull(parts[0].c_str(), nullptr, 10);
        const std::uint64_t theirs =
            std::strtoull(parts[1].c_str(), nullptr, 10);
        if (tree_.node(id) != theirs) divergent.push_back(id);
      }
    }
    frontier.clear();
    for (std::size_t id : divergent) {
      if (id >= first_leaf) {
        divergent_buckets.push_back(id - first_leaf);
      } else {
        frontier.push_back(2 * id);
        frontier.push_back(2 * id + 1);
      }
    }
  }

  for (std::size_t bucket : divergent_buckets) {
    CmdLine req("storeDigestBucket");
    req.arg("bucket", static_cast<std::int64_t>(bucket));
    auto reply = control_client().call(
        peer, req,
        daemon::CallOptions{.timeout = std::chrono::milliseconds(500),
                            .retries = 0});
    obs_bucket_rpcs_->inc();
    if (!reply.ok() || !cmdlang::is_ok(reply.value())) continue;
    auto entries = reply->get_vector("entries");
    if (!entries) continue;
    for (const auto& elem : entries->elements) {
      if (!elem.is_string() && !elem.is_word()) continue;
      fetched += ingest_digest_entry(peer, elem.as_text());
    }
  }
  return fetched;
}

util::Result<std::int64_t> PersistentStoreDaemon::sync_from_peers() {
  std::vector<net::Address> peers;
  {
    std::scoped_lock lock(mu_);
    peers = peers_;
  }
  std::int64_t fetched = 0;
  for (const net::Address& peer : peers)
    fetched += options_.merkle_sync ? sync_with_peer_merkle(peer)
                                    : sync_with_peer_full(peer);
  // Anti-entropy applies are logged but lazily synced per entry; one flush
  // at the end of the round makes the whole catch-up durable. A crash
  // before it just means the next round re-fetches the tail.
  std::shared_ptr<DurableLog> dlog;
  {
    std::scoped_lock lock(mu_);
    dlog = dlog_;
  }
  if (dlog) dlog->sync_all();
  return fetched;
}

DurableLog::RecoveryStats PersistentStoreDaemon::last_recovery() const {
  std::scoped_lock lock(mu_);
  return recovery_stats_;
}

util::Result<std::int64_t> PersistentStoreDaemon::compact_now() {
  std::scoped_lock lock(mu_);
  if (!dlog_)
    return util::Error{util::Errc::invalid,
                       "no disk attached (StoreOptions.disk)"};
  // Holding mu_ blocks appenders, so the snapshot is an exact cut: every
  // record in it is ordered before everything the new WAL will hold.
  std::vector<WalRecord> records;
  records.reserve(objects_.size());
  for (const auto& [key, rec] : objects_) {
    WalRecord r;
    r.kind = rec.deleted ? WalRecord::kDelete : WalRecord::kPut;
    r.key = key;
    r.version = rec.version;
    r.data = rec.data;
    records.push_back(std::move(r));
  }
  for (const auto& [peer, keys] : hints_) {
    for (const auto& [key, version] : keys) {
      WalRecord r;
      r.kind = WalRecord::kHint;
      r.key = key;
      r.version = version;
      r.owner = peer.to_string();
      records.push_back(std::move(r));
    }
  }
  if (auto st = dlog_->compact(records); !st.ok()) return st.error();
  ++compactions_;
  obs_compactions_->inc();
  return static_cast<std::int64_t>(records.size());
}

void PersistentStoreDaemon::maybe_compact() {
  std::shared_ptr<DurableLog> dlog;
  {
    std::scoped_lock lock(mu_);
    dlog = dlog_;
  }
  if (!dlog || options_.compact_wal_bytes == 0) return;
  if (dlog->wal_bytes() < options_.compact_wal_bytes) return;
  (void)compact_now();
}

}  // namespace ace::store
