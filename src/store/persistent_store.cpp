#include "store/persistent_store.hpp"

#include <algorithm>
#include <cstdlib>

#include "daemon/wire.hpp"
#include "util/strings.hpp"

namespace ace::store {

using cmdlang::CmdLine;
using cmdlang::CommandSpec;
using cmdlang::integer_arg;
using cmdlang::string_arg;
using cmdlang::Word;
using cmdlang::word_arg;
using daemon::CallerInfo;
using std::chrono::steady_clock;

namespace {

daemon::DaemonConfig store_defaults(daemon::DaemonConfig config) {
  if (config.service_class.empty())
    config.service_class = "Service/PersistentStore";
  return config;
}

// One replicated record on the wire: a netstring-packed field tuple
// [key, version, d|l, hex data, hint owner or ""], nested inside the
// storeReplicateBatch `entries` payload (daemon/wire.hpp pack_batch).
std::string encode_replica_entry(const std::string& key,
                                 const PersistentStoreDaemon::ObjectRecord& r,
                                 const std::string& hint) {
  return daemon::wire::pack_batch({key, std::to_string(r.version),
                                   r.deleted ? "d" : "l", hex_of(r.data),
                                   hint});
}

CmdLine make_replicate_cmd(const std::string& key,
                           const PersistentStoreDaemon::ObjectRecord& r,
                           const std::string& hint) {
  CmdLine rep("storeReplicate");
  rep.arg("key", key);
  rep.arg("version", static_cast<std::int64_t>(r.version));
  rep.arg("data", hex_of(r.data));
  rep.arg("deleted", Word{r.deleted ? "yes" : "no"});
  if (!hint.empty()) rep.arg("hint", hint);
  return rep;
}

}  // namespace

util::Status validate_store_options(const StoreOptions& o) {
  auto bad = [](const std::string& msg) {
    return util::Status(util::Errc::invalid, "store config: " + msg);
  };
  if (o.replication < 1)
    return bad("replication must be >= 1 (got " +
               std::to_string(o.replication) + ")");
  if (o.write_quorum < 0 || o.write_quorum > o.replication)
    return bad("write_quorum (W=" + std::to_string(o.write_quorum) +
               ") must be in [0, replication=" +
               std::to_string(o.replication) + "]");
  if (o.read_quorum < 1 || o.read_quorum > o.replication)
    return bad("read_quorum (R=" + std::to_string(o.read_quorum) +
               ") must be in [1, replication=" +
               std::to_string(o.replication) + "]");
  if (o.vnodes < 1)
    return bad("vnodes must be positive (got " + std::to_string(o.vnodes) +
               ")");
  if (o.merkle_depth < 1 || o.merkle_depth > 20)
    return bad("merkle_depth must be in [1, 20] (got " +
               std::to_string(o.merkle_depth) + ")");
  return util::Status::ok_status();
}

std::string hex_of(const util::Bytes& data) { return util::hex_encode(data); }

util::Bytes bytes_of_hex(const std::string& hex) {
  util::Bytes out;
  auto nibble = [](char c) -> int {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    if (c >= 'A' && c <= 'F') return c - 'A' + 10;
    return -1;
  };
  if (hex.size() % 2 != 0) return out;
  out.reserve(hex.size() / 2);
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    int hi = nibble(hex[i]);
    int lo = nibble(hex[i + 1]);
    if (hi < 0 || lo < 0) return {};
    out.push_back(static_cast<std::uint8_t>(hi << 4 | lo));
  }
  return out;
}

PersistentStoreDaemon::PersistentStoreDaemon(daemon::Environment& env,
                                             daemon::DaemonHost& host,
                                             daemon::DaemonConfig config,
                                             int replica_id,
                                             StoreOptions options)
    : ServiceDaemon(env, host, store_defaults(std::move(config))),
      replica_id_(replica_id),
      options_(options),
      options_status_(validate_store_options(options)),
      // Clamped so a rejected config cannot blow up member construction;
      // on_start() surfaces the validation error before any use.
      tree_(std::clamp(options.merkle_depth, 1, 20)),
      bucket_keys_(tree_.leaf_count()),
      obs_writes_(&env.metrics().counter("store.writes")),
      obs_replica_acks_(&env.metrics().counter("store.replica_acks")),
      obs_rejoin_syncs_(&env.metrics().counter("store.rejoin_syncs")),
      obs_hints_recorded_(&env.metrics().counter("store.hints_recorded")),
      obs_hints_drained_(&env.metrics().counter("store.hints_drained")),
      obs_quorum_failures_(&env.metrics().counter("store.quorum_failures")),
      obs_tree_rpcs_(&env.metrics().counter("store.sync_tree_rpcs")),
      obs_bucket_rpcs_(&env.metrics().counter("store.sync_bucket_rpcs")),
      obs_sync_fetched_(&env.metrics().counter("store.sync_fetched")),
      obs_wal_appends_(&env.metrics().counter("store.wal_appends")),
      obs_wal_fsyncs_(&env.metrics().counter("store.wal_fsyncs")),
      obs_wal_torn_(&env.metrics().counter("store.wal_torn_tail_dropped")),
      obs_recoveries_(&env.metrics().counter("store.recoveries")),
      obs_compactions_(&env.metrics().counter("store.snapshot_compactions")),
      obs_snap_fallbacks_(&env.metrics().counter("store.snapshot_fallbacks")) {
  register_command(
      CommandSpec("storePut", "store an object (quorum write)").concurrent_ok()
          .arg(string_arg("key"))
          .arg(string_arg("data")),
      [this](const CmdLine& cmd, const CallerInfo&) {
        ObjectRecord record;
        record.data = bytes_of_hex(cmd.get_text("data"));
        record.version = next_version();
        std::string key = cmd.get_text("key");
        WriteOutcome out = coordinate_write(key, record);
        if (!out.quorum_met)
          return cmdlang::make_error(
              util::Errc::unavailable,
              "write quorum not met (acks=" + std::to_string(out.acks) + ")");
        CmdLine reply = cmdlang::make_ok();
        reply.arg("version", static_cast<std::int64_t>(record.version));
        reply.arg("acks", static_cast<std::int64_t>(out.acks));
        return reply;
      });

  register_command(
      CommandSpec("storeGet", "fetch an object (quorum read)").concurrent_ok()
          .arg(string_arg("key"))
          .arg(word_arg("scope").optional_arg().choices({"cluster", "local"})),
      [this](const CmdLine& cmd, const CallerInfo&) {
        const std::string key = cmd.get_text("key");
        if (cmd.get_text("scope") == "local") {
          std::scoped_lock lock(mu_);
          auto it = objects_.find(key);
          if (it == objects_.end())
            return cmdlang::make_error(util::Errc::not_found,
                                       "no such object");
          CmdLine reply = cmdlang::make_ok();
          reply.arg("data", hex_of(it->second.data));
          reply.arg("version",
                    static_cast<std::int64_t>(it->second.version));
          reply.arg("deleted", Word{it->second.deleted ? "yes" : "no"});
          return reply;
        }
        return coordinate_read(key);
      });

  register_command(
      CommandSpec("storeDelete", "remove an object (tombstone)").concurrent_ok()
          .arg(string_arg("key")),
      [this](const CmdLine& cmd, const CallerInfo&) {
        ObjectRecord record;
        record.deleted = true;
        record.version = next_version();
        std::string key = cmd.get_text("key");
        WriteOutcome out = coordinate_write(key, record);
        if (!out.quorum_met)
          return cmdlang::make_error(
              util::Errc::unavailable,
              "write quorum not met (acks=" + std::to_string(out.acks) + ")");
        CmdLine reply = cmdlang::make_ok();
        reply.arg("version", static_cast<std::int64_t>(record.version));
        reply.arg("acks", static_cast<std::int64_t>(out.acks));
        return reply;
      });

  register_command(
      CommandSpec("storeList", "list keys under a namespace prefix").concurrent_ok()
          .arg(string_arg("prefix").optional_arg())
          .arg(word_arg("scope").optional_arg().choices({"cluster", "local"})),
      [this](const CmdLine& cmd, const CallerInfo&) {
        const std::string prefix = cmd.get_text("prefix");
        std::set<std::string> keys;
        {
          std::scoped_lock lock(mu_);
          for (const auto& [key, record] : objects_) {
            if (record.deleted) continue;
            if (util::starts_with(key, prefix)) keys.insert(key);
          }
        }
        if (cmd.get_text("scope") != "local") {
          // Cluster scope: union the shards (a prefix does not map to one
          // ring arc, so every node is consulted; unreachable peers are
          // skipped, best effort).
          std::vector<net::Address> peers;
          {
            std::scoped_lock lock(mu_);
            peers = peers_;
          }
          CmdLine sub("storeList");
          sub.arg("prefix", prefix);
          sub.arg("scope", Word{"local"});
          for (const net::Address& peer : peers) {
            auto reply = control_client().call(
                peer, sub,
                daemon::CallOptions{.timeout = options_.replicate_timeout,
                                    .retries = 0});
            if (!reply.ok() || !cmdlang::is_ok(reply.value())) continue;
            if (auto vec = reply->get_vector("keys"))
              for (const auto& elem : vec->elements)
                if (elem.is_string() || elem.is_word())
                  keys.insert(elem.as_text());
          }
        }
        CmdLine reply = cmdlang::make_ok();
        reply.arg("keys", cmdlang::string_vector(
                              {keys.begin(), keys.end()}));
        return reply;
      });

  register_command(CommandSpec("storeCount", "count live objects (this replica)").concurrent_ok(),
                   [this](const CmdLine&, const CallerInfo&) {
                     CmdLine reply = cmdlang::make_ok();
                     reply.arg("count",
                               static_cast<std::int64_t>(object_count()));
                     return reply;
                   });

  register_command(
      CommandSpec("storeDigest", "full key/version digest (anti-entropy ablation)").concurrent_ok(),
      [this](const CmdLine&, const CallerInfo&) {
        std::vector<std::string> entries;
        {
          std::scoped_lock lock(mu_);
          for (const auto& [key, record] : objects_)
            entries.push_back(key + "|" + std::to_string(record.version) +
                              "|" + (record.deleted ? "d" : "l"));
        }
        CmdLine reply = cmdlang::make_ok();
        reply.arg("entries", cmdlang::string_vector(std::move(entries)));
        return reply;
      });

  register_command(
      CommandSpec("storeDigestTree", "Merkle digest-tree hashes for anti-entropy").concurrent_ok()
          .arg(string_arg("nodes")),
      [this](const CmdLine& cmd, const CallerInfo&) {
        std::vector<std::string> hashes;
        std::size_t served = 0;
        {
          std::scoped_lock lock(mu_);
          for (const std::string& tok :
               util::split(cmd.get_text("nodes"), ' ')) {
            if (tok.empty()) continue;
            if (++served > 2048) break;  // request-size cap
            const std::size_t id = std::strtoull(tok.c_str(), nullptr, 10);
            hashes.push_back(tok + "|" + std::to_string(tree_.node(id)));
          }
        }
        CmdLine reply = cmdlang::make_ok();
        reply.arg("depth", static_cast<std::int64_t>(tree_.depth()));
        reply.arg("leaves", static_cast<std::int64_t>(tree_.leaf_count()));
        reply.arg("hashes", cmdlang::string_vector(std::move(hashes)));
        return reply;
      });

  register_command(
      CommandSpec("storeDigestBucket", "key/version digest of one Merkle bucket").concurrent_ok()
          .arg(integer_arg("bucket")),
      [this](const CmdLine& cmd, const CallerInfo&) {
        const auto bucket = static_cast<std::size_t>(
            std::max<std::int64_t>(0, cmd.get_integer("bucket")));
        std::vector<std::string> entries;
        {
          std::scoped_lock lock(mu_);
          if (bucket < bucket_keys_.size())
            for (const std::string& key : bucket_keys_[bucket]) {
              auto it = objects_.find(key);
              if (it == objects_.end()) continue;
              entries.push_back(key + "|" +
                                std::to_string(it->second.version) + "|" +
                                (it->second.deleted ? "d" : "l"));
            }
        }
        CmdLine reply = cmdlang::make_ok();
        reply.arg("entries", cmdlang::string_vector(std::move(entries)));
        return reply;
      });

  register_command(
      CommandSpec("storeSync", "pull newer objects from peer replicas").concurrent_ok(),
      [this](const CmdLine&, const CallerInfo&) {
        auto fetched = sync_from_peers();
        if (!fetched.ok())
          return cmdlang::make_error(fetched.error().code,
                                     fetched.error().message);
        CmdLine reply = cmdlang::make_ok();
        reply.arg("fetched", fetched.value());
        return reply;
      });

  // Peer-internal replication message. `hint` names the intended owner
  // when this replica is a sloppy-quorum stand-in for a downed peer.
  register_command(
      CommandSpec("storeReplicate", "apply a replicated write (internal)").concurrent_ok()
          .arg(string_arg("key"))
          .arg(integer_arg("version"))
          .arg(string_arg("data"))
          .arg(word_arg("deleted").choices({"yes", "no"}))
          .arg(string_arg("hint").optional_arg()),
      [this](const CmdLine& cmd, const CallerInfo&) {
        ObjectRecord record;
        record.version = static_cast<std::uint64_t>(cmd.get_integer("version"));
        record.data = bytes_of_hex(cmd.get_text("data"));
        record.deleted = cmd.get_text("deleted") == "yes";
        const std::string key = cmd.get_text("key");
        WalTicket t = apply(key, record);
        WalTicket h;
        if (auto intended = net::Address::parse(cmd.get_text("hint")))
          h = record_hint(*intended, key, record.version);
        // The ok below is this replica's durability promise: flush first.
        DurableLog::sync(t);
        DurableLog::sync(h);
        return cmdlang::make_ok();
      });

  // Peer-internal group commit: one frame carrying many replicated writes
  // (daemon/wire.hpp pack_batch of encode_replica_entry records).
  register_command(
      CommandSpec("storeReplicateBatch", "apply a batch of replicated writes (internal)").concurrent_ok()
          .arg(string_arg("entries")),
      [this](const CmdLine& cmd, const CallerInfo&) {
        auto records = daemon::wire::unpack_batch(cmd.get_text("entries"));
        if (!records)
          return cmdlang::make_error(util::Errc::semantic_error,
                                     "malformed batch payload");
        std::int64_t applied = 0;
        std::vector<WalTicket> tickets;
        for (const std::string& packed : *records) {
          auto fields = daemon::wire::unpack_batch(packed);
          if (!fields || fields->size() != 5) continue;
          ObjectRecord record;
          record.version = std::strtoull((*fields)[1].c_str(), nullptr, 10);
          record.deleted = (*fields)[2] == "d";
          record.data = bytes_of_hex((*fields)[3]);
          tickets.push_back(apply((*fields)[0], record));
          if (auto intended = net::Address::parse((*fields)[4]))
            tickets.push_back(
                record_hint(*intended, (*fields)[0], record.version));
          ++applied;
        }
        // One group-commit flush covers the whole batch: the first sync
        // fsyncs everything appended, the rest return immediately.
        for (const WalTicket& t : tickets) DurableLog::sync(t);
        CmdLine reply = cmdlang::make_ok();
        reply.arg("applied", applied);
        return reply;
      });

  register_command(
      CommandSpec("storeWalStats", "durability status of this replica").concurrent_ok(),
      [this](const CmdLine&, const CallerInfo&) {
        std::shared_ptr<DurableLog> dlog;
        std::uint64_t recoveries, compactions, torn, fallbacks;
        {
          std::scoped_lock lock(mu_);
          dlog = dlog_;
          recoveries = recoveries_;
          compactions = compactions_;
          torn = torn_tails_;
          fallbacks = snapshot_fallbacks_;
        }
        const bool durable = options_.disk != nullptr;
        CmdLine reply = cmdlang::make_ok();
        reply.arg("durable", Word{durable ? "yes" : "no"});
        reply.arg("generation",
                  static_cast<std::int64_t>(dlog ? dlog->generation() : 0));
        reply.arg("wal_records",
                  static_cast<std::int64_t>(dlog ? dlog->wal_records() : 0));
        reply.arg("wal_bytes",
                  static_cast<std::int64_t>(dlog ? dlog->wal_bytes() : 0));
        reply.arg("recoveries", static_cast<std::int64_t>(recoveries));
        reply.arg("compactions", static_cast<std::int64_t>(compactions));
        reply.arg("torn_dropped", static_cast<std::int64_t>(torn));
        reply.arg("snapshot_fallbacks", static_cast<std::int64_t>(fallbacks));
        return reply;
      });

  register_command(
      CommandSpec("storeCompact",
                  "snapshot local state and rotate the WAL").concurrent_ok(),
      [this](const CmdLine&, const CallerInfo&) {
        auto records = compact_now();
        if (!records.ok())
          return cmdlang::make_error(records.error().code,
                                     records.error().message);
        std::shared_ptr<DurableLog> dlog;
        {
          std::scoped_lock lock(mu_);
          dlog = dlog_;
        }
        CmdLine reply = cmdlang::make_ok();
        reply.arg("generation",
                  static_cast<std::int64_t>(dlog ? dlog->generation() : 0));
        reply.arg("records", records.value());
        return reply;
      });
}

void PersistentStoreDaemon::set_peers(std::vector<net::Address> peers) {
  {
    std::scoped_lock lock(mu_);
    peers_ = std::move(peers);
  }
  rebuild_ring();
}

void PersistentStoreDaemon::rebuild_ring() {
  std::scoped_lock lock(mu_);
  std::vector<net::Address> nodes = peers_;
  nodes.push_back(address());
  // max() guards a rejected config (on_start refuses it before any use).
  ring_ = Ring(std::move(nodes), std::max(1, options_.vnodes));
}

util::Status PersistentStoreDaemon::on_start() {
  if (!options_status_.ok()) return options_status_;
  rebuild_ring();  // the listen port is final now
  if (options_.disk) {
    // Local recovery first, before the monitor's boot sync: snapshot + WAL
    // replay rebuilds everything this replica had durably acknowledged, so
    // Merkle anti-entropy afterwards only covers the divergence tail.
    auto dlog = std::make_shared<DurableLog>(
        *options_.disk, config().name,
        WalCounters{obs_wal_appends_, obs_wal_fsyncs_, obs_wal_torn_});
    std::scoped_lock lock(mu_);
    recovery_stats_ =
        dlog->recover([this](const WalRecord& r) { fold_recovered(r); });
    dlog_ = std::move(dlog);
    ++recoveries_;
    torn_tails_ += static_cast<std::uint64_t>(recovery_stats_.torn_tails);
    snapshot_fallbacks_ +=
        static_cast<std::uint64_t>(recovery_stats_.snapshot_fallbacks);
    obs_recoveries_->inc();
    if (recovery_stats_.snapshot_fallbacks > 0)
      obs_snap_fallbacks_->inc(
          static_cast<std::uint64_t>(recovery_stats_.snapshot_fallbacks));
    net_log("info",
            "recovered generation " +
                std::to_string(recovery_stats_.generation) + ": " +
                std::to_string(recovery_stats_.snapshot_records) +
                " snapshot + " + std::to_string(recovery_stats_.wal_records) +
                " wal records" +
                (recovery_stats_.torn_tails > 0
                     ? ", torn tail dropped (" +
                           std::to_string(recovery_stats_.torn_bytes) +
                           " bytes)"
                     : ""));
  }
  {
    std::scoped_lock lock(mu_);
    batcher_ = std::make_shared<ReplicationBatcher>(
        env().metrics(), control_client(),
        BatcherOptions{.flush_interval = options_.flush_interval,
                       .call_timeout = options_.replicate_timeout});
  }
  monitor_ = std::jthread([this](std::stop_token st) { monitor_loop(st); });
  return util::Status::ok_status();
}

void PersistentStoreDaemon::shutdown_runtime(bool flush) {
  monitor_ = {};
  std::shared_ptr<ReplicationBatcher> batcher;
  std::shared_ptr<DurableLog> dlog;
  {
    std::scoped_lock lock(mu_);
    batcher = batcher_;
    dlog = dlog_;
  }
  // Left in place (inert) — command handlers may still be draining and
  // submit() must fast-fail rather than touch a dead object.
  if (batcher) batcher->shutdown();
  // Graceful stop flushes the WAL tail; a crash must not (whatever was
  // not yet fsynced is exactly what the durability contract is about).
  if (dlog && flush) dlog->sync_all();
}

void PersistentStoreDaemon::on_stop() { shutdown_runtime(true); }

void PersistentStoreDaemon::on_crash() {
  shutdown_runtime(false);
  std::scoped_lock lock(mu_);
  if (!options_.disk) return;  // legacy in-memory replica: seed semantics
  // Process memory dies with the process: drop everything volatile and
  // make the next on_start prove itself from the disk.
  objects_.clear();
  tree_ = MerkleTree(tree_.depth());
  for (auto& bucket : bucket_keys_) bucket.clear();
  hints_.clear();
  lamport_ = 0;
  dlog_.reset();
}

// Peer liveness monitor: detects rejoins (peer restart or partition heal,
// from either side), runs anti-entropy so the cluster converges without a
// manual storeSync, and pushes hinted-handoff writes back to their owners.
// The first iteration doubles as the boot catch-up sync a rejoining
// replica needs.
void PersistentStoreDaemon::monitor_loop(std::stop_token st) {
  const auto slice = std::chrono::milliseconds(25);
  std::map<net::Address, bool> peer_up;
  bool first = true;
  while (!st.stop_requested()) {
    if (!first) {
      auto remaining = options_.probe_interval;
      while (remaining.count() > 0 && !st.stop_requested()) {
        std::this_thread::sleep_for(std::min(remaining, slice));
        remaining -= slice;
      }
      if (st.stop_requested()) return;
    }

    std::vector<net::Address> peers;
    {
      std::scoped_lock lock(mu_);
      peers = peers_;
    }
    bool rejoined = false;
    std::vector<net::Address> reachable;
    for (const net::Address& peer : peers) {
      auto pong = control_client().call(
          peer, CmdLine("ping"),
          daemon::CallOptions{.timeout = options_.probe_timeout,
                              .require_ok = true,
                              .retries = 0,
                              .backoff = std::chrono::milliseconds(0)});
      const bool up = pong.ok();
      if (up) reachable.push_back(peer);
      auto it = peer_up.find(peer);
      if (it == peer_up.end()) {
        peer_up[peer] = up;
      } else {
        if (!it->second && up) rejoined = true;
        it->second = up;
      }
    }
    if (st.stop_requested()) return;
    for (const net::Address& peer : reachable) drain_hints(peer);
    maybe_compact();  // durable mode: snapshot once the WAL outgrows it
    if (first || rejoined) {
      auto fetched = sync_from_peers();
      if (!first && fetched.ok()) {
        obs_rejoin_syncs_->inc();
        net_log("info", "peer rejoin detected; anti-entropy fetched " +
                            std::to_string(fetched.value()) + " objects");
      }
    }
    first = false;
  }
}

std::uint64_t PersistentStoreDaemon::next_version() {
  // Hybrid clock: wall microseconds, bumped past anything already seen
  // (Lamport absorption in apply()), replica id as tiebreak. The wall
  // component keeps versions monotone across coordinator failover — a
  // freshly restarted coordinator must not issue versions that lose LWW
  // to writes it never saw.
  const auto now = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          steady_clock::now().time_since_epoch())
          .count());
  std::scoped_lock lock(mu_);
  lamport_ = std::max(lamport_ + 1, now);
  return lamport_ << 8 | static_cast<std::uint64_t>(replica_id_ & 0xff);
}

WalTicket PersistentStoreDaemon::apply(const std::string& key,
                                       const ObjectRecord& record) {
  std::scoped_lock lock(mu_);
  return apply_locked(key, record, /*log=*/true);
}

WalTicket PersistentStoreDaemon::apply_locked(const std::string& key,
                                              const ObjectRecord& record,
                                              bool log) {
  // Lamport clock absorption: future local writes order after this one.
  lamport_ = std::max(lamport_, record.version >> 8);
  auto it = objects_.find(key);
  if (it != objects_.end() && it->second.version >= record.version) return {};
  const std::uint64_t pos = Ring::hash_key(key);
  std::uint64_t old_hash = 0;
  if (it != objects_.end()) {
    old_hash =
        MerkleTree::entry_hash(key, it->second.version, it->second.deleted);
  } else {
    bucket_keys_[tree_.bucket_of(pos)].insert(key);
  }
  tree_.update(pos, old_hash,
               MerkleTree::entry_hash(key, record.version, record.deleted));
  objects_[key] = record;
  if (!log) return {};  // recovery replay: the record came *from* the WAL
  obs_writes_->inc();
  if (!dlog_) return {};
  WalRecord r;
  r.kind = record.deleted ? WalRecord::kDelete : WalRecord::kPut;
  r.key = key;
  r.version = record.version;
  r.data = record.data;
  return dlog_->append(r);
}

void PersistentStoreDaemon::fold_recovered(const WalRecord& r) {
  switch (r.kind) {
    case WalRecord::kPut:
    case WalRecord::kDelete: {
      ObjectRecord record;
      record.version = r.version;
      record.data = r.data;
      record.deleted = r.kind == WalRecord::kDelete;
      apply_locked(r.key, record, /*log=*/false);
      break;
    }
    case WalRecord::kHint: {
      // Satellite of the durability contract: a W-acked sloppy write held
      // only as a hint survives the coordinator's death. The monitor's
      // drain probe picks it back up once the owner is reachable.
      if (auto owner = net::Address::parse(r.owner)) {
        std::uint64_t& slot = hints_[*owner][r.key];
        slot = std::max(slot, r.version);
      }
      break;
    }
    case WalRecord::kHintDrained: {
      if (auto owner = net::Address::parse(r.owner)) {
        auto it = hints_.find(*owner);
        if (it != hints_.end()) {
          it->second.erase(r.key);
          if (it->second.empty()) hints_.erase(it);
        }
      }
      break;
    }
    case WalRecord::kErase:
      erase_local_locked(r.key, /*log=*/false);
      break;
    default:
      break;
  }
}

void PersistentStoreDaemon::erase_local(const std::string& key) {
  std::scoped_lock lock(mu_);
  erase_local_locked(key, /*log=*/true);
}

void PersistentStoreDaemon::erase_local_locked(const std::string& key,
                                               bool log) {
  auto it = objects_.find(key);
  if (it == objects_.end()) return;
  const std::uint64_t pos = Ring::hash_key(key);
  tree_.update(pos,
               MerkleTree::entry_hash(key, it->second.version,
                                      it->second.deleted),
               0);
  bucket_keys_[tree_.bucket_of(pos)].erase(key);
  objects_.erase(it);
  if (log && dlog_) {
    // Lazily synced: resurrecting a shed stand-in copy after a crash is
    // harmless (the owner already has the record).
    WalRecord r;
    r.kind = WalRecord::kErase;
    r.key = key;
    (void)dlog_->append(r);
  }
}

bool PersistentStoreDaemon::owns(const std::string& key) const {
  std::scoped_lock lock(mu_);
  if (ring_.empty()) return true;
  const auto n =
      static_cast<std::size_t>(std::max(1, options_.replication));
  for (const net::Address& node : ring_.preference_list(key, n))
    if (node == address()) return true;
  return false;
}

WalTicket PersistentStoreDaemon::record_hint(const net::Address& intended,
                                             const std::string& key,
                                             std::uint64_t version) {
  if (intended == address()) return {};
  std::scoped_lock lock(mu_);
  std::uint64_t& slot = hints_[intended][key];
  slot = std::max(slot, version);
  obs_hints_recorded_->inc();
  if (!dlog_) return {};
  WalRecord r;
  r.kind = WalRecord::kHint;
  r.key = key;
  r.version = version;
  r.owner = intended.to_string();
  return dlog_->append(r);
}

void PersistentStoreDaemon::drain_hints(const net::Address& peer) {
  std::map<std::string, std::uint64_t> batch;
  {
    std::scoped_lock lock(mu_);
    auto it = hints_.find(peer);
    if (it == hints_.end() || it->second.empty()) return;
    batch.swap(it->second);
    hints_.erase(it);
  }
  for (const auto& [key, version] : batch) {
    ObjectRecord record;
    bool have = false;
    {
      std::scoped_lock lock(mu_);
      auto it = objects_.find(key);
      if (it != objects_.end() && it->second.version >= version) {
        record = it->second;
        have = true;
      }
    }
    if (!have) continue;  // superseded locally; anti-entropy covers the rest
    auto reply = control_client().call(
        peer, make_replicate_cmd(key, record, ""),
        daemon::CallOptions{.timeout = options_.replicate_timeout,
                            .retries = 0});
    if (reply.ok() && cmdlang::is_ok(reply.value())) {
      obs_hints_drained_->inc();
      {
        // Lazily synced: replaying an already-drained hint after a crash
        // just re-sends a record the owner LWW-ignores.
        std::scoped_lock lock(mu_);
        if (dlog_) {
          WalRecord r;
          r.kind = WalRecord::kHintDrained;
          r.key = key;
          r.owner = peer.to_string();
          (void)dlog_->append(r);
        }
      }
      // A stand-in that is not in the key's preference list sheds its
      // temporary copy once the owner has it.
      if (!owns(key)) erase_local(key);
    } else {
      std::scoped_lock lock(mu_);
      std::uint64_t& slot = hints_[peer][key];
      slot = std::max(slot, version);  // retry next probe round
    }
  }
}

std::size_t PersistentStoreDaemon::hints_pending() const {
  std::scoped_lock lock(mu_);
  std::size_t n = 0;
  for (const auto& [peer, keys] : hints_) n += keys.size();
  return n;
}

std::uint64_t PersistentStoreDaemon::merkle_root() const {
  std::scoped_lock lock(mu_);
  return tree_.root();
}

PersistentStoreDaemon::WriteOutcome PersistentStoreDaemon::coordinate_write(
    const std::string& key, const ObjectRecord& record) {
  obs::Span span(env().metrics(), "store", "replicate");
  std::vector<net::Address> order;
  std::shared_ptr<ReplicationBatcher> batcher;
  {
    std::scoped_lock lock(mu_);
    order = ring_.walk(key);
    batcher = batcher_;
  }
  const net::Address self = address();
  if (order.empty()) order.push_back(self);
  const auto n = std::min<std::size_t>(
      static_cast<std::size_t>(std::max(1, options_.replication)),
      order.size());
  const int w_eff =
      options_.write_quorum <= 0
          ? 0
          : std::min(options_.write_quorum, static_cast<int>(n));

  std::vector<net::Address> targets;
  bool self_owner = false;
  for (std::size_t i = 0; i < n; ++i) {
    if (order[i] == self)
      self_owner = true;
    else
      targets.push_back(order[i]);
  }

  int acks = 0;
  int peer_acks = 0;
  std::vector<WalTicket> tickets;
  if (self_owner) {
    tickets.push_back(apply(key, record));
    ++acks;
  }

  const auto deadline = steady_clock::now() + options_.replicate_timeout;
  std::vector<net::Address> failed;
  if (batcher && options_.group_commit) {
    std::vector<std::pair<net::Address,
                          std::shared_ptr<ReplicationBatcher::Pending>>>
        inflight;
    inflight.reserve(targets.size());
    const std::string entry = encode_replica_entry(key, record, "");
    for (const net::Address& t : targets)
      inflight.emplace_back(t, batcher->submit(t, entry));
    for (auto& [t, pending] : inflight) {
      // Every attempt is awaited even once W acks are in: a miss must be
      // *observed* to leave a hint behind, and that hint is what makes the
      // downed replica converge on heal. The per-peer circuit breaker
      // keeps waits on a dead peer cheap after the first few timeouts.
      if (pending->wait_until(deadline)) {
        ++acks;
        ++peer_acks;
      } else {
        failed.push_back(t);
      }
    }
  } else {
    // Ablation path: the seed's sequential per-write fan-out.
    CmdLine rep = make_replicate_cmd(key, record, "");
    for (const net::Address& t : targets) {
      auto reply = control_client().call(
          t, rep,
          daemon::CallOptions{.timeout = options_.replicate_timeout,
                              .retries = 0});
      if (reply.ok() && cmdlang::is_ok(reply.value())) {
        ++acks;
        ++peer_acks;
      } else {
        failed.push_back(t);
      }
    }
  }

  // Sloppy quorum: each unreachable owner's copy is handed to the next
  // ring successor, tagged with the intended owner so the stand-in can
  // push it home on heal. When the ring is exhausted (e.g. the 3-node
  // cluster, where there is no one left), an owning coordinator keeps a
  // local hint instead — targeted anti-entropy for the downed peer.
  std::size_t fallback_index = n;
  for (const net::Address& dead : failed) {
    bool handed = false;
    while (fallback_index < order.size() && !handed) {
      const net::Address fb = order[fallback_index++];
      if (fb == self) {
        tickets.push_back(apply(key, record));
        tickets.push_back(record_hint(dead, key, record.version));
        ++acks;
        handed = true;
        break;
      }
      auto reply = control_client().call(
          fb, make_replicate_cmd(key, record, dead.to_string()),
          daemon::CallOptions{.timeout = options_.replicate_timeout,
                              .retries = 0});
      if (reply.ok() && cmdlang::is_ok(reply.value())) {
        ++acks;
        ++peer_acks;
        handed = true;
      }
    }
    if (!handed && self_owner)
      tickets.push_back(record_hint(dead, key, record.version));
  }

  // Durability point: the local apply and any hints this ack rests on must
  // be on the platter before the coordinator replies ok. Concurrent
  // coordinators ride one leader fsync (group commit), so this costs one
  // flush per batch, not per write.
  for (const WalTicket& t : tickets) DurableLog::sync(t);

  obs_replica_acks_->inc(static_cast<std::uint64_t>(peer_acks));

  WriteOutcome out;
  out.acks = acks;
  out.quorum_met = w_eff == 0 || acks >= w_eff;
  if (!out.quorum_met) obs_quorum_failures_->inc();
  span.set_ok(out.quorum_met && failed.empty());
  return out;
}

CmdLine PersistentStoreDaemon::coordinate_read(const std::string& key) {
  std::vector<net::Address> prefs;
  {
    std::scoped_lock lock(mu_);
    prefs = ring_.preference_list(
        key, static_cast<std::size_t>(std::max(1, options_.replication)));
  }
  const net::Address self = address();
  const int r_eff = std::max(
      1, std::min(options_.read_quorum, static_cast<int>(prefs.size())));

  int replies = 0;
  std::optional<ObjectRecord> best;
  auto offer = [&best](ObjectRecord candidate) {
    if (!best || candidate.version > best->version)
      best = std::move(candidate);
  };

  for (const net::Address& node : prefs) {
    if (node != self) continue;
    std::scoped_lock lock(mu_);
    ++replies;  // an owner's authoritative answer, even "absent"
    auto it = objects_.find(key);
    if (it != objects_.end()) offer(it->second);
  }

  if (replies < r_eff) {
    CmdLine sub("storeGet");
    sub.arg("key", key);
    sub.arg("scope", Word{"local"});
    for (const net::Address& node : prefs) {
      if (node == self) continue;
      if (replies >= r_eff) break;
      auto reply = control_client().call(
          node, sub,
          daemon::CallOptions{.timeout = options_.replicate_timeout,
                              .retries = 0});
      if (!reply.ok()) continue;
      if (cmdlang::is_ok(reply.value())) {
        ObjectRecord candidate;
        candidate.version =
            static_cast<std::uint64_t>(reply->get_integer("version"));
        candidate.deleted = reply->get_text("deleted") == "yes";
        candidate.data = bytes_of_hex(reply->get_text("data"));
        ++replies;
        offer(std::move(candidate));
      } else if (cmdlang::reply_error(reply.value()).code ==
                 util::Errc::not_found) {
        ++replies;  // authoritative absence
      }
    }
  }

  if (replies == 0)
    return cmdlang::make_error(util::Errc::unavailable,
                               "no replica for key reachable");
  if (!best || best->deleted)
    return cmdlang::make_error(util::Errc::not_found, "no such object");
  CmdLine reply = cmdlang::make_ok();
  reply.arg("data", hex_of(best->data));
  reply.arg("version", static_cast<std::int64_t>(best->version));
  return reply;
}

std::size_t PersistentStoreDaemon::object_count() const {
  std::scoped_lock lock(mu_);
  std::size_t n = 0;
  for (const auto& [key, record] : objects_)
    if (!record.deleted) ++n;
  return n;
}

std::optional<PersistentStoreDaemon::ObjectRecord>
PersistentStoreDaemon::object(const std::string& key) const {
  std::scoped_lock lock(mu_);
  auto it = objects_.find(key);
  if (it == objects_.end()) return std::nullopt;
  return it->second;
}

std::int64_t PersistentStoreDaemon::ingest_digest_entry(
    const net::Address& peer, const std::string& entry) {
  auto parts = util::split(entry, '|');
  if (parts.size() != 3) return 0;
  const std::string& key = parts[0];
  const std::uint64_t version = std::strtoull(parts[1].c_str(), nullptr, 10);
  bool newer;
  {
    std::scoped_lock lock(mu_);
    auto it = objects_.find(key);
    newer = it == objects_.end() || it->second.version < version;
  }
  if (!newer) return 0;
  // Sharded clusters: do not hoard keys this replica is not an owner of.
  if (!owns(key)) return 0;
  if (parts[2] == "d") {
    ObjectRecord tomb;
    tomb.version = version;
    tomb.deleted = true;
    apply(key, tomb);
    obs_sync_fetched_->inc();
    return 1;
  }
  CmdLine get("storeGet");
  get.arg("key", key);
  get.arg("scope", Word{"local"});
  auto obj = control_client().call(
      peer, get, daemon::CallOptions{.timeout = std::chrono::milliseconds(500),
                                     .retries = 0});
  if (!obj.ok() || !cmdlang::is_ok(obj.value())) return 0;
  ObjectRecord record;
  record.version = static_cast<std::uint64_t>(obj->get_integer("version"));
  record.data = bytes_of_hex(obj->get_text("data"));
  record.deleted = obj->get_text("deleted") == "yes";
  apply(key, record);
  obs_sync_fetched_->inc();
  return 1;
}

std::int64_t PersistentStoreDaemon::sync_with_peer_full(
    const net::Address& peer) {
  std::int64_t fetched = 0;
  auto digest = control_client().call(
      peer, CmdLine("storeDigest"),
      daemon::CallOptions{.timeout = std::chrono::milliseconds(500),
                          .retries = 0});
  if (!digest.ok() || !cmdlang::is_ok(digest.value())) return 0;
  auto entries = digest->get_vector("entries");
  if (!entries) return 0;
  for (const auto& elem : entries->elements) {
    if (!elem.is_string() && !elem.is_word()) continue;
    fetched += ingest_digest_entry(peer, elem.as_text());
  }
  return fetched;
}

std::int64_t PersistentStoreDaemon::sync_with_peer_merkle(
    const net::Address& peer) {
  std::int64_t fetched = 0;
  std::vector<std::size_t> frontier{1};
  std::vector<std::size_t> divergent_buckets;
  const std::size_t first_leaf = tree_.first_leaf();

  while (!frontier.empty()) {
    std::vector<std::size_t> divergent;
    for (std::size_t chunk = 0; chunk < frontier.size(); chunk += 256) {
      const std::size_t end = std::min(frontier.size(), chunk + 256);
      std::string ids;
      for (std::size_t i = chunk; i < end; ++i) {
        if (!ids.empty()) ids += ' ';
        ids += std::to_string(frontier[i]);
      }
      CmdLine req("storeDigestTree");
      req.arg("nodes", ids);
      auto reply = control_client().call(
          peer, req,
          daemon::CallOptions{.timeout = std::chrono::milliseconds(500),
                              .retries = 0});
      obs_tree_rpcs_->inc();
      if (!reply.ok() || !cmdlang::is_ok(reply.value())) return fetched;
      if (static_cast<int>(reply->get_integer("depth")) != tree_.depth())
        return fetched + sync_with_peer_full(peer);  // incompatible layout
      auto hashes = reply->get_vector("hashes");
      if (!hashes) return fetched;
      std::scoped_lock lock(mu_);
      for (const auto& elem : hashes->elements) {
        if (!elem.is_string() && !elem.is_word()) continue;
        auto parts = util::split(elem.as_text(), '|');
        if (parts.size() != 2) continue;
        const std::size_t id = std::strtoull(parts[0].c_str(), nullptr, 10);
        const std::uint64_t theirs =
            std::strtoull(parts[1].c_str(), nullptr, 10);
        if (tree_.node(id) != theirs) divergent.push_back(id);
      }
    }
    frontier.clear();
    for (std::size_t id : divergent) {
      if (id >= first_leaf) {
        divergent_buckets.push_back(id - first_leaf);
      } else {
        frontier.push_back(2 * id);
        frontier.push_back(2 * id + 1);
      }
    }
  }

  for (std::size_t bucket : divergent_buckets) {
    CmdLine req("storeDigestBucket");
    req.arg("bucket", static_cast<std::int64_t>(bucket));
    auto reply = control_client().call(
        peer, req,
        daemon::CallOptions{.timeout = std::chrono::milliseconds(500),
                            .retries = 0});
    obs_bucket_rpcs_->inc();
    if (!reply.ok() || !cmdlang::is_ok(reply.value())) continue;
    auto entries = reply->get_vector("entries");
    if (!entries) continue;
    for (const auto& elem : entries->elements) {
      if (!elem.is_string() && !elem.is_word()) continue;
      fetched += ingest_digest_entry(peer, elem.as_text());
    }
  }
  return fetched;
}

util::Result<std::int64_t> PersistentStoreDaemon::sync_from_peers() {
  std::vector<net::Address> peers;
  {
    std::scoped_lock lock(mu_);
    peers = peers_;
  }
  std::int64_t fetched = 0;
  for (const net::Address& peer : peers)
    fetched += options_.merkle_sync ? sync_with_peer_merkle(peer)
                                    : sync_with_peer_full(peer);
  // Anti-entropy applies are logged but lazily synced per entry; one flush
  // at the end of the round makes the whole catch-up durable. A crash
  // before it just means the next round re-fetches the tail.
  std::shared_ptr<DurableLog> dlog;
  {
    std::scoped_lock lock(mu_);
    dlog = dlog_;
  }
  if (dlog) dlog->sync_all();
  return fetched;
}

DurableLog::RecoveryStats PersistentStoreDaemon::last_recovery() const {
  std::scoped_lock lock(mu_);
  return recovery_stats_;
}

util::Result<std::int64_t> PersistentStoreDaemon::compact_now() {
  std::scoped_lock lock(mu_);
  if (!dlog_)
    return util::Error{util::Errc::invalid,
                       "no disk attached (StoreOptions.disk)"};
  // Holding mu_ blocks appenders, so the snapshot is an exact cut: every
  // record in it is ordered before everything the new WAL will hold.
  std::vector<WalRecord> records;
  records.reserve(objects_.size());
  for (const auto& [key, rec] : objects_) {
    WalRecord r;
    r.kind = rec.deleted ? WalRecord::kDelete : WalRecord::kPut;
    r.key = key;
    r.version = rec.version;
    r.data = rec.data;
    records.push_back(std::move(r));
  }
  for (const auto& [peer, keys] : hints_) {
    for (const auto& [key, version] : keys) {
      WalRecord r;
      r.kind = WalRecord::kHint;
      r.key = key;
      r.version = version;
      r.owner = peer.to_string();
      records.push_back(std::move(r));
    }
  }
  if (auto st = dlog_->compact(records); !st.ok()) return st.error();
  ++compactions_;
  obs_compactions_->inc();
  return static_cast<std::int64_t>(records.size());
}

void PersistentStoreDaemon::maybe_compact() {
  std::shared_ptr<DurableLog> dlog;
  {
    std::scoped_lock lock(mu_);
    dlog = dlog_;
  }
  if (!dlog || options_.compact_wal_bytes == 0) return;
  if (dlog->wal_bytes() < options_.compact_wal_bytes) return;
  (void)compact_now();
}

}  // namespace ace::store
