#include "store/persistent_store.hpp"

#include "util/strings.hpp"

namespace ace::store {

using cmdlang::CmdLine;
using cmdlang::CommandSpec;
using cmdlang::integer_arg;
using cmdlang::string_arg;
using cmdlang::Word;
using cmdlang::word_arg;
using daemon::CallerInfo;

namespace {
daemon::DaemonConfig store_defaults(daemon::DaemonConfig config) {
  if (config.service_class.empty())
    config.service_class = "Service/PersistentStore";
  return config;
}
}  // namespace

std::string hex_of(const util::Bytes& data) { return util::hex_encode(data); }

util::Bytes bytes_of_hex(const std::string& hex) {
  util::Bytes out;
  auto nibble = [](char c) -> int {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    if (c >= 'A' && c <= 'F') return c - 'A' + 10;
    return -1;
  };
  if (hex.size() % 2 != 0) return out;
  out.reserve(hex.size() / 2);
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    int hi = nibble(hex[i]);
    int lo = nibble(hex[i + 1]);
    if (hi < 0 || lo < 0) return {};
    out.push_back(static_cast<std::uint8_t>(hi << 4 | lo));
  }
  return out;
}

PersistentStoreDaemon::PersistentStoreDaemon(daemon::Environment& env,
                                             daemon::DaemonHost& host,
                                             daemon::DaemonConfig config,
                                             int replica_id,
                                             StoreOptions options)
    : ServiceDaemon(env, host, store_defaults(std::move(config))),
      replica_id_(replica_id),
      options_(options),
      obs_writes_(&env.metrics().counter("store.writes")),
      obs_replica_acks_(&env.metrics().counter("store.replica_acks")),
      obs_rejoin_syncs_(&env.metrics().counter("store.rejoin_syncs")) {
  register_command(
      CommandSpec("storePut", "store an object").concurrent_ok()
          .arg(string_arg("key"))
          .arg(string_arg("data")),
      [this](const CmdLine& cmd, const CallerInfo&) {
        ObjectRecord record;
        record.data = bytes_of_hex(cmd.get_text("data"));
        record.version = next_version();
        std::string key = cmd.get_text("key");
        apply(key, record);
        int acks = replicate(key, record);
        CmdLine reply = cmdlang::make_ok();
        reply.arg("version", static_cast<std::int64_t>(record.version));
        reply.arg("acks", static_cast<std::int64_t>(acks));
        return reply;
      });

  register_command(
      CommandSpec("storeGet", "fetch an object").concurrent_ok().arg(string_arg("key")),
      [this](const CmdLine& cmd, const CallerInfo&) {
        std::scoped_lock lock(mu_);
        auto it = objects_.find(cmd.get_text("key"));
        if (it == objects_.end() || it->second.deleted)
          return cmdlang::make_error(util::Errc::not_found, "no such object");
        CmdLine reply = cmdlang::make_ok();
        reply.arg("data", hex_of(it->second.data));
        reply.arg("version", static_cast<std::int64_t>(it->second.version));
        return reply;
      });

  register_command(
      CommandSpec("storeDelete", "remove an object (tombstone)").concurrent_ok()
          .arg(string_arg("key")),
      [this](const CmdLine& cmd, const CallerInfo&) {
        ObjectRecord record;
        record.deleted = true;
        record.version = next_version();
        std::string key = cmd.get_text("key");
        apply(key, record);
        int acks = replicate(key, record);
        CmdLine reply = cmdlang::make_ok();
        reply.arg("version", static_cast<std::int64_t>(record.version));
        reply.arg("acks", static_cast<std::int64_t>(acks));
        return reply;
      });

  register_command(
      CommandSpec("storeList", "list keys under a namespace prefix").concurrent_ok()
          .arg(string_arg("prefix").optional_arg()),
      [this](const CmdLine& cmd, const CallerInfo&) {
        std::string prefix = cmd.get_text("prefix");
        std::vector<std::string> keys;
        {
          std::scoped_lock lock(mu_);
          for (const auto& [key, record] : objects_) {
            if (record.deleted) continue;
            if (util::starts_with(key, prefix)) keys.push_back(key);
          }
        }
        CmdLine reply = cmdlang::make_ok();
        reply.arg("keys", cmdlang::string_vector(std::move(keys)));
        return reply;
      });

  register_command(CommandSpec("storeCount", "count live objects").concurrent_ok(),
                   [this](const CmdLine&, const CallerInfo&) {
                     CmdLine reply = cmdlang::make_ok();
                     reply.arg("count",
                               static_cast<std::int64_t>(object_count()));
                     return reply;
                   });

  register_command(
      CommandSpec("storeDigest", "key/version digest for anti-entropy").concurrent_ok(),
      [this](const CmdLine&, const CallerInfo&) {
        std::vector<std::string> entries;
        {
          std::scoped_lock lock(mu_);
          for (const auto& [key, record] : objects_)
            entries.push_back(key + "|" + std::to_string(record.version) +
                              "|" + (record.deleted ? "d" : "l"));
        }
        CmdLine reply = cmdlang::make_ok();
        reply.arg("entries", cmdlang::string_vector(std::move(entries)));
        return reply;
      });

  register_command(
      CommandSpec("storeSync", "pull newer objects from peer replicas").concurrent_ok(),
      [this](const CmdLine&, const CallerInfo&) {
        auto fetched = sync_from_peers();
        if (!fetched.ok())
          return cmdlang::make_error(fetched.error().code,
                                     fetched.error().message);
        CmdLine reply = cmdlang::make_ok();
        reply.arg("fetched", fetched.value());
        return reply;
      });

  // Peer-internal replication message.
  register_command(
      CommandSpec("storeReplicate", "apply a replicated write (internal)").concurrent_ok()
          .arg(string_arg("key"))
          .arg(integer_arg("version"))
          .arg(string_arg("data"))
          .arg(word_arg("deleted").choices({"yes", "no"})),
      [this](const CmdLine& cmd, const CallerInfo&) {
        ObjectRecord record;
        record.version = static_cast<std::uint64_t>(cmd.get_integer("version"));
        record.data = bytes_of_hex(cmd.get_text("data"));
        record.deleted = cmd.get_text("deleted") == "yes";
        apply(cmd.get_text("key"), record);
        return cmdlang::make_ok();
      });
}

void PersistentStoreDaemon::set_peers(std::vector<net::Address> peers) {
  std::scoped_lock lock(mu_);
  peers_ = std::move(peers);
}

util::Status PersistentStoreDaemon::on_start() {
  monitor_ = std::jthread([this](std::stop_token st) { monitor_loop(st); });
  return util::Status::ok_status();
}

void PersistentStoreDaemon::on_stop() { monitor_ = {}; }

void PersistentStoreDaemon::on_crash() { monitor_ = {}; }

// Peer liveness monitor: detects rejoins (peer restart or partition heal,
// from either side) and runs anti-entropy so the cluster converges without
// a manual storeSync. The first iteration doubles as the boot catch-up
// sync a rejoining replica needs.
void PersistentStoreDaemon::monitor_loop(std::stop_token st) {
  const auto slice = std::chrono::milliseconds(25);
  std::map<net::Address, bool> peer_up;
  bool first = true;
  while (!st.stop_requested()) {
    if (!first) {
      auto remaining = options_.probe_interval;
      while (remaining.count() > 0 && !st.stop_requested()) {
        std::this_thread::sleep_for(std::min(remaining, slice));
        remaining -= slice;
      }
      if (st.stop_requested()) return;
    }

    std::vector<net::Address> peers;
    {
      std::scoped_lock lock(mu_);
      peers = peers_;
    }
    bool rejoined = false;
    for (const net::Address& peer : peers) {
      auto pong = control_client().call(
          peer, CmdLine("ping"),
          daemon::CallOptions{.timeout = options_.probe_timeout,
                              .require_ok = true,
                              .retries = 0,
                              .backoff = std::chrono::milliseconds(0)});
      const bool up = pong.ok();
      auto it = peer_up.find(peer);
      if (it == peer_up.end()) {
        peer_up[peer] = up;
      } else {
        if (!it->second && up) rejoined = true;
        it->second = up;
      }
    }
    if (st.stop_requested()) return;
    if (first || rejoined) {
      auto fetched = sync_from_peers();
      if (!first && fetched.ok()) {
        obs_rejoin_syncs_->inc();
        net_log("info", "peer rejoin detected; anti-entropy fetched " +
                            std::to_string(fetched.value()) + " objects");
      }
    }
    first = false;
  }
}

std::uint64_t PersistentStoreDaemon::next_version() {
  std::scoped_lock lock(mu_);
  lamport_++;
  return lamport_ << 8 | static_cast<std::uint64_t>(replica_id_ & 0xff);
}

void PersistentStoreDaemon::apply(const std::string& key,
                                  const ObjectRecord& record) {
  std::scoped_lock lock(mu_);
  // Lamport clock absorption: future local writes order after this one.
  lamport_ = std::max(lamport_, record.version >> 8);
  auto it = objects_.find(key);
  if (it == objects_.end() || it->second.version < record.version) {
    objects_[key] = record;
    obs_writes_->inc();
  }
}

int PersistentStoreDaemon::replicate(const std::string& key,
                                     const ObjectRecord& record) {
  obs::Span span(env().metrics(), "store", "replicate");
  std::vector<net::Address> peers;
  {
    std::scoped_lock lock(mu_);
    peers = peers_;
  }
  CmdLine rep("storeReplicate");
  rep.arg("key", key);
  rep.arg("version", static_cast<std::int64_t>(record.version));
  rep.arg("data", hex_of(record.data));
  rep.arg("deleted", Word{record.deleted ? "yes" : "no"});
  int acks = 0;
  for (const net::Address& peer : peers) {
    auto reply = control_client().call(
        peer, rep,
        daemon::CallOptions{.timeout = std::chrono::milliseconds(300)});
    if (reply.ok() && cmdlang::is_ok(reply.value())) ++acks;
  }
  obs_replica_acks_->inc(static_cast<std::uint64_t>(acks));
  span.set_ok(static_cast<std::size_t>(acks) == peers.size());
  return acks;
}

std::size_t PersistentStoreDaemon::object_count() const {
  std::scoped_lock lock(mu_);
  std::size_t n = 0;
  for (const auto& [key, record] : objects_)
    if (!record.deleted) ++n;
  return n;
}

std::optional<PersistentStoreDaemon::ObjectRecord>
PersistentStoreDaemon::object(const std::string& key) const {
  std::scoped_lock lock(mu_);
  auto it = objects_.find(key);
  if (it == objects_.end()) return std::nullopt;
  return it->second;
}

util::Result<std::int64_t> PersistentStoreDaemon::sync_from_peers() {
  std::vector<net::Address> peers;
  {
    std::scoped_lock lock(mu_);
    peers = peers_;
  }
  std::int64_t fetched = 0;
  for (const net::Address& peer : peers) {
    auto digest = control_client().call(
        peer, CmdLine("storeDigest"),
        daemon::CallOptions{.timeout = std::chrono::milliseconds(500)});
    if (!digest.ok() || !cmdlang::is_ok(digest.value())) continue;
    auto entries = digest->get_vector("entries");
    if (!entries) continue;
    for (const auto& elem : entries->elements) {
      if (!elem.is_string() && !elem.is_word()) continue;
      auto parts = util::split(elem.as_text(), '|');
      if (parts.size() != 3) continue;
      const std::string& key = parts[0];
      std::uint64_t version = std::stoull(parts[1]);
      bool newer;
      {
        std::scoped_lock lock(mu_);
        auto it = objects_.find(key);
        newer = it == objects_.end() || it->second.version < version;
      }
      if (!newer) continue;
      if (parts[2] == "d") {
        ObjectRecord tomb;
        tomb.version = version;
        tomb.deleted = true;
        apply(key, tomb);
        ++fetched;
        continue;
      }
      CmdLine get("storeGet");
      get.arg("key", key);
      auto obj = control_client().call(
          peer, get,
          daemon::CallOptions{.timeout = std::chrono::milliseconds(500)});
      if (!obj.ok() || !cmdlang::is_ok(obj.value())) continue;
      ObjectRecord record;
      record.version =
          static_cast<std::uint64_t>(obj->get_integer("version"));
      record.data = bytes_of_hex(obj->get_text("data"));
      apply(key, record);
      ++fetched;
    }
  }
  return fetched;
}

}  // namespace ace::store
