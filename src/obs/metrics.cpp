#include "obs/metrics.hpp"

#include <algorithm>

namespace ace::obs {

// ----------------------------------------------------------------- Histogram

void Histogram::observe_us(std::uint64_t us) {
  std::size_t bucket = kBucketBoundsUs.size();  // +inf by default
  for (std::size_t i = 0; i < kBucketBoundsUs.size(); ++i) {
    if (us <= kBucketBoundsUs[i]) {
      bucket = i;
      break;
    }
  }
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_us_.fetch_add(us, std::memory_order_relaxed);
}

Histogram::Snapshot Histogram::snapshot() const {
  Snapshot s;
  s.count = count_.load(std::memory_order_relaxed);
  s.sum_us = sum_us_.load(std::memory_order_relaxed);
  for (std::size_t i = 0; i < kBucketCount; ++i)
    s.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
  return s;
}

// ---------------------------------------------------------------- SpanBuffer

SpanBuffer::SpanBuffer(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {
  ring_.reserve(capacity_);
}

void SpanBuffer::record(SpanRecord record) {
  std::scoped_lock lock(mu_);
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(record));
  } else {
    ring_[next_ % capacity_] = std::move(record);
  }
  ++next_;
}

std::vector<SpanRecord> SpanBuffer::recent() const {
  std::scoped_lock lock(mu_);
  std::vector<SpanRecord> out;
  out.reserve(ring_.size());
  if (ring_.size() < capacity_) {
    out = ring_;
  } else {
    // next_ % capacity_ is the oldest retained slot.
    for (std::size_t i = 0; i < capacity_; ++i)
      out.push_back(ring_[(next_ + i) % capacity_]);
  }
  return out;
}

std::uint64_t SpanBuffer::total_recorded() const {
  std::scoped_lock lock(mu_);
  return next_;
}

// ----------------------------------------------------------- MetricsSnapshot

std::uint64_t MetricsSnapshot::counter_value(const std::string& name) const {
  for (const auto& c : counters)
    if (c.name == name) return c.value;
  return 0;
}

std::int64_t MetricsSnapshot::gauge_value(const std::string& name) const {
  for (const auto& g : gauges)
    if (g.name == name) return g.value;
  return 0;
}

const Histogram::Snapshot* MetricsSnapshot::histogram(
    const std::string& name) const {
  for (const auto& h : histograms)
    if (h.name == name) return &h.hist;
  return nullptr;
}

// ----------------------------------------------------------- MetricsRegistry

MetricsRegistry::MetricsRegistry(std::size_t span_capacity)
    : spans_(span_capacity) {}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::scoped_lock lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::scoped_lock lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  std::scoped_lock lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot snap;
  {
    std::scoped_lock lock(mu_);
    for (const auto& [name, cell] : counters_)
      snap.counters.push_back({name, cell->value()});
    for (const auto& [name, cell] : gauges_)
      snap.gauges.push_back({name, cell->value()});
    for (const auto& [name, cell] : histograms_)
      snap.histograms.push_back({name, cell->snapshot()});
  }
  snap.spans_recorded = spans_.total_recorded();
  return snap;
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

// ----------------------------------------------------------------------- Span

Span::Span(MetricsRegistry& registry, std::string component, std::string name)
    : registry_(registry),
      component_(std::move(component)),
      name_(std::move(name)),
      start_(std::chrono::steady_clock::now()) {}

Span::~Span() {
  auto elapsed = std::chrono::steady_clock::now() - start_;
  auto us = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(elapsed).count());
  registry_.histogram(component_ + "." + name_ + ".latency_us")
      .observe_us(us);
  registry_.spans().record(SpanRecord{std::move(component_), std::move(name_),
                                      us, ok_});
}

// ----------------------------------------------------------------------- JSON

namespace {

void append_escaped(std::string& out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
}

}  // namespace

std::string to_json(const MetricsSnapshot& snapshot) {
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& c : snapshot.counters) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"";
    append_escaped(out, c.name);
    out += "\": " + std::to_string(c.value);
  }
  out += "\n  },\n  \"gauges\": {";
  first = true;
  for (const auto& g : snapshot.gauges) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"";
    append_escaped(out, g.name);
    out += "\": " + std::to_string(g.value);
  }
  out += "\n  },\n  \"histograms\": {";
  first = true;
  for (const auto& h : snapshot.histograms) {
    out += first ? "\n" : ",\n";
    first = false;
    out += "    \"";
    append_escaped(out, h.name);
    out += "\": {\"count\": " + std::to_string(h.hist.count) +
           ", \"sum_us\": " + std::to_string(h.hist.sum_us) + ", \"buckets\": [";
    for (std::size_t i = 0; i < Histogram::kBucketCount; ++i) {
      if (i > 0) out += ", ";
      out += "{\"le\": ";
      out += i < Histogram::kBucketBoundsUs.size()
                 ? std::to_string(Histogram::kBucketBoundsUs[i])
                 : std::string("\"inf\"");
      out += ", \"count\": " + std::to_string(h.hist.buckets[i]) + "}";
    }
    out += "]}";
  }
  out += "\n  },\n  \"spans_recorded\": " +
         std::to_string(snapshot.spans_recorded) + "\n}\n";
  return out;
}

}  // namespace ace::obs
