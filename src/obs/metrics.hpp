// ace::obs — the observability substrate for an ACE deployment.
//
// The paper's only system-wide visibility mechanism is the Network Logger
// (§4.14), which records *events*. This layer answers the quantitative
// questions the logger cannot: how long do commands take, where do frames
// queue, which leases churn. It provides
//
//  * a MetricsRegistry of named counters, gauges and fixed-bucket latency
//    histograms. Cells are std::atomic and lock-free on the hot path; the
//    registry mutex is only taken when a metric is first created (call
//    sites cache the returned reference) and when snapshotting.
//  * a Span RAII tracer recording (component, name, duration, ok) into a
//    bounded ring buffer, and feeding the `<component>.<name>.latency_us`
//    histogram.
//
// Metric naming convention: `component.verb.suffix`, e.g.
// `net.frames_sent`, `asd.live_count`, `daemon.cmd.latency_us`.
//
// One registry per deployment: daemon::Environment owns one and threads it
// through the network, channels, daemons and clients, so the inherited
// `metrics;` command scrapes exactly the deployment it serves. A
// process-wide registry (MetricsRegistry::global()) exists for code with
// no deployment context (e.g. micro-benchmarks).
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace ace::obs {

// Monotonically increasing event count.
class Counter {
 public:
  void inc(std::uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

// Last-set instantaneous value (may go up and down).
class Gauge {
 public:
  void set(std::int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t d) { value_.fetch_add(d, std::memory_order_relaxed); }
  std::int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

// Fixed-bucket latency histogram in microseconds. A sample lands in the
// first bucket whose bound is >= the sample (upper-inclusive), or the
// overflow (+inf) bucket past the last bound.
class Histogram {
 public:
  static constexpr std::array<std::uint64_t, 12> kBucketBoundsUs = {
      10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000, 50000, 250000};
  static constexpr std::size_t kBucketCount = kBucketBoundsUs.size() + 1;

  void observe_us(std::uint64_t us);
  void observe(std::chrono::nanoseconds elapsed) {
    observe_us(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(elapsed)
            .count()));
  }

  struct Snapshot {
    std::uint64_t count = 0;
    std::uint64_t sum_us = 0;
    std::array<std::uint64_t, kBucketCount> buckets{};  // last = +inf

    double mean_us() const {
      return count == 0 ? 0.0
                        : static_cast<double>(sum_us) /
                              static_cast<double>(count);
    }
  };
  Snapshot snapshot() const;

 private:
  std::array<std::atomic<std::uint64_t>, kBucketCount> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_us_{0};
};

// One completed span.
struct SpanRecord {
  std::string component;
  std::string name;
  std::uint64_t duration_us = 0;
  bool ok = true;
};

// Bounded ring of recent spans. Recording overwrites the oldest entry once
// the buffer is full; total_recorded() keeps counting.
class SpanBuffer {
 public:
  explicit SpanBuffer(std::size_t capacity = 1024);

  void record(SpanRecord record);
  // Retained spans, oldest first.
  std::vector<SpanRecord> recent() const;
  std::uint64_t total_recorded() const;
  std::size_t capacity() const { return capacity_; }

 private:
  mutable std::mutex mu_;
  std::size_t capacity_;
  std::vector<SpanRecord> ring_;
  std::uint64_t next_ = 0;  // total records ever; next_ % capacity_ = slot
};

// Point-in-time copy of every metric in a registry. Counters/gauges/
// histograms are each sorted by name.
struct MetricsSnapshot {
  struct CounterEntry {
    std::string name;
    std::uint64_t value = 0;
  };
  struct GaugeEntry {
    std::string name;
    std::int64_t value = 0;
  };
  struct HistogramEntry {
    std::string name;
    Histogram::Snapshot hist;
  };

  std::vector<CounterEntry> counters;
  std::vector<GaugeEntry> gauges;
  std::vector<HistogramEntry> histograms;
  std::uint64_t spans_recorded = 0;

  // Lookup helpers (0 / nullptr when absent).
  std::uint64_t counter_value(const std::string& name) const;
  std::int64_t gauge_value(const std::string& name) const;
  const Histogram::Snapshot* histogram(const std::string& name) const;
};

class MetricsRegistry {
 public:
  explicit MetricsRegistry(std::size_t span_capacity = 1024);

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Finds or creates the named metric. The returned reference stays valid
  // for the registry's lifetime — cache it on hot paths.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  SpanBuffer& spans() { return spans_; }
  const SpanBuffer& spans() const { return spans_; }

  MetricsSnapshot snapshot() const;

  // The process-wide registry, for code with no deployment context.
  static MetricsRegistry& global();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  SpanBuffer spans_;
};

// RAII tracer: times its own lifetime, then records a SpanRecord into the
// registry's span buffer and an observation into the
// `<component>.<name>.latency_us` histogram.
class Span {
 public:
  Span(MetricsRegistry& registry, std::string component, std::string name);
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  void set_ok(bool ok) { ok_ = ok; }
  void fail() { ok_ = false; }

 private:
  MetricsRegistry& registry_;
  std::string component_;
  std::string name_;
  std::chrono::steady_clock::time_point start_;
  bool ok_ = true;
};

// Renders a snapshot as a JSON document (machine-readable perf artifact;
// see bench/bench_common.hpp for the file exporter).
std::string to_json(const MetricsSnapshot& snapshot);

}  // namespace ace::obs
