#include "services/user_db.hpp"

#include "crypto/sha256.hpp"

namespace ace::services {

using cmdlang::CmdLine;
using cmdlang::CommandSpec;
using cmdlang::string_arg;
using cmdlang::Word;
using cmdlang::word_arg;
using daemon::CallerInfo;

namespace {

daemon::DaemonConfig aud_defaults(daemon::DaemonConfig config) {
  if (config.service_class.empty())
    config.service_class = "Service/Database/UserDatabase";
  return config;
}

util::Bytes hash_password(const std::string& password,
                          const util::Bytes& salt) {
  util::Bytes input = salt;
  input.insert(input.end(), password.begin(), password.end());
  crypto::Digest d = crypto::sha256(input);
  return util::Bytes(d.begin(), d.end());
}

}  // namespace

UserDbDaemon::UserDbDaemon(daemon::Environment& env, daemon::DaemonHost& host,
                           daemon::DaemonConfig config)
    : ServiceDaemon(env, host, aud_defaults(std::move(config))),
      salt_rng_(env.next_seed()) {
  auto field_args = [](CommandSpec spec) {
    return std::move(spec)
        .arg(string_arg("fullname").optional_arg())
        .arg(string_arg("password").optional_arg())
        .arg(string_arg("ibutton").optional_arg())
        .arg(string_arg("fingerprint").optional_arg())
        .arg(string_arg("pubkey").optional_arg());
  };

  register_command(
      field_args(CommandSpec("userAdd", "register a new ACE user")
                     .arg(word_arg("username"))),
      [this](const CmdLine& cmd, const CallerInfo&) {
        std::string username = cmd.get_text("username");
        std::scoped_lock lock(mu_);
        if (users_.contains(username))
          return cmdlang::make_error(util::Errc::conflict,
                                     "user already exists");
        UserRecord u;
        u.username = username;
        apply_fields(u, cmd);
        users_[username] = std::move(u);
        return cmdlang::make_ok();
      });

  register_command(
      field_args(CommandSpec("userUpdate", "update user fields")
                     .arg(word_arg("username"))),
      [this](const CmdLine& cmd, const CallerInfo&) {
        std::scoped_lock lock(mu_);
        auto it = users_.find(cmd.get_text("username"));
        if (it == users_.end())
          return cmdlang::make_error(util::Errc::not_found, "no such user");
        apply_fields(it->second, cmd);
        return cmdlang::make_ok();
      });

  register_command(
      CommandSpec("userGet", "fetch a user record")
          .arg(word_arg("username")),
      [this](const CmdLine& cmd, const CallerInfo&) {
        std::scoped_lock lock(mu_);
        auto it = users_.find(cmd.get_text("username"));
        if (it == users_.end())
          return cmdlang::make_error(util::Errc::not_found, "no such user");
        return encode_user(it->second);
      });

  register_command(
      CommandSpec("userRemove", "delete a user").arg(word_arg("username")),
      [this](const CmdLine& cmd, const CallerInfo&) {
        std::scoped_lock lock(mu_);
        users_.erase(cmd.get_text("username"));
        return cmdlang::make_ok();
      });

  register_command(
      CommandSpec("userExists", "does a user exist?")
          .arg(word_arg("username")),
      [this](const CmdLine& cmd, const CallerInfo&) {
        std::scoped_lock lock(mu_);
        CmdLine reply = cmdlang::make_ok();
        reply.arg("exists",
                  Word{users_.contains(cmd.get_text("username")) ? "yes"
                                                                 : "no"});
        return reply;
      });

  // Scenario 2: "The ID Monitor service then updates John's current
  // location with the AUD."
  register_command(
      CommandSpec("userSetLocation", "record where the user was identified")
          .arg(word_arg("username"))
          .arg(word_arg("room"))
          .arg(string_arg("station").optional_arg()),
      [this](const CmdLine& cmd, const CallerInfo&) {
        std::scoped_lock lock(mu_);
        auto it = users_.find(cmd.get_text("username"));
        if (it == users_.end())
          return cmdlang::make_error(util::Errc::not_found, "no such user");
        it->second.location_room = cmd.get_text("room");
        it->second.location_station = cmd.get_text("station");
        return cmdlang::make_ok();
      });

  register_command(
      CommandSpec("userByIButton", "identify a user by iButton serial")
          .arg(string_arg("serial")),
      [this](const CmdLine& cmd, const CallerInfo&) {
        std::string serial = cmd.get_text("serial");
        std::scoped_lock lock(mu_);
        for (const auto& [name, u] : users_)
          if (!u.ibutton_serial.empty() && u.ibutton_serial == serial)
            return encode_user(u);
        return cmdlang::make_error(util::Errc::not_found,
                                   "unknown iButton serial");
      });

  register_command(
      CommandSpec("userByFingerprint", "identify a user by FIU template id")
          .arg(string_arg("template")),
      [this](const CmdLine& cmd, const CallerInfo&) {
        std::string tmpl = cmd.get_text("template");
        std::scoped_lock lock(mu_);
        for (const auto& [name, u] : users_)
          if (!u.fingerprint_template.empty() &&
              u.fingerprint_template == tmpl)
            return encode_user(u);
        return cmdlang::make_error(util::Errc::not_found,
                                   "unknown fingerprint template");
      });

  register_command(
      CommandSpec("userCheckPassword", "verify a password")
          .arg(word_arg("username"))
          .arg(string_arg("password")),
      [this](const CmdLine& cmd, const CallerInfo&) {
        std::scoped_lock lock(mu_);
        auto it = users_.find(cmd.get_text("username"));
        CmdLine reply = cmdlang::make_ok();
        bool valid = false;
        if (it != users_.end() && !it->second.password_hash.empty()) {
          valid = hash_password(cmd.get_text("password"),
                                it->second.password_salt) ==
                  it->second.password_hash;
        }
        reply.arg("valid", Word{valid ? "yes" : "no"});
        return reply;
      });

  register_command(
      CommandSpec("userList", "list all usernames"),
      [this](const CmdLine&, const CallerInfo&) {
        std::scoped_lock lock(mu_);
        std::vector<std::string> names;
        for (const auto& [name, u] : users_) names.push_back(name);
        CmdLine reply = cmdlang::make_ok();
        reply.arg("users", cmdlang::string_vector(std::move(names)));
        return reply;
      });
}

void UserDbDaemon::apply_fields(UserRecord& u, const CmdLine& cmd) {
  if (cmd.has("fullname")) u.fullname = cmd.get_text("fullname");
  if (cmd.has("password")) {
    u.password_salt.resize(16);
    for (auto& b : u.password_salt)
      b = static_cast<std::uint8_t>(salt_rng_.next());
    u.password_hash = hash_password(cmd.get_text("password"), u.password_salt);
  }
  if (cmd.has("ibutton")) u.ibutton_serial = cmd.get_text("ibutton");
  if (cmd.has("fingerprint"))
    u.fingerprint_template = cmd.get_text("fingerprint");
  if (cmd.has("pubkey")) u.public_key = cmd.get_text("pubkey");
}

CmdLine UserDbDaemon::encode_user(const UserRecord& u) {
  CmdLine reply = cmdlang::make_ok();
  reply.arg("username", Word{u.username});
  reply.arg("fullname", u.fullname);
  reply.arg("ibutton", u.ibutton_serial);
  reply.arg("fingerprint", u.fingerprint_template);
  reply.arg("pubkey", u.public_key);
  reply.arg("room", u.location_room);
  reply.arg("station", u.location_station);
  return reply;
}

std::optional<UserDbDaemon::UserRecord> UserDbDaemon::user(
    const std::string& username) const {
  std::scoped_lock lock(mu_);
  auto it = users_.find(username);
  if (it == users_.end()) return std::nullopt;
  return it->second;
}

std::size_t UserDbDaemon::user_count() const {
  std::scoped_lock lock(mu_);
  return users_.size();
}

}  // namespace ace::services
