// ASD — the ACE Service Directory (paper §2.4, Fig 7): "a central listing
// or directory of services currently available and running within the ACE
// environment", with lease-based liveness:
//
//   "Upon registration with the ASD, each ACE service is given a lease time
//    for which they'll be allowed to remain within the ASD listing. If a
//    registered service fails to renew its service lease with the ASD upon
//    lease time expiration, this service shall automatically be removed."
//
// Command set:
//   register name= host= port= room= class= lease=;   -> ok lease=granted_ms
//   renew name=;                                      -> ok expires_in=
//   deregister name=;                                 -> ok
//   lookup name=;                                     -> ok host= port= ...
//   query name=<glob>? class=<glob>? room=<glob>?;    -> ok services={...}
//   count;                                            -> ok count=
//
// Expiry fires the internal `serviceExpired name=;` command, so any service
// may addNotification on `register`, `deregister` or `serviceExpired` —
// this is what the Robustness Manager (src/store) listens to.
#pragma once

#include <map>
#include <thread>

#include "daemon/daemon.hpp"

namespace ace::services {

struct AsdOptions {
  std::chrono::milliseconds min_lease{200};
  std::chrono::milliseconds max_lease{60000};
  std::chrono::milliseconds reap_interval{50};
};

class AsdDaemon : public daemon::ServiceDaemon {
 public:
  struct Registration {
    std::string name;
    std::string host;
    std::uint16_t port = 0;
    std::string room;
    std::string service_class;
    std::chrono::milliseconds lease{0};
    std::chrono::steady_clock::time_point expires;
  };

  AsdDaemon(daemon::Environment& env, daemon::DaemonHost& host,
            daemon::DaemonConfig config, AsdOptions options = {});

  std::size_t live_count() const;
  std::optional<Registration> find_registration(const std::string& name) const;

 protected:
  util::Status on_start() override;
  void on_stop() override;

 private:
  void reaper_loop(std::stop_token st);
  static std::string encode_entry(const Registration& r);

  AsdOptions options_;
  mutable std::mutex mu_;
  std::map<std::string, Registration> registry_;
  std::jthread reaper_;
};

// Convenience client helpers used across services, examples and benches.
struct ServiceLocation {
  std::string name;
  net::Address address;
  std::string room;
  std::string service_class;
};

util::Result<ServiceLocation> asd_lookup(daemon::AceClient& client,
                                         const net::Address& asd,
                                         const std::string& name);
util::Result<std::vector<ServiceLocation>> asd_query(
    daemon::AceClient& client, const net::Address& asd,
    const std::string& name_glob, const std::string& class_glob,
    const std::string& room_glob);

}  // namespace ace::services
