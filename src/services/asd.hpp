// ASD — the ACE Service Directory (paper §2.4, Fig 7): "a central listing
// or directory of services currently available and running within the ACE
// environment", with lease-based liveness:
//
//   "Upon registration with the ASD, each ACE service is given a lease time
//    for which they'll be allowed to remain within the ASD listing. If a
//    registered service fails to renew its service lease with the ASD upon
//    lease time expiration, this service shall automatically be removed."
//
// Command set:
//   register name= host= port= room= class= lease=;   -> ok lease=granted_ms
//   renew name=;                                      -> ok expires_in=
//   renewBatch names={...};                           -> ok statuses={name|ok|expires_in, name|not_found, ...}
//   deregister name=;                                 -> ok
//   lookup name=;                                     -> ok host= port= ... expires_in=
//   query name=<glob>? class=<glob>? room=<glob>?;    -> ok services={...}
//   count;                                            -> ok count=
//
// Expiry fires the internal `serviceExpired name=;` command, so any service
// may addNotification on `register`, `deregister` or `serviceExpired` —
// this is what the Robustness Manager (src/store) listens to.
//
// The directory core is an AsdIndex (asd_index.hpp): class/room hash
// buckets behind a shared_mutex with a min-heap expiry schedule. All
// directory commands are declared concurrent_ok — they run on the
// connection threads against the internally-synchronized index, so
// concurrent lookups/queries never serialize behind the control thread or
// behind registrations.
#pragma once

#include <condition_variable>
#include <memory>
#include <optional>
#include <thread>
#include <unordered_map>
#include <vector>

#include "daemon/daemon.hpp"
#include "services/asd_index.hpp"
#include "services/gossip.hpp"

namespace ace::services {

struct AsdOptions {
  std::chrono::milliseconds min_lease{200};
  std::chrono::milliseconds max_lease{60000};
  std::chrono::milliseconds reap_interval{50};
  // Ablation flag (E15): false restores the original full-registry glob
  // scan for every query. Results are identical either way; only the
  // candidate-selection cost differs.
  bool use_index = true;
  // Multi-room federation (docs/federation.md): gossip membership with
  // peer-room directories, cross-room query fan-out with a scoped cache,
  // and an optional relay for rooms behind bad links. Off by default —
  // registration/renewal/expiry stay strictly room-local either way; only
  // `query` ever crosses a room boundary.
  FederationOptions federation{};
};

class AsdDaemon : public daemon::ServiceDaemon {
 public:
  using Registration = AsdRegistration;

  AsdDaemon(daemon::Environment& env, daemon::DaemonHost& host,
            daemon::DaemonConfig config, AsdOptions options = {});

  std::size_t live_count() const { return index_.size(); }
  std::optional<Registration> find_registration(const std::string& name) const {
    return index_.find(name);
  }
  // Test hook: index <-> registry <-> gauge agreement (see AsdIndex).
  bool index_consistent() const { return index_.check_consistency(); }

  // Federation membership agent; nullptr when federation is disabled.
  GossipAgent* gossip() { return gossip_.get(); }
  const GossipAgent* gossip() const { return gossip_.get(); }

 protected:
  util::Status on_start() override;
  void on_stop() override;
  // A crashed directory loses its in-memory registry: services must
  // re-register (the lease machinery does this on `not_found` renewals)
  // and watchers must re-subscribe (the Robustness Manager watchdog does).
  void on_crash() override;

 private:
  void reaper_loop(std::stop_token st);
  static std::string encode_entry(const Registration& r);

  // Cross-room fan-out for one query (federation enabled, scope != local):
  // probes the scoped cache per live target room, sends the misses in
  // parallel on the ops pool (`scope=local`, so peers never re-forward),
  // and fills the cache from whatever answered within forward_timeout.
  // Returns the remote entries, encoded like local ones.
  std::vector<std::string> forward_query(const std::string& name_glob,
                                         const std::string& class_glob,
                                         const std::string& room_glob);
  // Gossip saw `room`'s epoch or version advance: its cached results are
  // stale by definition.
  void invalidate_forward_cache(const std::string& room);
  void registry_mutated();  // bumps the gossip version when federated

  AsdOptions options_;

  // Cached obs cells (deployment registry, `asd.*` names). Declared before
  // index_ so the AsdIndexObs handed to it points at live cells.
  obs::Counter* obs_registrations_;
  obs::Counter* obs_renewals_;
  obs::Counter* obs_renew_rpcs_;
  obs::Counter* obs_renew_batches_;
  obs::Counter* obs_deregistrations_;
  obs::Counter* obs_expirations_;
  obs::Counter* obs_lookups_;
  obs::Counter* obs_queries_;
  obs::Counter* obs_index_hits_;
  obs::Counter* obs_scans_;
  obs::Counter* obs_forwarded_;            // asd.forwarded_queries
  obs::Counter* obs_forward_failures_;     // asd.forward_failures
  obs::Counter* obs_forward_cache_hits_;   // asd.forward_cache_hits
  obs::Counter* obs_forward_cache_misses_; // asd.forward_cache_misses
  obs::Gauge* obs_live_count_;

  AsdIndex index_;

  // Federation state. gossip_ exists iff options_.federation.enabled; the
  // client is shared so an in-flight fan-out task can outlive the handler
  // that posted it (it holds its own reference). Both the client slot and
  // the scoped cache are guarded by forward_mu_.
  std::unique_ptr<GossipAgent> gossip_;
  std::shared_ptr<daemon::AceClient> fed_client_;
  struct ForwardCacheEntry {
    std::vector<std::string> encoded;  // remote entries, wire encoding
    std::chrono::steady_clock::time_point valid_until;
    std::uint64_t epoch = 0;    // the room's gossip freshness at fill time
    std::uint64_t version = 0;
  };
  std::mutex forward_mu_;
  std::unordered_map<std::string, ForwardCacheEntry> forward_cache_;

  // The reaper waits on this cv with its stop token (instead of a blind
  // sleep_for), so on_stop() interrupts a pending reap interval instead of
  // blocking until it elapses.
  std::mutex reaper_mu_;
  std::condition_variable_any reaper_cv_;
  std::jthread reaper_;
};

// A service's location as reported by the directory.
struct ServiceLocation {
  std::string name;
  net::Address address;
  std::string room;
  std::string service_class;
};

// Parameters for AsdClient::register_service (mirrors the `register`
// command's arguments; lease empty = let the directory pick).
struct ServiceRegistration {
  std::string name;
  net::Address address;
  std::string room;
  std::string service_class;
  std::optional<std::chrono::milliseconds> lease{};
};

// Per-name outcome of a batched renewal.
struct RenewOutcome {
  std::string name;
  bool renewed = false;  // false = not registered (lease lost)
};

// Lookup-cache knobs for AsdClient. The cache needs no coherence protocol
// because every positive entry is lease-bounded: the directory's lookup
// reply carries `expires_in`, and a cached entry is never served past that
// horizon — exactly the staleness the lease contract already permits (a
// dead service stays listed until its lease runs out, so a cached hit is
// never staler than a directory hit). Negative results get a short fixed
// TTL, and `invalidate()` gives subscribers of `serviceExpired` (e.g. the
// Robustness Manager) an eviction hook sharper than the TTLs.
struct AsdCacheOptions {
  bool enabled = false;
  std::size_t max_entries = 1024;
  std::chrono::milliseconds negative_ttl{250};
};

// Client facade over the ASD command set. Binds a transport client and the
// directory's address once so call sites speak in terms of directory
// operations instead of hand-built CmdLines. With cache.enabled, lookups
// are served from a lease-bounded TTL cache (asd_client.cache_hits /
// cache_misses metrics).
class AsdClient {
 public:
  AsdClient(daemon::AceClient& client, net::Address asd,
            AsdCacheOptions cache = {});

  const net::Address& directory_address() const { return asd_; }

  // `lookup name=;` — exact-name resolution (cached when enabled).
  util::Result<ServiceLocation> lookup(const std::string& name);

  // `query name= class= room=;` — glob-pattern search (never cached).
  // Against a federated directory the reply merges matching entries from
  // live peer rooms; `local_only` sends `scope=local` to restrict the
  // answer to the queried directory's own room (and is what a federated
  // ASD itself sends when fanning out, so forwarding never loops).
  util::Result<std::vector<ServiceLocation>> query(
      const std::string& name_glob = "*", const std::string& class_glob = "*",
      const std::string& room_glob = "*", bool local_only = false);

  // `register ...;` — returns the lease granted by the directory.
  util::Result<std::chrono::milliseconds> register_service(
      const ServiceRegistration& registration);

  // `renew name=;`
  util::Status renew(const std::string& name);

  // `renewBatch names={...};` — renews every name in one RPC. The result
  // has one outcome per requested name; `renewed == false` means the
  // directory holds no lease for it (crashed ASD or expired entry) and the
  // owner must re-register.
  util::Result<std::vector<RenewOutcome>> renew_batch(
      const std::vector<std::string>& names);

  // `deregister name=;`
  util::Status deregister(const std::string& name);

  // `count;` — number of live registrations.
  util::Result<std::size_t> count();

  // Evicts one name / everything from the lookup cache. No-ops when the
  // cache is disabled. Wire these to `serviceExpired` notifications for
  // eviction ahead of the lease horizon.
  void invalidate(const std::string& name);
  void invalidate_all();

 private:
  struct CacheEntry {
    std::optional<ServiceLocation> location;  // nullopt = negative entry
    std::chrono::steady_clock::time_point valid_until;
  };
  // Heap-allocated so AsdClient stays movable and costs nothing when the
  // cache is off (the overwhelmingly common throwaway-instance case).
  struct CacheState {
    AsdCacheOptions options;
    std::mutex mu;
    std::unordered_map<std::string, CacheEntry> entries;
    obs::Counter* hits = nullptr;    // asd_client.cache_hits
    obs::Counter* misses = nullptr;  // asd_client.cache_misses
  };

  // Cache probe/fill; only called when cache_ is set.
  std::optional<util::Result<ServiceLocation>> cache_get(
      const std::string& name);
  void cache_put(const std::string& name, std::optional<ServiceLocation> loc,
                 std::chrono::milliseconds ttl);

  daemon::AceClient& client_;
  net::Address asd_;
  std::unique_ptr<CacheState> cache_;
};

}  // namespace ace::services
