// ASD — the ACE Service Directory (paper §2.4, Fig 7): "a central listing
// or directory of services currently available and running within the ACE
// environment", with lease-based liveness:
//
//   "Upon registration with the ASD, each ACE service is given a lease time
//    for which they'll be allowed to remain within the ASD listing. If a
//    registered service fails to renew its service lease with the ASD upon
//    lease time expiration, this service shall automatically be removed."
//
// Command set:
//   register name= host= port= room= class= lease=;   -> ok lease=granted_ms
//   renew name=;                                      -> ok expires_in=
//   deregister name=;                                 -> ok
//   lookup name=;                                     -> ok host= port= ...
//   query name=<glob>? class=<glob>? room=<glob>?;    -> ok services={...}
//   count;                                            -> ok count=
//
// Expiry fires the internal `serviceExpired name=;` command, so any service
// may addNotification on `register`, `deregister` or `serviceExpired` —
// this is what the Robustness Manager (src/store) listens to.
#pragma once

#include <map>
#include <optional>
#include <thread>
#include <vector>

#include "daemon/daemon.hpp"

namespace ace::services {

struct AsdOptions {
  std::chrono::milliseconds min_lease{200};
  std::chrono::milliseconds max_lease{60000};
  std::chrono::milliseconds reap_interval{50};
};

class AsdDaemon : public daemon::ServiceDaemon {
 public:
  struct Registration {
    std::string name;
    std::string host;
    std::uint16_t port = 0;
    std::string room;
    std::string service_class;
    std::chrono::milliseconds lease{0};
    std::chrono::steady_clock::time_point expires;
  };

  AsdDaemon(daemon::Environment& env, daemon::DaemonHost& host,
            daemon::DaemonConfig config, AsdOptions options = {});

  std::size_t live_count() const;
  std::optional<Registration> find_registration(const std::string& name) const;

 protected:
  util::Status on_start() override;
  void on_stop() override;
  // A crashed directory loses its in-memory registry: services must
  // re-register (the lease loop does this on `not_found` renewals) and
  // watchers must re-subscribe (the Robustness Manager watchdog does).
  void on_crash() override;

 private:
  void reaper_loop(std::stop_token st);
  static std::string encode_entry(const Registration& r);
  // Refreshes the asd.live_count gauge; caller must hold mu_ (which is
  // non-recursive, so this must not go through live_count()).
  void update_live_gauge_locked();

  AsdOptions options_;
  mutable std::mutex mu_;
  std::map<std::string, Registration> registry_;
  std::jthread reaper_;

  // Cached obs cells (deployment registry, `asd.*` names).
  obs::Counter* obs_registrations_;
  obs::Counter* obs_renewals_;
  obs::Counter* obs_deregistrations_;
  obs::Counter* obs_expirations_;
  obs::Counter* obs_lookups_;
  obs::Counter* obs_queries_;
  obs::Gauge* obs_live_count_;
};

// A service's location as reported by the directory.
struct ServiceLocation {
  std::string name;
  net::Address address;
  std::string room;
  std::string service_class;
};

// Parameters for AsdClient::register_service (mirrors the `register`
// command's arguments; lease empty = let the directory pick).
struct ServiceRegistration {
  std::string name;
  net::Address address;
  std::string room;
  std::string service_class;
  std::optional<std::chrono::milliseconds> lease{};
};

// Client facade over the ASD command set. Binds a transport client and the
// directory's address once so call sites speak in terms of directory
// operations instead of hand-built CmdLines.
class AsdClient {
 public:
  AsdClient(daemon::AceClient& client, net::Address asd)
      : client_(client), asd_(asd) {}

  const net::Address& directory_address() const { return asd_; }

  // `lookup name=;` — exact-name resolution.
  util::Result<ServiceLocation> lookup(const std::string& name);

  // `query name= class= room=;` — glob-pattern search.
  util::Result<std::vector<ServiceLocation>> query(
      const std::string& name_glob = "*", const std::string& class_glob = "*",
      const std::string& room_glob = "*");

  // `register ...;` — returns the lease granted by the directory.
  util::Result<std::chrono::milliseconds> register_service(
      const ServiceRegistration& registration);

  // `renew name=;`
  util::Status renew(const std::string& name);

  // `deregister name=;`
  util::Status deregister(const std::string& name);

  // `count;` — number of live registrations.
  util::Result<std::size_t> count();

 private:
  daemon::AceClient& client_;
  net::Address asd_;
};

}  // namespace ace::services
