// ACE Room Database service (paper §4.11): spatial awareness for services —
// buildings, rooms, room dimensions (a 3D coordinate frame for device
// control such as pointing cameras), and which services live where.
//
// Command set:
//   roomCreate room= building=? width=? depth=? height=?;
//   roomAddService room= name= host= port= class=? x=? y=? z=?;
//   roomRemoveService room= name=;
//   roomSetLocation room= name= x= y= z=?;       (place a device in 3D)
//   roomServices room=;                          -> ok services={...}
//   roomInfo room=;                              -> ok building= width= ...
//   roomOfService name=;                         -> ok room=
//   roomList;                                    -> ok rooms={...}
#pragma once

#include <map>

#include "daemon/daemon.hpp"

namespace ace::services {

class RoomDbDaemon : public daemon::ServiceDaemon {
 public:
  struct PlacedService {
    std::string name;
    std::string host;
    std::uint16_t port = 0;
    std::string service_class;
    double x = 0.0, y = 0.0, z = 0.0;
    bool located = false;
  };

  struct RoomInfo {
    std::string name;
    std::string building;
    double width = 0.0, depth = 0.0, height = 0.0;
    std::map<std::string, PlacedService> services;
  };

  RoomDbDaemon(daemon::Environment& env, daemon::DaemonHost& host,
               daemon::DaemonConfig config);

  std::optional<RoomInfo> room(const std::string& name) const;
  std::size_t room_count() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, RoomInfo> rooms_;
};

}  // namespace ace::services
