#include "services/asd_index.hpp"

#include <algorithm>
#include <mutex>

#include "util/strings.hpp"

namespace ace::services {

namespace {

bool has_wildcard(std::string_view pattern) {
  return pattern.find_first_of("*?") != std::string_view::npos;
}

bool is_match_all(std::string_view pattern) { return pattern == "*"; }

}  // namespace

void AsdIndex::set_gauge_locked() const {
  if (obs_.live_count)
    obs_.live_count->set(static_cast<std::int64_t>(registry_.size()));
}

void AsdIndex::index_add_locked(const AsdRegistration& r) {
  by_class_[r.service_class].insert(r.name);
  by_room_[r.room].insert(r.name);
}

void AsdIndex::index_remove_locked(const AsdRegistration& r) {
  auto drop = [&](std::unordered_map<std::string, Bucket>& index,
                  const std::string& key) {
    auto it = index.find(key);
    if (it == index.end()) return;
    it->second.erase(r.name);
    if (it->second.empty()) index.erase(it);
  };
  drop(by_class_, r.service_class);
  drop(by_room_, r.room);
}

void AsdIndex::push_heap_locked(const Entry& e) {
  expiry_heap_.push(HeapNode{e.reg.expires, e.generation, e.reg.name});
}

void AsdIndex::upsert(AsdRegistration r) {
  std::unique_lock lock(mu_);
  auto it = registry_.find(r.name);
  if (it != registry_.end()) {
    // Re-registration may move the entry between class/room buckets.
    index_remove_locked(it->second.reg);
    it->second.reg = std::move(r);
    it->second.generation = next_generation_++;
    index_add_locked(it->second.reg);
    push_heap_locked(it->second);
  } else {
    Entry e{std::move(r), next_generation_++};
    index_add_locked(e.reg);
    push_heap_locked(e);
    registry_.emplace(e.reg.name, std::move(e));
  }
  set_gauge_locked();
}

std::optional<std::chrono::milliseconds> AsdIndex::renew(
    const std::string& name, Clock::time_point now) {
  std::unique_lock lock(mu_);
  auto it = registry_.find(name);
  if (it == registry_.end()) return std::nullopt;
  it->second.reg.expires = now + it->second.reg.lease;
  it->second.generation = next_generation_++;
  push_heap_locked(it->second);
  return it->second.reg.lease;
}

bool AsdIndex::erase(const std::string& name) {
  std::unique_lock lock(mu_);
  auto it = registry_.find(name);
  if (it == registry_.end()) return false;
  index_remove_locked(it->second.reg);
  registry_.erase(it);
  set_gauge_locked();
  return true;
}

bool AsdIndex::erase_expired(const std::string& name, Clock::time_point now) {
  std::unique_lock lock(mu_);
  auto it = registry_.find(name);
  if (it == registry_.end() || it->second.reg.expires > now) return false;
  index_remove_locked(it->second.reg);
  registry_.erase(it);
  set_gauge_locked();
  return true;
}

void AsdIndex::clear() {
  std::unique_lock lock(mu_);
  registry_.clear();
  by_class_.clear();
  by_room_.clear();
  expiry_heap_ = {};
  set_gauge_locked();
}

std::vector<AsdRegistration> AsdIndex::collect_expired(Clock::time_point now) {
  std::unique_lock lock(mu_);
  std::vector<AsdRegistration> due;
  while (!expiry_heap_.empty() && expiry_heap_.top().expires <= now) {
    HeapNode node = expiry_heap_.top();
    expiry_heap_.pop();
    auto it = registry_.find(node.name);
    // Lazy invalidation: skip nodes superseded by a renew/re-register (the
    // entry carries a newer generation with its own heap node) and nodes
    // for entries already removed.
    if (it == registry_.end() || it->second.generation != node.generation)
      continue;
    if (it->second.reg.expires > now) {  // defensive; generation should catch
      push_heap_locked(it->second);
      continue;
    }
    due.push_back(it->second.reg);
  }
  return due;
}

std::optional<AsdRegistration> AsdIndex::find(const std::string& name) const {
  std::shared_lock lock(mu_);
  auto it = registry_.find(name);
  if (it == registry_.end()) return std::nullopt;
  return it->second.reg;
}

std::size_t AsdIndex::size() const {
  std::shared_lock lock(mu_);
  return registry_.size();
}

std::optional<AsdIndex::Clock::time_point> AsdIndex::next_expiry() const {
  std::shared_lock lock(mu_);
  if (expiry_heap_.empty()) return std::nullopt;
  return expiry_heap_.top().expires;
}

void AsdIndex::append_if_match_locked(
    const Entry& e, std::string_view name_glob, std::string_view class_glob,
    std::string_view room_glob, Clock::time_point now,
    std::vector<AsdRegistration>& out) const {
  const AsdRegistration& r = e.reg;
  if (r.expires < now) return;
  if (!util::glob_match(name_glob, r.name)) return;
  if (!util::glob_match(class_glob, r.service_class)) return;
  if (!util::glob_match(room_glob, r.room)) return;
  out.push_back(r);
}

std::vector<AsdRegistration> AsdIndex::query(std::string_view name_glob,
                                             std::string_view class_glob,
                                             std::string_view room_glob,
                                             Clock::time_point now) const {
  std::vector<AsdRegistration> out;
  std::shared_lock lock(mu_);

  auto consider = [&](const std::string& name) {
    auto it = registry_.find(name);
    if (it != registry_.end())
      append_if_match_locked(it->second, name_glob, class_glob, room_glob, now,
                             out);
  };
  auto scan_all = [&] {
    if (obs_.query_scans) obs_.query_scans->inc();
    for (const auto& [name, e] : registry_)
      append_if_match_locked(e, name_glob, class_glob, room_glob, now, out);
  };
  auto hit = [&] {
    if (obs_.query_index_hits) obs_.query_index_hits->inc();
  };
  // Union of the buckets whose key matches `pattern` — the glob fallback:
  // it globs over distinct class/room *values*, not registrations.
  auto bucket_union = [&](const std::unordered_map<std::string, Bucket>& index,
                          std::string_view pattern) {
    hit();
    for (const auto& [key, bucket] : index) {
      if (!util::glob_match(pattern, key)) continue;
      for (const auto& name : bucket) consider(name);
    }
  };

  if (!use_index_) {
    scan_all();
  } else if (!has_wildcard(name_glob)) {
    // Exact name: a point lookup regardless of the other patterns.
    hit();
    consider(std::string(name_glob));
  } else if (!has_wildcard(class_glob) || !has_wildcard(room_glob)) {
    // At least one exact token: pick the smaller bucket and filter it.
    const Bucket* class_bucket =
        !has_wildcard(class_glob)
            ? [&]() -> const Bucket* {
                auto it = by_class_.find(std::string(class_glob));
                return it == by_class_.end() ? nullptr : &it->second;
              }()
            : nullptr;
    const Bucket* room_bucket =
        !has_wildcard(room_glob)
            ? [&]() -> const Bucket* {
                auto it = by_room_.find(std::string(room_glob));
                return it == by_room_.end() ? nullptr : &it->second;
              }()
            : nullptr;
    hit();
    const Bucket* chosen = nullptr;
    if (class_bucket && room_bucket)
      chosen = class_bucket->size() <= room_bucket->size() ? class_bucket
                                                           : room_bucket;
    else if (class_bucket)
      chosen = class_bucket;
    else if (room_bucket)
      chosen = room_bucket;
    // An exact token with no bucket means no live registration can match;
    // chosen stays null only when *every* exact token missed.
    if (!class_bucket && !has_wildcard(class_glob)) chosen = nullptr;
    if (!room_bucket && !has_wildcard(room_glob)) chosen = nullptr;
    if (chosen)
      for (const auto& name : *chosen) consider(name);
  } else if (!is_match_all(class_glob)) {
    bucket_union(by_class_, class_glob);
  } else if (!is_match_all(room_glob)) {
    bucket_union(by_room_, room_glob);
  } else {
    scan_all();
  }

  std::sort(out.begin(), out.end(),
            [](const AsdRegistration& a, const AsdRegistration& b) {
              return a.name < b.name;
            });
  return out;
}

bool AsdIndex::check_consistency() const {
  std::shared_lock lock(mu_);
  std::size_t class_members = 0, room_members = 0;
  for (const auto& [key, bucket] : by_class_) {
    if (bucket.empty()) return false;  // empty buckets must be pruned
    class_members += bucket.size();
    for (const auto& name : bucket) {
      auto it = registry_.find(name);
      if (it == registry_.end() || it->second.reg.service_class != key)
        return false;
    }
  }
  for (const auto& [key, bucket] : by_room_) {
    if (bucket.empty()) return false;
    room_members += bucket.size();
    for (const auto& name : bucket) {
      auto it = registry_.find(name);
      if (it == registry_.end() || it->second.reg.room != key) return false;
    }
  }
  // Bucket membership totals match the registry exactly (no orphans).
  if (class_members != registry_.size() || room_members != registry_.size())
    return false;
  for (const auto& [name, e] : registry_) {
    if (e.reg.name != name) return false;
    auto c = by_class_.find(e.reg.service_class);
    if (c == by_class_.end() || !c->second.contains(name)) return false;
    auto r = by_room_.find(e.reg.room);
    if (r == by_room_.end() || !r->second.contains(name)) return false;
  }
  if (obs_.live_count &&
      obs_.live_count->value() != static_cast<std::int64_t>(registry_.size()))
    return false;
  return true;
}

}  // namespace ace::services
