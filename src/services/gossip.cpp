#include "services/gossip.hpp"

#include <algorithm>
#include <cstdlib>
#include <utility>

#include "cmdlang/parser.hpp"
#include "util/log.hpp"
#include "util/strings.hpp"

namespace ace::services {

using cmdlang::CmdLine;
using cmdlang::Word;
using daemon::CallOptions;

const char* to_string(RoomState state) {
  switch (state) {
    case RoomState::alive: return "alive";
    case RoomState::suspect: return "suspect";
    case RoomState::evicted: return "evicted";
  }
  return "?";
}

std::string GossipAgent::encode_entry(const RoomView& v) {
  return v.room + "|" + v.address.to_string() + "|" +
         (v.relay.host.empty() ? std::string("-") : v.relay.to_string()) +
         "|" + std::to_string(v.epoch) + "|" + std::to_string(v.version) +
         "|" + std::to_string(v.heartbeat);
}

std::optional<RoomView> GossipAgent::decode_entry(std::string_view s) {
  auto parts = util::split(s, '|');
  if (parts.size() != 6) return std::nullopt;
  RoomView v;
  v.room = parts[0];
  auto addr = net::Address::parse(parts[1]);
  if (!addr || v.room.empty()) return std::nullopt;
  v.address = *addr;
  if (parts[2] != "-") {
    auto relay = net::Address::parse(parts[2]);
    if (!relay) return std::nullopt;
    v.relay = *relay;
  }
  char* end = nullptr;
  v.epoch = std::strtoull(parts[3].c_str(), &end, 10);
  if (end == nullptr || *end != '\0') return std::nullopt;
  v.version = std::strtoull(parts[4].c_str(), &end, 10);
  if (end == nullptr || *end != '\0') return std::nullopt;
  v.heartbeat = std::strtoull(parts[5].c_str(), &end, 10);
  if (end == nullptr || *end != '\0') return std::nullopt;
  return v;
}

GossipAgent::GossipAgent(daemon::Environment& env, std::string self_room,
                         FederationOptions options)
    : env_(env),
      self_room_(std::move(self_room)),
      options_(std::move(options)),
      obs_rounds_(&env.metrics().counter("asd.gossip_rounds")),
      obs_syncs_(&env.metrics().counter("asd.gossip_syncs")),
      obs_sync_failures_(&env.metrics().counter("asd.gossip_sync_failures")),
      obs_merges_(&env.metrics().counter("asd.gossip_merges")),
      obs_suspicions_(&env.metrics().counter("asd.gossip_suspicions")),
      obs_evictions_(&env.metrics().counter("asd.gossip_evictions")),
      obs_live_rooms_(&env.metrics().gauge("asd.gossip_live_rooms")),
      rng_(env.next_seed()) {}

GossipAgent::~GossipAgent() { stop(); }

void GossipAgent::start(net::Address self_address,
                        std::shared_ptr<daemon::AceClient> client) {
  std::scoped_lock lock(mu_);
  client_ = std::move(client);
  // New incarnation: whatever peers cached from the previous life is dead.
  ++incarnation_;
  round_ = 0;
  self_ = RoomView{self_room_, self_address, options_.relay,
                   /*epoch=*/incarnation_, /*version=*/0, /*heartbeat=*/0,
                   RoomState::alive};
  // Volatile membership died with the process: re-seed from configuration.
  // Seeds start at epoch 0 / last_advance 0, so a seed that never answers
  // ages into suspicion and eviction like any silent peer.
  members_.clear();
  for (const auto& seed : options_.seeds) {
    if (seed.room == self_room_ || members_.contains(seed.room)) continue;
    Member m;
    m.view.room = seed.room;
    m.view.address = seed.address;
    m.view.relay = seed.relay;
    members_.emplace(seed.room, std::move(m));
  }
  obs_live_rooms_->set(static_cast<std::int64_t>(members_.size() + 1));
  // Revocation is permanent on a TaskGuard's shared core, so each
  // incarnation gets a fresh guard (the previous one was revoked by
  // stop(); reusing it would silently disarm every future round).
  guard_ = net::TaskGuard{};
  arm_locked();
}

void GossipAgent::stop() {
  net::Reactor::TimerId timer = 0;
  std::shared_ptr<daemon::AceClient> client;
  net::TaskGuard guard;
  {
    std::scoped_lock lock(mu_);
    ++tick_gen_;  // a round already dispatched becomes a no-op
    timer = std::exchange(timer_, 0);
    client = std::move(client_);
    guard = guard_;
  }
  if (timer != 0) env_.reactor().cancel(timer);
  guard.revoke();  // waits out a round running right now
}

void GossipAgent::bump_version() {
  std::scoped_lock lock(mu_);
  ++self_.version;
}

std::uint64_t GossipAgent::epoch() const {
  std::scoped_lock lock(mu_);
  return self_.epoch;
}

std::uint64_t GossipAgent::version() const {
  std::scoped_lock lock(mu_);
  return self_.version;
}

std::vector<RoomView> GossipAgent::view() const {
  std::scoped_lock lock(mu_);
  std::vector<RoomView> out;
  out.reserve(members_.size() + 1);
  out.push_back(self_);
  for (const auto& [room, m] : members_) out.push_back(m.view);
  std::sort(out.begin() + 1, out.end(),
            [](const RoomView& a, const RoomView& b) { return a.room < b.room; });
  return out;
}

std::vector<RoomView> GossipAgent::forward_targets(
    const std::string& room_glob) const {
  std::scoped_lock lock(mu_);
  std::vector<RoomView> out;
  for (const auto& [room, m] : members_) {
    if (m.view.state == RoomState::evicted) continue;
    if (!util::glob_match(room_glob, room)) continue;
    out.push_back(m.view);
  }
  std::sort(out.begin(), out.end(),
            [](const RoomView& a, const RoomView& b) { return a.room < b.room; });
  return out;
}

std::optional<std::pair<std::uint64_t, std::uint64_t>>
GossipAgent::room_freshness(const std::string& room) const {
  std::scoped_lock lock(mu_);
  auto it = members_.find(room);
  if (it == members_.end()) return std::nullopt;
  return std::make_pair(it->second.view.epoch, it->second.view.version);
}

std::vector<std::string> GossipAgent::encode_view_locked() const {
  // Evicted rooms are withheld: eviction propagates by silence (each agent
  // ages peers on its own round clock), never by forwarding stale entries.
  std::vector<std::string> out;
  out.reserve(members_.size() + 1);
  out.push_back(encode_entry(self_));
  for (const auto& [room, m] : members_)
    if (m.view.state != RoomState::evicted)
      out.push_back(encode_entry(m.view));
  return out;
}

void GossipAgent::merge_entry_locked(const RoomView& in,
                                     std::vector<std::string>& changed) {
  if (in.room == self_room_) return;  // we are authoritative for ourselves
  auto it = members_.find(in.room);
  if (it == members_.end()) {
    Member m;
    m.view = in;
    m.view.state = RoomState::alive;
    m.last_advance_round = round_;
    members_.emplace(in.room, std::move(m));
    obs_merges_->inc();
    changed.push_back(in.room);
    return;
  }
  Member& m = it->second;
  const bool newer_epoch = in.epoch > m.view.epoch;
  const bool hb_advance =
      newer_epoch ||
      (in.epoch == m.view.epoch && in.heartbeat > m.view.heartbeat);
  const bool ver_advance =
      newer_epoch || (in.epoch == m.view.epoch && in.version > m.view.version);
  if (!hb_advance && !ver_advance) return;
  obs_merges_->inc();
  if (newer_epoch) {
    m.view.epoch = in.epoch;
    m.view.version = in.version;
    m.view.heartbeat = in.heartbeat;
  } else {
    if (hb_advance) m.view.heartbeat = in.heartbeat;
    if (ver_advance) m.view.version = in.version;
  }
  // Endpoints ride any advance (a restarted room may have moved).
  m.view.address = in.address;
  m.view.relay = in.relay;
  if (hb_advance) {
    m.last_advance_round = round_;
    m.view.state = RoomState::alive;  // resurrection if suspect/evicted
  }
  if (ver_advance) changed.push_back(in.room);
}

std::vector<std::string> GossipAgent::handle_sync(
    const std::vector<std::string>& peer_view) {
  std::vector<std::string> changed;
  std::vector<std::string> reply;
  {
    std::scoped_lock lock(mu_);
    for (const auto& entry : peer_view)
      if (auto v = decode_entry(entry)) merge_entry_locked(*v, changed);
    reply = encode_view_locked();
  }
  if (on_room_changed)
    for (const auto& room : changed) on_room_changed(room);
  return reply;
}

void GossipAgent::arm_locked() {
  const std::uint64_t gen = ++tick_gen_;
  timer_ = env_.reactor().post_after(
      options_.gossip_interval, guard_.wrap([this, gen] { run_round(gen); }),
      /*blocking=*/true);
}

void GossipAgent::run_round(std::uint64_t gen) {
  {
    std::scoped_lock lock(mu_);
    if (gen != tick_gen_) return;  // superseded by stop()/restart
    timer_ = 0;
  }
  round();
  std::scoped_lock lock(mu_);
  if (gen != tick_gen_) return;
  arm_locked();
}

void GossipAgent::round() {
  std::shared_ptr<daemon::AceClient> client;
  std::vector<RoomView> candidates;
  std::vector<RoomView> evicted;
  std::vector<std::string> payload;
  std::uint64_t round_no = 0;
  {
    std::scoped_lock lock(mu_);
    client = client_;
    if (!client) return;
    round_no = ++round_;
    ++self_.heartbeat;
    std::int64_t live = 1;
    for (auto& [room, m] : members_) {
      const std::uint64_t behind = round_ - m.last_advance_round;
      if (behind >= static_cast<std::uint64_t>(options_.evict_after_rounds)) {
        if (m.view.state != RoomState::evicted) {
          m.view.state = RoomState::evicted;
          obs_evictions_->inc();
          util::log_warn("gossip/" + self_room_)
              << "evicted room '" << room << "' after " << behind
              << " silent rounds";
        }
      } else if (behind >=
                 static_cast<std::uint64_t>(options_.suspect_after_rounds)) {
        if (m.view.state == RoomState::alive) {
          m.view.state = RoomState::suspect;
          obs_suspicions_->inc();
        }
      }
      if (m.view.state != RoomState::evicted) {
        candidates.push_back(m.view);
        ++live;
      } else {
        evicted.push_back(m.view);
      }
    }
    obs_live_rooms_->set(live);
    payload = encode_view_locked();
  }
  obs_rounds_->inc();

  // Fisher-Yates prefix: pick `fanout` distinct peers uniformly. rng_ is
  // only touched here, and rounds are serialized by the timer chain.
  const std::size_t fanout =
      std::min<std::size_t>(candidates.size(),
                            static_cast<std::size_t>(
                                std::max(options_.gossip_fanout, 0)));
  for (std::size_t i = 0; i < fanout; ++i) {
    std::size_t j = i + static_cast<std::size_t>(
                            rng_.next_below(candidates.size() - i));
    std::swap(candidates[i], candidates[j]);
  }
  candidates.resize(fanout);

  // Rejoin probe: one evicted room also gets a sync each round. Eviction
  // removes a room from peer selection and from forwarded views on BOTH
  // sides of a partition, so after the link heals neither side would ever
  // contact the other again without a direct probe — mutual eviction would
  // otherwise be a permanent split.
  if (!evicted.empty())
    candidates.push_back(
        evicted[static_cast<std::size_t>(rng_.next_below(evicted.size()))]);

  for (const RoomView& peer : candidates) {
    CmdLine sync("gossipSync");
    sync.arg("from", Word{self_room_});
    sync.arg("view", cmdlang::string_vector(payload));
    obs_syncs_->inc();
    auto reply = call_room(*client, peer, sync, options_.sync_timeout);
    if (!reply.ok()) {
      // Silence is the failure signal: the peer's heartbeat stops
      // advancing and the round clock ages it into suspicion.
      obs_sync_failures_->inc();
      continue;
    }
    std::vector<std::string> entries;
    if (auto vec = reply->get_vector("view")) {
      for (const auto& elem : vec->elements)
        if (elem.is_string() || elem.is_word())
          entries.push_back(elem.as_text());
    }
    std::vector<std::string> changed;
    {
      std::scoped_lock lock(mu_);
      for (const auto& entry : entries)
        if (auto v = decode_entry(entry)) merge_entry_locked(*v, changed);
    }
    if (on_room_changed)
      for (const auto& room : changed) on_room_changed(room);
  }

  // Keep our relay lease alive at roughly half its horizon.
  if (!options_.relay.host.empty()) {
    const std::uint64_t every = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(options_.relay_lease.count()) /
               (2 * std::max<std::uint64_t>(
                        1, static_cast<std::uint64_t>(
                               options_.gossip_interval.count()))));
    if (round_no == 1 || round_no % every == 0) register_with_relay(*client);
  }
}

void GossipAgent::register_with_relay(daemon::AceClient& client) {
  net::Address self_addr;
  {
    std::scoped_lock lock(mu_);
    self_addr = self_.address;
  }
  CmdLine reg("relayRegister");
  reg.arg("room", Word{self_room_});
  reg.arg("host", self_addr.host);
  reg.arg("port", static_cast<std::int64_t>(self_addr.port));
  reg.arg("lease", static_cast<std::int64_t>(options_.relay_lease.count()));
  auto r = client.call(options_.relay, reg,
                       CallOptions{.timeout = options_.sync_timeout,
                                   .require_ok = true});
  if (!r.ok())
    util::log_warn("gossip/" + self_room_)
        << "relay registration failed: " << r.error().to_string();
}

util::Result<CmdLine> call_room(daemon::AceClient& client,
                                const RoomView& target, const CmdLine& cmd,
                                std::chrono::milliseconds timeout) {
  if (target.relay.host.empty())
    return client.call(target.address, cmd,
                       CallOptions{.timeout = timeout, .require_ok = true});
  CmdLine tunnel("relayForward");
  tunnel.arg("room", Word{target.room});
  tunnel.arg("cmd", cmd.to_string());
  auto outer = client.call(target.relay, tunnel,
                           CallOptions{.timeout = timeout, .require_ok = true});
  if (!outer.ok()) return outer.error();
  auto inner = cmdlang::Parser::parse(outer->get_text("reply"));
  if (!inner.ok())
    return util::Error{util::Errc::parse_error,
                       "unparseable relayed reply from room '" + target.room +
                           "'"};
  if (!cmdlang::is_ok(inner.value()))
    return util::Error{util::Errc::unavailable,
                       "relayed command to room '" + target.room +
                           "' failed: " + inner.value().to_string()};
  return inner.value();
}

}  // namespace ace::services
