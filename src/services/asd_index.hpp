// AsdIndex — the read-optimized concurrent core of the ACE Service
// Directory (paper §2.4). The original AsdDaemon kept one std::map behind
// one std::mutex: every query was a full O(n) glob scan under the lock,
// every mutation recomputed the live-count gauge O(n), and the reaper
// rescanned the whole registry each interval. At building/campus scale
// (Ch 9) the directory is the rendezvous for *every* interaction, so this
// class restructures it around three ideas:
//
//  * secondary indexes: exact-token hash buckets over `service_class` and
//    `room`. A query whose class or room pattern is wildcard-free touches
//    one bucket; a pattern with wildcards falls back to globbing over the
//    *distinct* class/room values (typically orders of magnitude fewer
//    than registrations) and unioning their buckets. Only a query that
//    constrains nothing but the name pattern still scans the registry.
//    The `asd.query_index_hits` / `asd.query_scans` counters prove which
//    path served each query.
//
//  * snapshot reads: readers (lookup/query/count) take a std::shared_mutex
//    in shared mode, so concurrent readers never serialize behind each
//    other or behind the control thread — registrations are the only
//    writers. The AsdDaemon marks its directory commands concurrent_ok so
//    they run on the connection threads and actually exploit this.
//
//  * incremental liveness: the live count is the registry size, adjusted
//    on register/deregister/expiry (no rescans), and expiry is driven by a
//    min-heap keyed on the expiry deadline. Renewals lazily invalidate
//    superseded heap nodes via a per-entry generation counter, so the
//    reaper pops exactly the due entries in O(k log n) instead of sweeping
//    the map.
//
// All methods are internally synchronized; the class is safe to call from
// any daemon thread.
#pragma once

#include <chrono>
#include <cstdint>
#include <optional>
#include <queue>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "obs/metrics.hpp"

namespace ace::services {

// One directory registration (the paper's ASD listing row).
struct AsdRegistration {
  std::string name;
  std::string host;
  std::uint16_t port = 0;
  std::string room;
  std::string service_class;
  std::chrono::milliseconds lease{0};
  std::chrono::steady_clock::time_point expires;
};

// Optional obs cells the index maintains; null pointers are skipped.
struct AsdIndexObs {
  obs::Counter* query_index_hits = nullptr;  // asd.query_index_hits
  obs::Counter* query_scans = nullptr;       // asd.query_scans
  obs::Gauge* live_count = nullptr;          // asd.live_count
};

class AsdIndex {
 public:
  using Clock = std::chrono::steady_clock;

  explicit AsdIndex(bool use_index = true, AsdIndexObs obs = {})
      : use_index_(use_index), obs_(obs) {}

  // --- writers (exclusive lock) -------------------------------------------
  // Inserts or replaces a registration (re-registration moves the entry
  // between index buckets and supersedes its old expiry heap node).
  void upsert(AsdRegistration r);

  // Extends the lease from `now`; returns the granted lease, or nullopt if
  // the name is not registered (including already reaped).
  std::optional<std::chrono::milliseconds> renew(const std::string& name,
                                                 Clock::time_point now);

  // Removes a registration unconditionally (deregister). Returns whether
  // an entry was removed.
  bool erase(const std::string& name);

  // Removes a registration only if its lease has run out — the expiry
  // path. An entry renewed or re-registered between the reaper noticing it
  // and this call is left alone. Returns whether an entry was removed.
  bool erase_expired(const std::string& name, Clock::time_point now);

  void clear();

  // Pops every entry due at `now` off the expiry heap and returns copies.
  // Entries are *not* removed from the registry — the daemon routes each
  // through its `serviceExpired` command (which calls erase_expired) so
  // expiry keeps flowing through the notification machinery (§2.5).
  // Superseded heap nodes (renewals, re-registrations) are discarded here,
  // which is where the lazy invalidation is paid: O(k log n) for k pops.
  std::vector<AsdRegistration> collect_expired(Clock::time_point now);

  // --- readers (shared lock) ----------------------------------------------
  std::optional<AsdRegistration> find(const std::string& name) const;

  // Glob query over name/class/room. Results are name-sorted so the
  // indexed and linear paths return byte-identical replies.
  std::vector<AsdRegistration> query(std::string_view name_glob,
                                     std::string_view class_glob,
                                     std::string_view room_glob,
                                     Clock::time_point now) const;

  // Registrations present (expired-but-not-yet-reaped entries included;
  // the reaper pops them within one reap interval). O(1).
  std::size_t size() const;

  // Earliest pending expiry deadline (may be a superseded node — a wake
  // hint for the reaper, not a promise). nullopt when the heap is empty.
  std::optional<Clock::time_point> next_expiry() const;

  // Test hook: verifies index <-> registry agreement — every registration
  // sits in exactly its class/room bucket, every bucket member resolves to
  // a registration, and the live-count gauge matches the registry size.
  bool check_consistency() const;

 private:
  struct Entry {
    AsdRegistration reg;
    std::uint64_t generation = 0;  // bumped on upsert/renew
  };
  struct HeapNode {
    Clock::time_point expires;
    std::uint64_t generation = 0;
    std::string name;
    bool operator>(const HeapNode& o) const { return expires > o.expires; }
  };
  using Bucket = std::unordered_set<std::string>;

  void index_add_locked(const AsdRegistration& r);
  void index_remove_locked(const AsdRegistration& r);
  void push_heap_locked(const Entry& e);
  void set_gauge_locked() const;
  // Appends the entry if it is live at `now` and matches all three globs.
  void append_if_match_locked(const Entry& e, std::string_view name_glob,
                              std::string_view class_glob,
                              std::string_view room_glob, Clock::time_point now,
                              std::vector<AsdRegistration>& out) const;

  bool use_index_;
  AsdIndexObs obs_;
  mutable std::shared_mutex mu_;
  std::unordered_map<std::string, Entry> registry_;
  std::unordered_map<std::string, Bucket> by_class_;
  std::unordered_map<std::string, Bucket> by_room_;
  std::uint64_t next_generation_ = 1;
  std::priority_queue<HeapNode, std::vector<HeapNode>, std::greater<HeapNode>>
      expiry_heap_;
};

}  // namespace ace::services
