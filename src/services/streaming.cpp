#include "services/streaming.hpp"

namespace ace::services {

using cmdlang::CmdLine;
using cmdlang::CommandSpec;
using cmdlang::string_arg;
using cmdlang::Word;
using cmdlang::word_arg;
using daemon::CallerInfo;

namespace {

daemon::DaemonConfig converter_defaults(daemon::DaemonConfig config) {
  config.open_data_channel = true;
  if (config.service_class.empty())
    config.service_class = "Service/Stream/Converter";
  return config;
}
daemon::DaemonConfig distribution_defaults(daemon::DaemonConfig config) {
  config.open_data_channel = true;
  if (config.service_class.empty())
    config.service_class = "Service/Stream/Distribution";
  return config;
}

const std::vector<std::string> kConversionPairs = {
    "raw_pcm>adpcm", "adpcm>raw_pcm", "raw_video>rle_video",
    "rle_video>raw_video", "raw_pcm>raw_pcm"};

bool conversion_supported(const std::string& from, const std::string& to) {
  for (const std::string& pair : kConversionPairs)
    if (pair == from + ">" + to) return true;
  return false;
}

}  // namespace

util::Bytes MediaPacket::serialize() const {
  util::ByteWriter w;
  w.str(stream);
  w.u32(sequence);
  w.str(format);
  w.blob(payload);
  return w.take();
}

std::optional<MediaPacket> MediaPacket::parse(const util::Bytes& data) {
  util::ByteReader r(data);
  MediaPacket p;
  auto stream = r.str();
  auto seq = r.u32();
  auto format = r.str();
  auto payload = r.blob();
  if (!stream || !seq || !format || !payload) return std::nullopt;
  p.stream = std::move(*stream);
  p.sequence = *seq;
  p.format = std::move(*format);
  p.payload = std::move(*payload);
  return p;
}

std::optional<std::string> peek_stream_tag(const util::Bytes& data) {
  util::ByteReader r(data);
  return r.str();
}

// ------------------------------------------------------------------ Converter

ConverterDaemon::ConverterDaemon(daemon::Environment& env,
                                 daemon::DaemonHost& host,
                                 daemon::DaemonConfig config)
    : ServiceDaemon(env, host, converter_defaults(std::move(config))) {
  register_command(
      CommandSpec("convRoute", "install a conversion route for a stream")
          .arg(string_arg("stream"))
          .arg(word_arg("from"))
          .arg(word_arg("to"))
          .arg(string_arg("dest")),
      [this](const CmdLine& cmd, const CallerInfo&) {
        std::string from = cmd.get_text("from");
        std::string to = cmd.get_text("to");
        if (!conversion_supported(from, to))
          return cmdlang::make_error(util::Errc::invalid,
                                     "unsupported conversion " + from + ">" +
                                         to);
        auto dest = net::Address::parse(cmd.get_text("dest"));
        if (!dest)
          return cmdlang::make_error(util::Errc::invalid,
                                     "dest must be host:port");
        Route route;
        route.from = from;
        route.to = to;
        route.dest = *dest;
        std::scoped_lock lock(mu_);
        routes_[cmd.get_text("stream")] = std::move(route);
        return cmdlang::make_ok();
      });

  register_command(
      CommandSpec("convFormats", "list supported conversions"),
      [](const CmdLine&, const CallerInfo&) {
        CmdLine reply = cmdlang::make_ok();
        reply.arg("pairs", cmdlang::string_vector(kConversionPairs));
        return reply;
      });

  register_command(
      CommandSpec("convStats", "per-stream conversion statistics")
          .arg(string_arg("stream")),
      [this](const CmdLine& cmd, const CallerInfo&) {
        auto stats = route_stats(cmd.get_text("stream"));
        if (!stats)
          return cmdlang::make_error(util::Errc::not_found, "no such route");
        CmdLine reply = cmdlang::make_ok();
        reply.arg("packets", static_cast<std::int64_t>(stats->packets));
        reply.arg("in_bytes", static_cast<std::int64_t>(stats->in_bytes));
        reply.arg("out_bytes", static_cast<std::int64_t>(stats->out_bytes));
        return reply;
      });
}

util::Result<util::Bytes> ConverterDaemon::convert(
    Route& route, const util::Bytes& payload) {
  const std::string& from = route.from;
  const std::string& to = route.to;
  if (from == to) return payload;

  if (from == "raw_pcm" && to == "adpcm") {
    // payload = i16 little-endian samples
    std::vector<std::int16_t> pcm(payload.size() / 2);
    for (std::size_t i = 0; i < pcm.size(); ++i)
      pcm[i] = static_cast<std::int16_t>(
          static_cast<std::uint16_t>(payload[2 * i]) |
          static_cast<std::uint16_t>(payload[2 * i + 1]) << 8);
    util::ByteWriter w;
    w.u32(static_cast<std::uint32_t>(pcm.size()));
    w.raw(media::adpcm_encode(pcm, route.adpcm_encode_state));
    return w.take();
  }
  if (from == "adpcm" && to == "raw_pcm") {
    util::ByteReader r(payload);
    auto count = r.u32();
    if (!count) return util::Error{util::Errc::parse_error, "bad adpcm"};
    auto rest = r.raw(r.remaining());
    std::vector<std::int16_t> pcm =
        media::adpcm_decode(*rest, *count, route.adpcm_decode_state);
    util::ByteWriter w;
    for (std::int16_t s : pcm) w.i16(s);
    return w.take();
  }
  if (from == "raw_video" && to == "rle_video") {
    util::ByteReader r(payload);
    auto width = r.u32();
    auto height = r.u32();
    if (!width || !height)
      return util::Error{util::Errc::parse_error, "bad video header"};
    auto pixels = r.raw(static_cast<std::size_t>(*width) * *height);
    if (!pixels) return util::Error{util::Errc::parse_error, "short video"};
    media::VideoFrame frame;
    frame.width = static_cast<int>(*width);
    frame.height = static_cast<int>(*height);
    frame.pixels = std::move(*pixels);
    util::Bytes encoded = media::rle_video_encode(
        frame, route.has_reference ? &route.reference : nullptr);
    route.reference = std::move(frame);
    route.has_reference = true;
    return encoded;
  }
  if (from == "rle_video" && to == "raw_video") {
    auto frame = media::rle_video_decode(
        payload, route.has_reference ? &route.reference : nullptr);
    if (!frame)
      return util::Error{util::Errc::parse_error, "undecodable rle video"};
    util::ByteWriter w;
    w.u32(static_cast<std::uint32_t>(frame->width));
    w.u32(static_cast<std::uint32_t>(frame->height));
    w.raw(frame->pixels);
    route.reference = std::move(*frame);
    route.has_reference = true;
    return w.take();
  }
  return util::Error{util::Errc::invalid, "unsupported conversion"};
}

void ConverterDaemon::on_datagram(const net::Datagram& datagram) {
  auto packet = MediaPacket::parse(datagram.payload);
  if (!packet) return;
  std::optional<net::Address> dest;
  util::Bytes out_wire;
  {
    std::scoped_lock lock(mu_);
    auto it = routes_.find(packet->stream);
    if (it == routes_.end()) return;
    Route& route = it->second;
    if (packet->format != route.from) return;
    auto converted = convert(route, packet->payload);
    if (!converted.ok()) return;
    MediaPacket out;
    out.stream = packet->stream;
    out.sequence = packet->sequence;
    out.format = route.to;
    out.payload = std::move(converted.value());
    out_wire = out.serialize();
    route.stats.packets++;
    route.stats.in_bytes += packet->payload.size();
    route.stats.out_bytes += out.payload.size();
    dest = route.dest;
  }
  if (dest) (void)send_datagram(*dest, std::move(out_wire));
}

std::optional<ConverterDaemon::RouteStats> ConverterDaemon::route_stats(
    const std::string& stream) const {
  std::scoped_lock lock(mu_);
  auto it = routes_.find(stream);
  if (it == routes_.end()) return std::nullopt;
  return it->second.stats;
}

// --------------------------------------------------------------- Distribution

DistributionDaemon::DistributionDaemon(daemon::Environment& env,
                                       daemon::DaemonHost& host,
                                       daemon::DaemonConfig config)
    : ServiceDaemon(env, host, distribution_defaults(std::move(config))) {
  register_command(
      CommandSpec("distAddSink", "forward a stream to another service")
          .arg(string_arg("stream"))
          .arg(string_arg("dest")),
      [this](const CmdLine& cmd, const CallerInfo&) {
        auto dest = net::Address::parse(cmd.get_text("dest"));
        if (!dest)
          return cmdlang::make_error(util::Errc::invalid,
                                     "dest must be host:port");
        std::scoped_lock lock(mu_);
        auto& sinks = sinks_[cmd.get_text("stream")];
        if (std::find(sinks.begin(), sinks.end(), *dest) == sinks.end())
          sinks.push_back(*dest);
        return cmdlang::make_ok();
      });

  register_command(
      CommandSpec("distRemoveSink", "stop forwarding a stream to dest")
          .arg(string_arg("stream"))
          .arg(string_arg("dest")),
      [this](const CmdLine& cmd, const CallerInfo&) {
        auto dest = net::Address::parse(cmd.get_text("dest"));
        if (!dest)
          return cmdlang::make_error(util::Errc::invalid,
                                     "dest must be host:port");
        std::scoped_lock lock(mu_);
        auto it = sinks_.find(cmd.get_text("stream"));
        if (it != sinks_.end()) std::erase(it->second, *dest);
        return cmdlang::make_ok();
      });

  register_command(
      CommandSpec("distSinks", "list sinks of a stream")
          .arg(string_arg("stream")),
      [this](const CmdLine& cmd, const CallerInfo&) {
        std::vector<std::string> out;
        {
          std::scoped_lock lock(mu_);
          auto it = sinks_.find(cmd.get_text("stream"));
          if (it != sinks_.end())
            for (const auto& a : it->second) out.push_back(a.to_string());
        }
        CmdLine reply = cmdlang::make_ok();
        reply.arg("sinks", cmdlang::string_vector(std::move(out)));
        return reply;
      });

  register_command(
      CommandSpec("distStats", "forwarding statistics"),
      [this](const CmdLine&, const CallerInfo&) {
        DistStats s = dist_stats();
        CmdLine reply = cmdlang::make_ok();
        reply.arg("packets", static_cast<std::int64_t>(s.packets));
        reply.arg("bytes", static_cast<std::int64_t>(s.bytes));
        reply.arg("fanout", static_cast<std::int64_t>(s.fanout));
        return reply;
      });
}

void DistributionDaemon::on_datagram(const net::Datagram& datagram) {
  auto tag = peek_stream_tag(datagram.payload);
  if (!tag) return;
  std::vector<net::Address> sinks;
  {
    std::scoped_lock lock(mu_);
    auto it = sinks_.find(*tag);
    if (it == sinks_.end()) return;
    sinks = it->second;
    stats_.packets++;
    stats_.bytes += datagram.payload.size();
    stats_.fanout += sinks.size();
  }
  for (const net::Address& sink : sinks)
    (void)send_datagram(sink, datagram.payload);
}

DistributionDaemon::DistStats DistributionDaemon::dist_stats() const {
  std::scoped_lock lock(mu_);
  return stats_;
}

}  // namespace ace::services
