#include "services/streaming.hpp"

namespace ace::services {

using cmdlang::CmdLine;
using cmdlang::CommandSpec;
using cmdlang::string_arg;
using cmdlang::Word;
using cmdlang::word_arg;
using daemon::CallerInfo;

namespace {

daemon::DaemonConfig converter_defaults(daemon::DaemonConfig config) {
  if (config.service_class.empty())
    config.service_class = "Service/Stream/Converter";
  return config;
}
daemon::DaemonConfig distribution_defaults(daemon::DaemonConfig config) {
  if (config.service_class.empty())
    config.service_class = "Service/Stream/Distribution";
  return config;
}

const std::vector<std::string> kConversionPairs = {
    "raw_pcm>adpcm", "adpcm>raw_pcm", "raw_video>rle_video",
    "rle_video>raw_video", "raw_pcm>raw_pcm"};

bool conversion_supported(const std::string& from, const std::string& to) {
  for (const std::string& pair : kConversionPairs)
    if (pair == from + ">" + to) return true;
  return false;
}

std::uint32_t rd_u32(util::BytesView data, std::size_t at) {
  return static_cast<std::uint32_t>(data[at]) |
         static_cast<std::uint32_t>(data[at + 1]) << 8 |
         static_cast<std::uint32_t>(data[at + 2]) << 16 |
         static_cast<std::uint32_t>(data[at + 3]) << 24;
}

}  // namespace

util::Bytes MediaPacket::serialize() const {
  util::ByteWriter w;
  w.str(stream);
  w.u32(sequence);
  w.str(format);
  w.blob(payload);
  return w.take();
}

std::optional<MediaPacket> MediaPacket::parse(util::BytesView data) {
  util::ByteReader r(data);
  MediaPacket p;
  auto stream = r.str();
  auto seq = r.u32();
  auto format = r.str();
  auto payload = r.blob();
  if (!stream || !seq || !format || !payload) return std::nullopt;
  p.stream = std::move(*stream);
  p.sequence = *seq;
  p.format = std::move(*format);
  p.payload = std::move(*payload);
  return p;
}

std::optional<MediaPacketView> MediaPacketView::parse(util::BytesView data) {
  // Wire layout (MediaPacket::serialize): u32 tag_len | tag | u32 sequence |
  // u32 fmt_len | fmt | u32 payload_len | payload. Raw offsets, zero copy.
  if (data.size() < 4) return std::nullopt;
  std::size_t tag_len = rd_u32(data, 0);
  std::size_t at = 4 + tag_len;
  if (data.size() < at + 8) return std::nullopt;
  MediaPacketView v;
  v.stream =
      std::string_view(reinterpret_cast<const char*>(data.data()) + 4, tag_len);
  v.sequence = rd_u32(data, at);
  std::size_t fmt_len = rd_u32(data, at + 4);
  at += 8;
  if (data.size() < at + fmt_len + 4) return std::nullopt;
  v.format = std::string_view(reinterpret_cast<const char*>(data.data()) + at,
                              fmt_len);
  std::size_t payload_len = rd_u32(data, at + fmt_len);
  at += fmt_len + 4;
  if (data.size() < at + payload_len) return std::nullopt;
  v.payload = data.subspan(at, payload_len);
  return v;
}

std::optional<std::string> peek_stream_tag(util::BytesView data) {
  auto tag = media::peek_tag(data);
  if (!tag) return std::nullopt;
  return std::string(*tag);
}

// ------------------------------------------------------------------ Converter

ConverterDaemon::ConverterDaemon(daemon::Environment& env,
                                 daemon::DaemonHost& host,
                                 daemon::DaemonConfig config)
    : RoutedMediaDaemon(env, host, converter_defaults(std::move(config))) {
  router().register_stage(
      "convert",
      [this](std::string_view tag, const util::SharedBytes& payload) {
        return convert_stage(tag, payload);
      });
  (void)router().set_stages(media::kCatchAllTag, {"convert"});

  register_command(
      CommandSpec("convRoute", "install a conversion route for a stream")
          .arg(string_arg("stream"))
          .arg(word_arg("from"))
          .arg(word_arg("to"))
          .arg(string_arg("dest")),
      [this](const CmdLine& cmd, const CallerInfo&) {
        std::string from = cmd.get_text("from");
        std::string to = cmd.get_text("to");
        if (!conversion_supported(from, to))
          return cmdlang::make_error(util::Errc::invalid,
                                     "unsupported conversion " + from + ">" +
                                         to);
        auto dest = net::Address::parse(cmd.get_text("dest"));
        if (!dest)
          return cmdlang::make_error(util::Errc::invalid,
                                     "dest must be host:port");
        Route route;
        route.from = from;
        route.to = to;
        route.dest = *dest;
        std::string stream = cmd.get_text("stream");
        {
          std::scoped_lock lock(mu_);
          // The converted stream is delivered through the frame router:
          // retire the previous destination when a route is replaced.
          auto it = routes_.find(stream);
          if (it != routes_.end())
            (void)router().remove_sink(stream, it->second.dest);
          routes_[stream] = std::move(route);
        }
        router().add_sink(stream, *dest);
        return cmdlang::make_ok();
      });

  register_command(
      CommandSpec("convFormats", "list supported conversions"),
      [](const CmdLine&, const CallerInfo&) {
        CmdLine reply = cmdlang::make_ok();
        reply.arg("pairs", cmdlang::string_vector(kConversionPairs));
        return reply;
      });

  register_command(
      CommandSpec("convStats", "per-stream conversion statistics")
          .arg(string_arg("stream")),
      [this](const CmdLine& cmd, const CallerInfo&) {
        auto stats = route_stats(cmd.get_text("stream"));
        if (!stats)
          return cmdlang::make_error(util::Errc::not_found, "no such route");
        CmdLine reply = cmdlang::make_ok();
        reply.arg("packets", static_cast<std::int64_t>(stats->packets));
        reply.arg("in_bytes", static_cast<std::int64_t>(stats->in_bytes));
        reply.arg("out_bytes", static_cast<std::int64_t>(stats->out_bytes));
        return reply;
      });
}

std::optional<util::SharedBytes> ConverterDaemon::convert_stage(
    std::string_view, const util::SharedBytes& payload) {
  auto view = MediaPacketView::parse(payload.view());
  if (!view) return std::nullopt;
  std::scoped_lock lock(mu_);
  auto it = routes_.find(std::string(view->stream));
  if (it == routes_.end()) return std::nullopt;
  Route& route = it->second;
  if (view->format != route.from) return std::nullopt;
  if (route.from == route.to) {
    // Identity conversion: the wire buffer passes through untouched and the
    // router fans it out to the installed destination — no parse, no copy.
    route.stats.packets++;
    route.stats.in_bytes += view->payload.size();
    route.stats.out_bytes += view->payload.size();
    return payload;
  }
  // Codec boundary: decode the payload once and serialize the converted
  // packet once; the router delivers it without further copies.
  auto converted = convert(route, view->payload);
  if (!converted.ok()) return std::nullopt;
  MediaPacket out;
  out.stream = std::string(view->stream);
  out.sequence = view->sequence;
  out.format = route.to;
  out.payload = std::move(converted.value());
  route.stats.packets++;
  route.stats.in_bytes += view->payload.size();
  route.stats.out_bytes += out.payload.size();
  return util::SharedBytes(out.serialize());
}

util::Result<util::Bytes> ConverterDaemon::convert(Route& route,
                                                   util::BytesView payload) {
  const std::string& from = route.from;
  const std::string& to = route.to;

  if (from == "raw_pcm" && to == "adpcm") {
    // payload = i16 little-endian samples
    std::vector<std::int16_t> pcm(payload.size() / 2);
    for (std::size_t i = 0; i < pcm.size(); ++i)
      pcm[i] = static_cast<std::int16_t>(
          static_cast<std::uint16_t>(payload[2 * i]) |
          static_cast<std::uint16_t>(payload[2 * i + 1]) << 8);
    util::ByteWriter w;
    w.u32(static_cast<std::uint32_t>(pcm.size()));
    w.raw(media::adpcm_encode(pcm, route.adpcm_encode_state));
    return w.take();
  }
  if (from == "adpcm" && to == "raw_pcm") {
    util::ByteReader r(payload);
    auto count = r.u32();
    if (!count) return util::Error{util::Errc::parse_error, "bad adpcm"};
    auto rest = r.raw(r.remaining());
    std::vector<std::int16_t> pcm =
        media::adpcm_decode(*rest, *count, route.adpcm_decode_state);
    util::ByteWriter w;
    for (std::int16_t s : pcm) w.i16(s);
    return w.take();
  }
  if (from == "raw_video" && to == "rle_video") {
    util::ByteReader r(payload);
    auto width = r.u32();
    auto height = r.u32();
    if (!width || !height)
      return util::Error{util::Errc::parse_error, "bad video header"};
    auto pixels = r.raw(static_cast<std::size_t>(*width) * *height);
    if (!pixels) return util::Error{util::Errc::parse_error, "short video"};
    media::VideoFrame frame;
    frame.width = static_cast<int>(*width);
    frame.height = static_cast<int>(*height);
    frame.pixels = std::move(*pixels);
    util::Bytes encoded = media::rle_video_encode(
        frame, route.has_reference ? &route.reference : nullptr);
    route.reference = std::move(frame);
    route.has_reference = true;
    return encoded;
  }
  if (from == "rle_video" && to == "raw_video") {
    util::Bytes owned(payload.begin(), payload.end());
    auto frame = media::rle_video_decode(
        owned, route.has_reference ? &route.reference : nullptr);
    if (!frame)
      return util::Error{util::Errc::parse_error, "undecodable rle video"};
    util::ByteWriter w;
    w.u32(static_cast<std::uint32_t>(frame->width));
    w.u32(static_cast<std::uint32_t>(frame->height));
    w.raw(frame->pixels);
    route.reference = std::move(*frame);
    route.has_reference = true;
    return w.take();
  }
  return util::Error{util::Errc::invalid, "unsupported conversion"};
}

std::optional<ConverterDaemon::RouteStats> ConverterDaemon::route_stats(
    const std::string& stream) const {
  std::scoped_lock lock(mu_);
  auto it = routes_.find(stream);
  if (it == routes_.end()) return std::nullopt;
  return it->second.stats;
}

// --------------------------------------------------------------- Distribution

DistributionDaemon::DistributionDaemon(daemon::Environment& env,
                                       daemon::DaemonHost& host,
                                       daemon::DaemonConfig config)
    : RoutedMediaDaemon(env, host, distribution_defaults(std::move(config))) {
  // Pure fan-out: no stages, just per-tag sink sets. The dist* command
  // family is kept as an alias for the router table.
  register_command(
      CommandSpec("distAddSink", "forward a stream to another service")
          .arg(string_arg("stream"))
          .arg(string_arg("dest")),
      [this](const CmdLine& cmd, const CallerInfo&) {
        auto dest = net::Address::parse(cmd.get_text("dest"));
        if (!dest)
          return cmdlang::make_error(util::Errc::invalid,
                                     "dest must be host:port");
        router().add_sink(cmd.get_text("stream"), *dest);
        return cmdlang::make_ok();
      });

  register_command(
      CommandSpec("distRemoveSink", "stop forwarding a stream to dest")
          .arg(string_arg("stream"))
          .arg(string_arg("dest")),
      [this](const CmdLine& cmd, const CallerInfo&) {
        auto dest = net::Address::parse(cmd.get_text("dest"));
        if (!dest)
          return cmdlang::make_error(util::Errc::invalid,
                                     "dest must be host:port");
        (void)router().remove_sink(cmd.get_text("stream"), *dest);
        return cmdlang::make_ok();
      });

  register_command(
      CommandSpec("distSinks", "list sinks of a stream")
          .arg(string_arg("stream")),
      [this](const CmdLine& cmd, const CallerInfo&) {
        std::vector<std::string> out;
        if (auto route = router().lookup(cmd.get_text("stream")))
          for (const auto& a : route->sinks) out.push_back(a.to_string());
        CmdLine reply = cmdlang::make_ok();
        reply.arg("sinks", cmdlang::string_vector(std::move(out)));
        return reply;
      });

  register_command(
      CommandSpec("distStats", "forwarding statistics"),
      [this](const CmdLine&, const CallerInfo&) {
        DistStats s = dist_stats();
        CmdLine reply = cmdlang::make_ok();
        reply.arg("packets", static_cast<std::int64_t>(s.packets));
        reply.arg("bytes", static_cast<std::int64_t>(s.bytes));
        reply.arg("fanout", static_cast<std::int64_t>(s.fanout));
        return reply;
      });
}

DistributionDaemon::DistStats DistributionDaemon::dist_stats() const {
  RouteStats s = route_stats();
  return DistStats{s.frames, s.bytes, s.fanout};
}

}  // namespace ace::services
