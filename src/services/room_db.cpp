#include "services/room_db.hpp"

#include <cmath>

#include "util/strings.hpp"

namespace ace::services {

using cmdlang::CmdLine;
using cmdlang::CommandSpec;
using cmdlang::integer_arg;
using cmdlang::real_arg;
using cmdlang::string_arg;
using cmdlang::Word;
using cmdlang::word_arg;
using daemon::CallerInfo;

namespace {
daemon::DaemonConfig room_db_defaults(daemon::DaemonConfig config) {
  config.register_with_room_db = false;  // it *is* the room database
  if (config.service_class.empty())
    config.service_class = "Service/Database/RoomDatabase";
  return config;
}
}  // namespace

RoomDbDaemon::RoomDbDaemon(daemon::Environment& env, daemon::DaemonHost& host,
                           daemon::DaemonConfig config)
    : ServiceDaemon(env, host, room_db_defaults(std::move(config))) {
  register_command(
      CommandSpec("roomCreate", "create or update a room record")
          .arg(word_arg("room"))
          .arg(string_arg("building").optional_arg())
          .arg(real_arg("width").optional_arg())
          .arg(real_arg("depth").optional_arg())
          .arg(real_arg("height").optional_arg()),
      [this](const CmdLine& cmd, const CallerInfo&) {
        std::scoped_lock lock(mu_);
        RoomInfo& room = rooms_[cmd.get_text("room")];
        room.name = cmd.get_text("room");
        if (cmd.has("building")) room.building = cmd.get_text("building");
        if (cmd.has("width")) room.width = cmd.get_real("width");
        if (cmd.has("depth")) room.depth = cmd.get_real("depth");
        if (cmd.has("height")) room.height = cmd.get_real("height");
        return cmdlang::make_ok();
      });

  register_command(
      CommandSpec("roomAddService", "record a service's room placement")
          .arg(word_arg("room"))
          .arg(word_arg("name"))
          .arg(string_arg("host"))
          .arg(integer_arg("port").range(1, 65535))
          .arg(string_arg("class").optional_arg())
          .arg(real_arg("x").optional_arg())
          .arg(real_arg("y").optional_arg())
          .arg(real_arg("z").optional_arg()),
      [this](const CmdLine& cmd, const CallerInfo&) {
        std::scoped_lock lock(mu_);
        std::string room_name = cmd.get_text("room");
        RoomInfo& room = rooms_[room_name];  // rooms auto-create on first use
        if (room.name.empty()) room.name = room_name;
        PlacedService svc;
        svc.name = cmd.get_text("name");
        svc.host = cmd.get_text("host");
        svc.port = static_cast<std::uint16_t>(cmd.get_integer("port"));
        svc.service_class = cmd.get_text("class");
        if (cmd.has("x") || cmd.has("y") || cmd.has("z")) {
          svc.x = cmd.get_real("x");
          svc.y = cmd.get_real("y");
          svc.z = cmd.get_real("z");
          svc.located = true;
        }
        room.services[svc.name] = std::move(svc);
        return cmdlang::make_ok();
      });

  register_command(
      CommandSpec("roomRemoveService", "remove a service from a room")
          .arg(word_arg("room"))
          .arg(word_arg("name")),
      [this](const CmdLine& cmd, const CallerInfo&) {
        std::scoped_lock lock(mu_);
        auto it = rooms_.find(cmd.get_text("room"));
        if (it != rooms_.end()) it->second.services.erase(cmd.get_text("name"));
        return cmdlang::make_ok();
      });

  register_command(
      CommandSpec("roomSetLocation", "place a service in room coordinates")
          .arg(word_arg("room"))
          .arg(word_arg("name"))
          .arg(real_arg("x"))
          .arg(real_arg("y"))
          .arg(real_arg("z").optional_arg()),
      [this](const CmdLine& cmd, const CallerInfo&) {
        std::scoped_lock lock(mu_);
        auto it = rooms_.find(cmd.get_text("room"));
        if (it == rooms_.end())
          return cmdlang::make_error(util::Errc::not_found, "no such room");
        auto svc = it->second.services.find(cmd.get_text("name"));
        if (svc == it->second.services.end())
          return cmdlang::make_error(util::Errc::not_found,
                                     "service not in room");
        svc->second.x = cmd.get_real("x");
        svc->second.y = cmd.get_real("y");
        svc->second.z = cmd.get_real("z");
        svc->second.located = true;
        return cmdlang::make_ok();
      });

  register_command(
      CommandSpec("roomServices", "list services placed in a room")
          .arg(word_arg("room")),
      [this](const CmdLine& cmd, const CallerInfo&) {
        std::scoped_lock lock(mu_);
        auto it = rooms_.find(cmd.get_text("room"));
        if (it == rooms_.end())
          return cmdlang::make_error(util::Errc::not_found, "no such room");
        std::vector<std::string> entries;
        for (const auto& [name, s] : it->second.services)
          entries.push_back(name + "|" + s.host + ":" +
                            std::to_string(s.port) + "|" + s.service_class);
        CmdLine reply = cmdlang::make_ok();
        reply.arg("services", cmdlang::string_vector(std::move(entries)));
        return reply;
      });

  register_command(
      CommandSpec("roomInfo", "room metadata and dimensions")
          .arg(word_arg("room")),
      [this](const CmdLine& cmd, const CallerInfo&) {
        std::scoped_lock lock(mu_);
        auto it = rooms_.find(cmd.get_text("room"));
        if (it == rooms_.end())
          return cmdlang::make_error(util::Errc::not_found, "no such room");
        const RoomInfo& r = it->second;
        CmdLine reply = cmdlang::make_ok();
        reply.arg("room", Word{r.name});
        reply.arg("building", r.building);
        reply.arg("width", r.width);
        reply.arg("depth", r.depth);
        reply.arg("height", r.height);
        reply.arg("service_count",
                  static_cast<std::int64_t>(r.services.size()));
        return reply;
      });

  register_command(
      CommandSpec("roomOfService", "find which room a service lives in")
          .arg(word_arg("name")),
      [this](const CmdLine& cmd, const CallerInfo&) {
        std::scoped_lock lock(mu_);
        std::string name = cmd.get_text("name");
        for (const auto& [room_name, room] : rooms_) {
          auto it = room.services.find(name);
          if (it != room.services.end()) {
            CmdLine reply = cmdlang::make_ok();
            reply.arg("room", Word{room_name});
            if (it->second.located) {
              reply.arg("x", it->second.x);
              reply.arg("y", it->second.y);
              reply.arg("z", it->second.z);
            }
            return reply;
          }
        }
        return cmdlang::make_error(util::Errc::not_found,
                                   "service not placed in any room");
      });

  // Ch 9 task-automation support ("properly executing the command 'print
  // this out to the nearest printer'"): nearest service of a class to a
  // point in a room, by 3D distance over the room's coordinate frame.
  register_command(
      CommandSpec("roomNearestService",
                  "nearest located service of a class to a point")
          .arg(word_arg("room"))
          .arg(string_arg("class"))
          .arg(real_arg("x"))
          .arg(real_arg("y"))
          .arg(real_arg("z").optional_arg()),
      [this](const CmdLine& cmd, const CallerInfo&) {
        std::scoped_lock lock(mu_);
        auto it = rooms_.find(cmd.get_text("room"));
        if (it == rooms_.end())
          return cmdlang::make_error(util::Errc::not_found, "no such room");
        std::string class_glob = cmd.get_text("class");
        double x = cmd.get_real("x");
        double y = cmd.get_real("y");
        double z = cmd.get_real("z");
        const PlacedService* best = nullptr;
        double best_d2 = 1e300;
        for (const auto& [name, svc] : it->second.services) {
          if (!svc.located) continue;
          if (!util::glob_match(class_glob, svc.service_class)) continue;
          double dx = svc.x - x, dy = svc.y - y, dz = svc.z - z;
          double d2 = dx * dx + dy * dy + dz * dz;
          if (d2 < best_d2) {
            best_d2 = d2;
            best = &svc;
          }
        }
        if (!best)
          return cmdlang::make_error(util::Errc::not_found,
                                     "no located service matches");
        CmdLine reply = cmdlang::make_ok();
        reply.arg("name", Word{best->name});
        reply.arg("host", best->host);
        reply.arg("port", static_cast<std::int64_t>(best->port));
        reply.arg("distance", std::sqrt(best_d2));
        return reply;
      });

  register_command(
      CommandSpec("roomList", "list all known rooms"),
      [this](const CmdLine&, const CallerInfo&) {
        std::scoped_lock lock(mu_);
        std::vector<std::string> names;
        for (const auto& [name, room] : rooms_) names.push_back(name);
        CmdLine reply = cmdlang::make_ok();
        reply.arg("rooms", cmdlang::string_vector(std::move(names)));
        return reply;
      });
}

std::optional<RoomDbDaemon::RoomInfo> RoomDbDaemon::room(
    const std::string& name) const {
  std::scoped_lock lock(mu_);
  auto it = rooms_.find(name);
  if (it == rooms_.end()) return std::nullopt;
  return it->second;
}

std::size_t RoomDbDaemon::room_count() const {
  std::scoped_lock lock(mu_);
  return rooms_.size();
}

}  // namespace ace::services
