#include "services/auth_db.hpp"

#include "keynote/expr.hpp"

namespace ace::services {

using cmdlang::CmdLine;
using cmdlang::CommandSpec;
using cmdlang::string_arg;
using daemon::CallerInfo;

namespace {
daemon::DaemonConfig auth_db_defaults(daemon::DaemonConfig config) {
  if (config.service_class.empty())
    config.service_class = "Service/Database/AuthorizationDatabase";
  // The authorization database cannot gate its own reads on itself.
  config.enforce_authorization = false;
  return config;
}
}  // namespace

AuthDbDaemon::AuthDbDaemon(daemon::Environment& env, daemon::DaemonHost& host,
                           daemon::DaemonConfig config)
    : ServiceDaemon(env, host, auth_db_defaults(std::move(config))) {
  register_command(
      CommandSpec("credAdd", "store a credential assertion for a principal")
          .arg(string_arg("principal"))
          .arg(string_arg("assertion")),
      [this](const CmdLine& cmd, const CallerInfo&) {
        auto parsed = keynote::Assertion::parse(cmd.get_text("assertion"));
        if (!parsed.ok())
          return cmdlang::make_error(parsed.error().code,
                                     parsed.error().message);
        if (auto s = add_credential(cmd.get_text("principal"),
                                    parsed.value());
            !s.ok())
          return cmdlang::make_error(s.error().code, s.error().message);
        return cmdlang::make_ok();
      });

  register_command(
      CommandSpec("credRemove", "drop all credentials of a principal")
          .arg(string_arg("principal")),
      [this](const CmdLine& cmd, const CallerInfo&) {
        std::scoped_lock lock(mu_);
        credentials_.erase(cmd.get_text("principal"));
        return cmdlang::make_ok();
      });

  register_command(
      CommandSpec("getCredentials",
                  "fetch the credential assertions for a principal")
          .arg(string_arg("principal")),
      [this](const CmdLine& cmd, const CallerInfo&) {
        CmdLine reply = cmdlang::make_ok();
        std::scoped_lock lock(mu_);
        auto it = credentials_.find(cmd.get_text("principal"));
        std::vector<std::string> creds =
            it == credentials_.end() ? std::vector<std::string>{}
                                     : it->second;
        reply.arg("credentials", cmdlang::string_vector(std::move(creds)));
        return reply;
      });

  register_command(CommandSpec("credCount", "total stored credentials"),
                   [this](const CmdLine&, const CallerInfo&) {
                     CmdLine reply = cmdlang::make_ok();
                     reply.arg("count", static_cast<std::int64_t>(
                                            credential_count()));
                     return reply;
                   });
}

util::Status AuthDbDaemon::add_credential(const std::string& principal,
                                          const keynote::Assertion& a) {
  if (a.is_policy())
    return {util::Errc::invalid, "POLICY assertions are not credentials"};
  if (auto s = keynote::ConditionEvaluator::check_syntax(a.conditions);
      !s.ok())
    return s;
  if (!env().keys().verify(a))
    return {util::Errc::auth_error, "credential signature invalid"};
  std::scoped_lock lock(mu_);
  credentials_[principal].push_back(a.serialize());
  return util::Status::ok_status();
}

std::size_t AuthDbDaemon::credential_count() const {
  std::scoped_lock lock(mu_);
  std::size_t n = 0;
  for (const auto& [p, v] : credentials_) n += v.size();
  return n;
}

util::Status grant_credential(daemon::AceClient& client,
                              const net::Address& auth_db,
                              daemon::Environment& env,
                              const std::string& authorizer,
                              const std::string& licensee,
                              const std::string& conditions,
                              const std::string& comment) {
  keynote::Assertion a;
  a.authorizer = authorizer;
  a.licensees = keynote::licensee_key(licensee);
  a.conditions = conditions;
  a.comment = comment;
  if (auto s = env.keys().sign(a); !s.ok()) return s;
  CmdLine cmd("credAdd");
  cmd.arg("principal", licensee);
  cmd.arg("assertion", a.serialize());
  auto reply = client.call(auth_db, cmd, daemon::kCallOk);
  if (!reply.ok()) return reply.error();
  return util::Status::ok_status();
}

}  // namespace ace::services
