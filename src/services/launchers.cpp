#include "services/launchers.hpp"

#include "services/asd.hpp"

namespace ace::services {

using cmdlang::CmdLine;
using cmdlang::CommandSpec;
using cmdlang::integer_arg;
using cmdlang::real_arg;
using cmdlang::string_arg;
using cmdlang::Word;
using cmdlang::word_arg;
using daemon::CallerInfo;

namespace {
daemon::DaemonConfig hal_defaults(daemon::DaemonConfig config) {
  if (config.service_class.empty())
    config.service_class = "Service/Launcher/HAL";
  return config;
}
daemon::DaemonConfig sal_defaults(daemon::DaemonConfig config) {
  if (config.service_class.empty())
    config.service_class = "Service/Launcher/SAL";
  return config;
}
}  // namespace

HalDaemon::HalDaemon(daemon::Environment& env, daemon::DaemonHost& host,
                     daemon::DaemonConfig config)
    : ServiceDaemon(env, host, hal_defaults(std::move(config))) {
  register_command(
      CommandSpec("halLaunch", "run an application on this host")
          .arg(string_arg("command"))
          .arg(real_arg("cpu").optional_arg().range_real(0.0, 16.0))
          .arg(integer_arg("mem").optional_arg()),
      [this](const CmdLine& cmd, const CallerInfo&) {
        int pid = this->host().launch_process(
            cmd.get_text("command"), cmd.get_real("cpu", 0.1),
            static_cast<std::uint64_t>(cmd.get_integer("mem", 1024)));
        CmdLine reply = cmdlang::make_ok();
        reply.arg("pid", static_cast<std::int64_t>(pid));
        reply.arg("host", this->host().name());
        return reply;
      });

  register_command(
      CommandSpec("halKill", "terminate a launched application")
          .arg(integer_arg("pid")),
      [this](const CmdLine& cmd, const CallerInfo&) {
        if (!this->host().kill_process(
                static_cast<int>(cmd.get_integer("pid"))))
          return cmdlang::make_error(util::Errc::not_found,
                                     "no such running process");
        return cmdlang::make_ok();
      });

  register_command(
      CommandSpec("halRunning", "is a pid still running?")
          .arg(integer_arg("pid")),
      [this](const CmdLine& cmd, const CallerInfo&) {
        CmdLine reply = cmdlang::make_ok();
        reply.arg("running",
                  Word{this->host().process_running(
                           static_cast<int>(cmd.get_integer("pid")))
                           ? "yes"
                           : "no"});
        return reply;
      });

  register_command(
      CommandSpec("halList", "list processes on this host"),
      [this](const CmdLine&, const CallerInfo&) {
        std::vector<std::string> rows;
        for (const daemon::ProcessInfo& p : this->host().processes()) {
          if (!p.running) continue;
          rows.push_back(std::to_string(p.pid) + "|" + p.command);
        }
        CmdLine reply = cmdlang::make_ok();
        reply.arg("processes", cmdlang::string_vector(std::move(rows)));
        return reply;
      });

  register_command(
      CommandSpec("halLaunchService",
                  "start a registered launchable service on this host")
          .arg(word_arg("name")),
      [this](const CmdLine& cmd, const CallerInfo&) {
        ServiceLauncher launcher;
        {
          std::scoped_lock lock(mu_);
          auto it = launchables_.find(cmd.get_text("name"));
          if (it == launchables_.end())
            return cmdlang::make_error(util::Errc::not_found,
                                       "no such launchable service");
          launcher = it->second;
        }
        if (auto s = launcher(); !s.ok())
          return cmdlang::make_error(s.error().code, s.error().message);
        CmdLine reply = cmdlang::make_ok();
        reply.arg("host", this->host().name());
        return reply;
      });
}

void HalDaemon::register_launchable(const std::string& name,
                                    ServiceLauncher launcher) {
  std::scoped_lock lock(mu_);
  launchables_[name] = std::move(launcher);
}

// ---------------------------------------------------------------------- SAL

SalDaemon::SalDaemon(daemon::Environment& env, daemon::DaemonHost& host,
                     daemon::DaemonConfig config)
    : ServiceDaemon(env, host, sal_defaults(std::move(config))) {
  register_command(
      CommandSpec("salLaunch", "launch an application somewhere in the ACE")
          .arg(string_arg("command"))
          .arg(real_arg("cpu").optional_arg().range_real(0.0, 16.0))
          .arg(integer_arg("mem").optional_arg())
          .arg(word_arg("policy")
                   .optional_arg()
                   .choices({"least_loaded", "random", "first"}))
          .arg(string_arg("host").optional_arg()),
      [this](const CmdLine& cmd, const CallerInfo&) {
        std::string target = cmd.get_text("host");
        if (target.empty()) {
          auto chosen =
              choose_host(cmd.get_real("cpu", 0.1), cmd.get_integer("mem", 0),
                          cmd.get_text("policy", "least_loaded"));
          if (!chosen.ok())
            return cmdlang::make_error(chosen.error().code,
                                       chosen.error().message);
          target = chosen.value();
        }
        auto hal = hal_on(target);
        if (!hal.ok())
          return cmdlang::make_error(hal.error().code, hal.error().message);
        CmdLine launch("halLaunch");
        launch.arg("command", cmd.get_text("command"));
        launch.arg("cpu", cmd.get_real("cpu", 0.1));
        launch.arg("mem", cmd.get_integer("mem", 1024));
        auto reply = control_client().call(hal.value(), launch, daemon::kCallOk);
        if (!reply.ok())
          return cmdlang::make_error(reply.error().code,
                                     reply.error().message);
        CmdLine out = cmdlang::make_ok();
        out.arg("host", target);
        out.arg("pid", reply->get_integer("pid"));
        return out;
      });

  register_command(
      CommandSpec("salLaunchService",
                  "start a launchable service, optionally on a given host")
          .arg(word_arg("name"))
          .arg(string_arg("host").optional_arg()),
      [this](const CmdLine& cmd, const CallerInfo&) {
        std::string target = cmd.get_text("host");
        if (target.empty()) {
          auto chosen = choose_host(0.1, 0, "least_loaded");
          if (!chosen.ok())
            return cmdlang::make_error(chosen.error().code,
                                       chosen.error().message);
          target = chosen.value();
        }
        auto hal = hal_on(target);
        if (!hal.ok())
          return cmdlang::make_error(hal.error().code, hal.error().message);
        CmdLine launch("halLaunchService");
        launch.arg("name", Word{cmd.get_text("name")});
        auto reply = control_client().call(hal.value(), launch, daemon::kCallOk);
        if (!reply.ok())
          return cmdlang::make_error(reply.error().code,
                                     reply.error().message);
        CmdLine out = cmdlang::make_ok();
        out.arg("host", target);
        return out;
      });
}

util::Result<net::Address> SalDaemon::hal_on(const std::string& host_name) {
  auto hals = AsdClient(control_client(), env().asd_address).query("*", "Service/Launcher/HAL*", "*");
  if (!hals.ok()) return hals.error();
  for (const ServiceLocation& loc : hals.value())
    if (loc.address.host == host_name) return loc.address;
  return util::Error{util::Errc::not_found,
                     "no HAL on host '" + host_name + "'"};
}

util::Result<std::string> SalDaemon::choose_host(double cpu, std::int64_t mem,
                                                 const std::string& policy) {
  // Preferred path: ask the SRM (Fig 11).
  auto srms = AsdClient(control_client(), env().asd_address).query("*", "Service/Monitor/SRM*", "*");
  if (srms.ok() && !srms->empty()) {
    CmdLine pick("srmPickHost");
    pick.arg("cpu", cpu);
    pick.arg("mem", mem);
    pick.arg("policy", Word{policy});
    auto reply = control_client().call(srms->front().address, pick, daemon::kCallOk);
    if (reply.ok()) return reply->get_text("host");
  }
  // Fallback: any host that runs a HAL.
  auto hals = AsdClient(control_client(), env().asd_address).query("*", "Service/Launcher/HAL*", "*");
  if (!hals.ok()) return hals.error();
  if (hals->empty())
    return util::Error{util::Errc::unavailable, "no HALs registered"};
  return hals->front().address.host;
}

}  // namespace ace::services
