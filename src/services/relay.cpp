#include "services/relay.hpp"

#include <algorithm>

#include "cmdlang/parser.hpp"

namespace ace::services {

using cmdlang::CmdLine;
using cmdlang::CommandSpec;
using cmdlang::integer_arg;
using cmdlang::string_arg;
using cmdlang::Word;
using cmdlang::word_arg;
using daemon::CallerInfo;
using daemon::CallOptions;

namespace {
daemon::DaemonConfig relay_defaults(daemon::DaemonConfig config) {
  // Rendezvous infrastructure: rooms behind bad links must find it without
  // a directory, so it lives on a well-known socket and self-registers
  // nowhere.
  config.register_with_asd = false;
  if (config.service_class.empty()) config.service_class = "Service/Relay";
  return config;
}
}  // namespace

RelayDaemon::RelayDaemon(daemon::Environment& env, daemon::DaemonHost& host,
                         daemon::DaemonConfig config, RelayOptions options)
    : ServiceDaemon(env, host, relay_defaults(std::move(config))),
      options_(options),
      obs_frames_(&env.metrics().counter("asd.relay_frames")),
      obs_registrations_(&env.metrics().counter("asd.relay_registrations")),
      obs_misses_(&env.metrics().counter("asd.relay_misses")),
      obs_rooms_(&env.metrics().gauge("asd.relay_rooms")) {
  register_command(
      CommandSpec("relayRegister",
                  "register a room ASD for tunneled reachability")
          .arg(word_arg("room"))
          .arg(string_arg("host"))
          .arg(integer_arg("port").range(1, 65535))
          .arg(integer_arg("lease").optional_arg())
          .concurrent_ok(),
      [this](const CmdLine& cmd, const CallerInfo&) {
        auto requested = std::chrono::milliseconds(
            cmd.get_integer("lease", options_.max_lease.count()));
        auto lease =
            std::clamp(requested, options_.min_lease, options_.max_lease);
        RoomEntry entry;
        entry.address = {cmd.get_text("host"),
                         static_cast<std::uint16_t>(cmd.get_integer("port"))};
        entry.expires = std::chrono::steady_clock::now() + lease;
        {
          std::scoped_lock lock(mu_);
          rooms_[cmd.get_text("room")] = entry;
          obs_rooms_->set(static_cast<std::int64_t>(rooms_.size()));
        }
        obs_registrations_->inc();
        CmdLine reply = cmdlang::make_ok();
        reply.arg("lease", static_cast<std::int64_t>(lease.count()));
        return reply;
      });

  // concurrent_ok: the tunneled room-side RPC runs nested on this
  // connection's ops strand, so one slow room never convoys the relay.
  register_command(
      CommandSpec("relayForward", "tunnel a command to a registered room ASD")
          .arg(word_arg("room"))
          .arg(string_arg("cmd"))
          .concurrent_ok(),
      [this](const CmdLine& cmd, const CallerInfo&) {
        const std::string room = cmd.get_text("room");
        std::optional<net::Address> target;
        {
          std::scoped_lock lock(mu_);
          target = live_room_locked(room, std::chrono::steady_clock::now());
        }
        if (!target) {
          obs_misses_->inc();
          return cmdlang::make_error(
              util::Errc::not_found,
              "room '" + room + "' is not registered with this relay");
        }
        auto inner = cmdlang::Parser::parse(cmd.get_text("cmd"));
        if (!inner.ok())
          return cmdlang::make_error(util::Errc::parse_error,
                                     "unparseable tunneled command");
        obs_frames_->inc();
        auto reply = control_client().call(
            *target, inner.value(),
            CallOptions{.timeout = options_.forward_timeout});
        if (!reply.ok())
          return cmdlang::make_error(
              util::Errc::unavailable,
              "room '" + room + "' unreachable through relay: " +
                  reply.error().to_string());
        // Tunnel transparency: the room's reply — ok or error — rides
        // inside the outer ok, re-serialized verbatim.
        CmdLine out = cmdlang::make_ok();
        out.arg("reply", reply->to_string());
        return out;
      });

  register_command(
      CommandSpec("relayRooms", "list rooms registered with this relay")
          .concurrent_ok(),
      [this](const CmdLine&, const CallerInfo&) {
        auto now = std::chrono::steady_clock::now();
        std::vector<std::string> entries;
        {
          std::scoped_lock lock(mu_);
          std::erase_if(rooms_, [&](const auto& kv) {
            return kv.second.expires <= now;
          });
          obs_rooms_->set(static_cast<std::int64_t>(rooms_.size()));
          for (const auto& [room, entry] : rooms_) {
            auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                entry.expires - now);
            entries.push_back(room + "|" + entry.address.to_string() + "|" +
                              std::to_string(left.count()));
          }
        }
        CmdLine reply = cmdlang::make_ok();
        reply.arg("rooms", cmdlang::string_vector(std::move(entries)));
        return reply;
      });
}

std::size_t RelayDaemon::room_count() const {
  auto now = std::chrono::steady_clock::now();
  std::scoped_lock lock(mu_);
  return static_cast<std::size_t>(
      std::count_if(rooms_.begin(), rooms_.end(),
                    [&](const auto& kv) { return kv.second.expires > now; }));
}

void RelayDaemon::on_crash() {
  std::scoped_lock lock(mu_);
  rooms_.clear();
  obs_rooms_->set(0);
}

std::optional<net::Address> RelayDaemon::live_room_locked(
    const std::string& room, std::chrono::steady_clock::time_point now) {
  auto it = rooms_.find(room);
  if (it == rooms_.end()) return std::nullopt;
  if (it->second.expires <= now) {
    rooms_.erase(it);
    obs_rooms_->set(static_cast<std::int64_t>(rooms_.size()));
    return std::nullopt;
  }
  return it->second.address;
}

}  // namespace ace::services
