// Converter and Distribution services (paper §4.12/§4.13, Figs 13-14) — the
// low-level data-movement services that media pipelines are assembled from.
//
// Both operate on their daemon data channels. Every media datagram starts
// with a length-prefixed stream tag (AudioFrame and MediaPacket share this
// prefix), so the Distribution service can fan out any packet kind without
// understanding it, exactly as Fig 14 depicts.
//
// Converter commands:
//   convRoute stream= from= to= dest=;    (install a conversion route)
//   convFormats;                          -> ok pairs={...}
//   convStats stream=;                    -> ok in_bytes= out_bytes= packets=
// Distribution commands:
//   distAddSink stream= dest=;
//   distRemoveSink stream= dest=;
//   distSinks stream=;                    -> ok sinks={...}
//   distStats;                            -> ok packets= bytes=
#pragma once

#include <map>

#include "daemon/daemon.hpp"
#include "media/codec.hpp"

namespace ace::services {

// Generic media packet: stream tag + sequence + format + payload.
struct MediaPacket {
  std::string stream;
  std::uint32_t sequence = 0;
  std::string format;  // "raw_pcm", "adpcm", "raw_video", "rle_video"
  util::Bytes payload;

  util::Bytes serialize() const;
  static std::optional<MediaPacket> parse(const util::Bytes& data);
};

// Reads only the leading stream tag of any media datagram.
std::optional<std::string> peek_stream_tag(const util::Bytes& data);

class ConverterDaemon : public daemon::ServiceDaemon {
 public:
  ConverterDaemon(daemon::Environment& env, daemon::DaemonHost& host,
                  daemon::DaemonConfig config);

  struct RouteStats {
    std::uint64_t packets = 0;
    std::uint64_t in_bytes = 0;
    std::uint64_t out_bytes = 0;
  };
  std::optional<RouteStats> route_stats(const std::string& stream) const;

 protected:
  void on_datagram(const net::Datagram& datagram) override;

 private:
  struct Route {
    std::string from;
    std::string to;
    net::Address dest;
    media::AdpcmState adpcm_encode_state;
    media::AdpcmState adpcm_decode_state;
    media::VideoFrame reference;  // inter-frame coding state
    bool has_reference = false;
    RouteStats stats;
  };

  util::Result<util::Bytes> convert(Route& route, const util::Bytes& payload);

  mutable std::mutex mu_;
  std::map<std::string, Route> routes_;  // keyed by stream tag
};

class DistributionDaemon : public daemon::ServiceDaemon {
 public:
  DistributionDaemon(daemon::Environment& env, daemon::DaemonHost& host,
                     daemon::DaemonConfig config);

  struct DistStats {
    std::uint64_t packets = 0;
    std::uint64_t bytes = 0;
    std::uint64_t fanout = 0;  // total forwarded copies
  };
  DistStats dist_stats() const;

 protected:
  void on_datagram(const net::Datagram& datagram) override;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::vector<net::Address>> sinks_;
  DistStats stats_;
};

}  // namespace ace::services
