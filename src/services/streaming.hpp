// Converter and Distribution services (paper §4.12/§4.13, Figs 13-14) — the
// low-level data-movement services that media pipelines are assembled from.
//
// Both are RoutedMediaDaemons: every media datagram starts with a
// length-prefixed stream tag (AudioFrame and MediaPacket share this prefix),
// so dispatch is an O(1) tag peek plus a FrameRouter lookup. Distribution is
// a pure zero-copy fan-out (no stages — N views of one shared buffer, as
// Fig 14 depicts); the Converter installs a "convert" stage that parses the
// MediaPacket in place and pays a decode/re-encode only when the route
// actually crosses a codec boundary.
//
// Converter commands:
//   convRoute stream= from= to= dest=;    (install a conversion route)
//   convFormats;                          -> ok pairs={...}
//   convStats stream=;                    -> ok in_bytes= out_bytes= packets=
// Distribution commands:
//   distAddSink stream= dest=;
//   distRemoveSink stream= dest=;
//   distSinks stream=;                    -> ok sinks={...}
//   distStats;                            -> ok packets= bytes=
// plus the route* family both inherit from RoutedMediaDaemon.
#pragma once

#include <map>

#include "media/codec.hpp"
#include "media/router.hpp"

namespace ace::services {

// Generic media packet: stream tag + sequence + format + payload.
struct MediaPacket {
  std::string stream;
  std::uint32_t sequence = 0;
  std::string format;  // "raw_pcm", "adpcm", "raw_video", "rle_video"
  util::Bytes payload;

  util::Bytes serialize() const;
  static std::optional<MediaPacket> parse(util::BytesView data);
};

// Zero-copy decode of a serialized MediaPacket: header fields as views into
// the wire buffer, payload as a borrowed span. Keep the owning buffer alive
// while the view is used.
struct MediaPacketView {
  std::string_view stream;
  std::uint32_t sequence = 0;
  std::string_view format;
  util::BytesView payload;

  static std::optional<MediaPacketView> parse(util::BytesView data);
};

// Reads only the leading stream tag of any media datagram.
std::optional<std::string> peek_stream_tag(util::BytesView data);

class ConverterDaemon : public media::RoutedMediaDaemon {
 public:
  ConverterDaemon(daemon::Environment& env, daemon::DaemonHost& host,
                  daemon::DaemonConfig config);

  struct RouteStats {
    std::uint64_t packets = 0;
    std::uint64_t in_bytes = 0;
    std::uint64_t out_bytes = 0;
  };
  std::optional<RouteStats> route_stats(const std::string& stream) const;

 private:
  struct Route {
    std::string from;
    std::string to;
    net::Address dest;
    media::AdpcmState adpcm_encode_state;
    media::AdpcmState adpcm_decode_state;
    media::VideoFrame reference;  // inter-frame coding state
    bool has_reference = false;
    RouteStats stats;
  };

  // The "convert" stage: identity routes pass the wire buffer through
  // untouched (zero-copy); codec routes decode once and re-serialize once.
  std::optional<util::SharedBytes> convert_stage(
      std::string_view tag, const util::SharedBytes& payload);
  util::Result<util::Bytes> convert(Route& route, util::BytesView payload);

  mutable std::mutex mu_;
  std::map<std::string, Route> routes_;  // keyed by stream tag
};

class DistributionDaemon : public media::RoutedMediaDaemon {
 public:
  DistributionDaemon(daemon::Environment& env, daemon::DaemonHost& host,
                     daemon::DaemonConfig config);

  struct DistStats {
    std::uint64_t packets = 0;
    std::uint64_t bytes = 0;
    std::uint64_t fanout = 0;  // total forwarded copies
  };
  DistStats dist_stats() const;
};

}  // namespace ace::services
