// AUD — ACE User Database service (paper §4.7): "an ACE interface to a
// database of valid ACE users and their pertinent information ... username,
// password, full name, identification number (e.g. iButton #, fingerprint
// scan data, etc), and public key", plus the user's current location (kept
// up to date by the ID Monitor, Scenario 2).
//
// Command set:
//   userAdd username= fullname=? password=? ibutton=? fingerprint=? pubkey=?;
//   userUpdate username= <same optional fields>;
//   userGet username=;
//   userRemove username=;
//   userExists username=;                       -> ok exists=yes|no
//   userSetLocation username= room= station=?;
//   userByIButton serial=;                      -> ok username= ...
//   userByFingerprint template=;                -> ok username= ...
//   userCheckPassword username= password=;      -> ok valid=yes|no
//   userList;                                   -> ok users={...}
#pragma once

#include <map>

#include "daemon/daemon.hpp"

namespace ace::services {

class UserDbDaemon : public daemon::ServiceDaemon {
 public:
  struct UserRecord {
    std::string username;
    std::string fullname;
    util::Bytes password_hash;  // salted SHA-256
    util::Bytes password_salt;
    std::string ibutton_serial;
    std::string fingerprint_template;  // template id at the FIU
    std::string public_key;
    std::string location_room;
    std::string location_station;  // access point (host) last seen at
  };

  UserDbDaemon(daemon::Environment& env, daemon::DaemonHost& host,
               daemon::DaemonConfig config);

  std::optional<UserRecord> user(const std::string& username) const;
  std::size_t user_count() const;

 private:
  static cmdlang::CmdLine encode_user(const UserRecord& u);
  void apply_fields(UserRecord& u, const cmdlang::CmdLine& cmd);

  mutable std::mutex mu_;
  std::map<std::string, UserRecord> users_;
  util::Rng salt_rng_;
};

}  // namespace ace::services
