#include "services/workspace.hpp"

#include "services/asd.hpp"

namespace ace::services {

using cmdlang::CmdLine;
using cmdlang::CommandSpec;
using cmdlang::string_arg;
using cmdlang::Word;
using cmdlang::word_arg;
using daemon::CallerInfo;

namespace {
daemon::DaemonConfig wss_defaults(daemon::DaemonConfig config) {
  if (config.service_class.empty())
    config.service_class = "Service/WorkspaceServer";
  return config;
}
}  // namespace

WssDaemon::WssDaemon(daemon::Environment& env, daemon::DaemonHost& host,
                     daemon::DaemonConfig config)
    : ServiceDaemon(env, host, wss_defaults(std::move(config))) {
  backend_ = default_backend();

  register_command(
      CommandSpec("wssCreate", "create a workspace for a user")
          .arg(word_arg("owner"))
          .arg(word_arg("name").optional_arg()),
      [this](const CmdLine& cmd, const CallerInfo&) {
        return do_create(cmd.get_text("owner"),
                         cmd.get_text("name", "default"));
      });

  // Scenario 1: the default workspace is created for every new user so
  // that "he/she may have at least one valid and working workspace".
  register_command(
      CommandSpec("wssDefault", "get or create the user's default workspace")
          .arg(word_arg("owner")),
      [this](const CmdLine& cmd, const CallerInfo&) {
        std::string owner = cmd.get_text("owner");
        {
          std::scoped_lock lock(mu_);
          auto it = workspaces_.find(owner + "/default");
          if (it != workspaces_.end()) {
            CmdLine reply = cmdlang::make_ok();
            reply.arg("workspace", it->second.id);
            reply.arg("host", it->second.server.host);
            reply.arg("port",
                      static_cast<std::int64_t>(it->second.server.port));
            return reply;
          }
        }
        return do_create(owner, "default");
      });

  register_command(
      CommandSpec("wssList", "list a user's workspaces")
          .arg(word_arg("owner")),
      [this](const CmdLine& cmd, const CallerInfo&) {
        std::string owner = cmd.get_text("owner");
        std::vector<std::string> ids;
        {
          std::scoped_lock lock(mu_);
          for (const auto& [id, w] : workspaces_)
            if (w.owner == owner) ids.push_back(id);
        }
        CmdLine reply = cmdlang::make_ok();
        reply.arg("workspaces", cmdlang::string_vector(std::move(ids)));
        return reply;
      });

  // Scenario 3: bring the user's workspace up at the current access point.
  register_command(
      CommandSpec("wssShow", "open a viewer of the workspace at `location`")
          .arg(string_arg("workspace"))
          .arg(string_arg("location")),
      [this](const CmdLine& cmd, const CallerInfo&) {
        WorkspaceRecord record;
        {
          std::scoped_lock lock(mu_);
          auto it = workspaces_.find(cmd.get_text("workspace"));
          if (it == workspaces_.end())
            return cmdlang::make_error(util::Errc::not_found,
                                       "no such workspace");
          record = it->second;
        }
        std::string location = cmd.get_text("location");
        if (auto s = backend_.show(record.server, location, record.owner);
            !s.ok())
          return cmdlang::make_error(s.error().code, s.error().message);
        {
          std::scoped_lock lock(mu_);
          auto it = workspaces_.find(record.id);
          if (it != workspaces_.end()) it->second.shown_at = location;
        }
        CmdLine reply = cmdlang::make_ok();
        reply.arg("workspace", record.id);
        reply.arg("host", record.server.host);
        reply.arg("port", static_cast<std::int64_t>(record.server.port));
        return reply;
      });

  register_command(
      CommandSpec("wssRemove", "destroy a workspace")
          .arg(string_arg("workspace")),
      [this](const CmdLine& cmd, const CallerInfo&) {
        WorkspaceRecord record;
        {
          std::scoped_lock lock(mu_);
          auto it = workspaces_.find(cmd.get_text("workspace"));
          if (it == workspaces_.end())
            return cmdlang::make_error(util::Errc::not_found,
                                       "no such workspace");
          record = it->second;
          workspaces_.erase(it);
        }
        if (backend_.destroy) backend_.destroy(record.server);
        return cmdlang::make_ok();
      });
}

cmdlang::CmdLine WssDaemon::do_create(const std::string& owner,
                                      const std::string& name) {
  std::string id = owner + "/" + name;
  {
    std::scoped_lock lock(mu_);
    if (workspaces_.contains(id))
      return cmdlang::make_error(util::Errc::conflict,
                                 "workspace already exists");
  }
  auto server = backend_.create(owner, name);
  if (!server.ok())
    return cmdlang::make_error(server.error().code, server.error().message);
  WorkspaceRecord record;
  record.id = id;
  record.owner = owner;
  record.name = name;
  record.server = server.value();
  {
    std::scoped_lock lock(mu_);
    workspaces_[id] = record;
  }
  CmdLine reply = cmdlang::make_ok();
  reply.arg("workspace", id);
  reply.arg("host", record.server.host);
  reply.arg("port", static_cast<std::int64_t>(record.server.port));
  return reply;
}

WorkspaceBackend WssDaemon::default_backend() {
  // Default: model workspace servers/viewers as SAL-launched processes
  // (Fig 18's "VNC session ... started somewhere" without the real
  // framebuffer; src/apps replaces this with the full implementation).
  WorkspaceBackend backend;
  backend.create = [this](const std::string& owner,
                          const std::string& name)
      -> util::Result<net::Address> {
    auto sals = AsdClient(control_client(), env().asd_address).query("*", "Service/Launcher/SAL*", "*");
    if (!sals.ok()) return sals.error();
    if (sals->empty())
      return util::Error{util::Errc::unavailable, "no SAL registered"};
    CmdLine launch("salLaunch");
    launch.arg("command", "vncserver:" + owner + "/" + name);
    launch.arg("cpu", 0.2);
    launch.arg("mem", 32 * 1024);
    auto reply = control_client().call(sals->front().address, launch, daemon::kCallOk);
    if (!reply.ok()) return reply.error();
    return net::Address{reply->get_text("host"),
                        static_cast<std::uint16_t>(
                            reply->get_integer("pid", 1) % 65535)};
  };
  backend.show = [this](const net::Address& server,
                        const std::string& location,
                        const std::string& owner) -> util::Status {
    auto sals = AsdClient(control_client(), env().asd_address).query("*", "Service/Launcher/SAL*", "*");
    if (!sals.ok()) return sals.error();
    if (sals->empty())
      return {util::Errc::unavailable, "no SAL registered"};
    CmdLine launch("salLaunch");
    launch.arg("command",
               "vncviewer:" + owner + "@" + server.to_string());
    launch.arg("cpu", 0.05);
    launch.arg("mem", 8 * 1024);
    launch.arg("host", location);
    auto reply = control_client().call(sals->front().address, launch, daemon::kCallOk);
    if (!reply.ok()) return reply.error();
    return util::Status::ok_status();
  };
  backend.destroy = nullptr;
  return backend;
}

void WssDaemon::set_backend(WorkspaceBackend backend) {
  std::scoped_lock lock(mu_);
  backend_ = std::move(backend);
}

std::optional<WssDaemon::WorkspaceRecord> WssDaemon::workspace(
    const std::string& id) const {
  std::scoped_lock lock(mu_);
  auto it = workspaces_.find(id);
  if (it == workspaces_.end()) return std::nullopt;
  return it->second;
}

std::size_t WssDaemon::workspace_count() const {
  std::scoped_lock lock(mu_);
  return workspaces_.size();
}

}  // namespace ace::services
