#include "services/net_logger.hpp"

#include "util/strings.hpp"

namespace ace::services {

using cmdlang::CmdLine;
using cmdlang::CommandSpec;
using cmdlang::integer_arg;
using cmdlang::string_arg;
using cmdlang::Word;
using cmdlang::word_arg;
using daemon::CallerInfo;

namespace {
daemon::DaemonConfig logger_defaults(daemon::DaemonConfig config) {
  config.log_to_net_logger = false;  // it *is* the logger
  if (config.service_class.empty())
    config.service_class = "Service/NetworkLogger";
  return config;
}
}  // namespace

NetLoggerDaemon::NetLoggerDaemon(daemon::Environment& env,
                                 daemon::DaemonHost& host,
                                 daemon::DaemonConfig config,
                                 NetLoggerOptions options)
    : ServiceDaemon(env, host, logger_defaults(std::move(config))),
      options_(options) {
  register_command(
      CommandSpec("log", "append a log entry")
          .arg(string_arg("source"))
          .arg(word_arg("level").choices({"debug", "info", "warn", "error",
                                          "security"}))
          .arg(string_arg("message")),
      [this](const CmdLine& cmd, const CallerInfo&) {
        Entry e;
        e.source = cmd.get_text("source");
        e.level = cmd.get_text("level");
        e.message = cmd.get_text("message");
        e.at = std::chrono::steady_clock::now();
        bool alert = false;
        {
          std::scoped_lock lock(mu_);
          e.id = next_id_++;
          entries_.push_back(e);
          while (entries_.size() > options_.max_entries)
            entries_.pop_front();
          // §4.14's example: repeated invalid-identification attempts from
          // the same source should draw administrator attention.
          if (e.level == "security") {
            if (++auth_failures_[e.source] >= options_.alert_threshold) {
              auth_failures_[e.source] = 0;
              alerts_++;
              alert = true;
            }
          }
        }
        if (alert) {
          CmdLine event("securityAlert");
          event.arg("source", e.source);
          event.arg("message", e.message);
          emit_notification(event);
        }
        return cmdlang::make_ok();
      });

  register_command(
      CommandSpec("queryLog", "retrieve matching log entries")
          .arg(string_arg("source").optional_arg())
          .arg(word_arg("level").optional_arg())
          .arg(integer_arg("limit").optional_arg().range(1, 1000)),
      [this](const CmdLine& cmd, const CallerInfo&) {
        std::string source_glob = cmd.get_text("source", "*");
        std::string level = cmd.get_text("level");
        std::size_t limit =
            static_cast<std::size_t>(cmd.get_integer("limit", 100));
        std::vector<std::string> out;
        {
          std::scoped_lock lock(mu_);
          for (auto it = entries_.rbegin();
               it != entries_.rend() && out.size() < limit; ++it) {
            if (!util::glob_match(source_glob, it->source)) continue;
            if (!level.empty() && it->level != level) continue;
            out.push_back(std::to_string(it->id) + "|" + it->level + "|" +
                          it->source + "|" + it->message);
          }
        }
        CmdLine reply = cmdlang::make_ok();
        reply.arg("entries", cmdlang::string_vector(std::move(out)));
        return reply;
      });

  register_command(
      CommandSpec("logCount", "count entries, optionally by level")
          .arg(word_arg("level").optional_arg()),
      [this](const CmdLine& cmd, const CallerInfo&) {
        std::string level = cmd.get_text("level");
        std::size_t n = 0;
        {
          std::scoped_lock lock(mu_);
          if (level.empty()) {
            n = entries_.size();
          } else {
            for (const Entry& e : entries_)
              if (e.level == level) ++n;
          }
        }
        CmdLine reply = cmdlang::make_ok();
        reply.arg("count", static_cast<std::int64_t>(n));
        return reply;
      });

  register_command(CommandSpec("clearLog", "drop all entries"),
                   [this](const CmdLine&, const CallerInfo&) {
                     std::scoped_lock lock(mu_);
                     entries_.clear();
                     auth_failures_.clear();
                     return cmdlang::make_ok();
                   });
}

std::size_t NetLoggerDaemon::entry_count() const {
  std::scoped_lock lock(mu_);
  return entries_.size();
}

std::vector<NetLoggerDaemon::Entry> NetLoggerDaemon::entries_from(
    const std::string& source_glob) const {
  std::scoped_lock lock(mu_);
  std::vector<Entry> out;
  for (const Entry& e : entries_)
    if (util::glob_match(source_glob, e.source)) out.push_back(e);
  return out;
}

std::uint64_t NetLoggerDaemon::alerts_raised() const {
  std::scoped_lock lock(mu_);
  return alerts_;
}

}  // namespace ace::services
