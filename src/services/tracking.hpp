// Personnel tracker — an example of the paper's *non-human ACE user*
// (§1.1: "Non-human users are high-level applications that utilize ACE
// services on their own to provide automation within an ACE. Examples of
// this would be video monitoring systems, personnel tracking systems").
//
// The tracker subscribes to `identified` notifications from every
// identification device in the environment (discovered through the ASD)
// and maintains per-user movement histories, enabling "where is Kate"
// queries and presence lists per room — the substrate for the paper's
// envisioned camera-follows-speaker automation (§2.5's door example).
//
// Command set:
//   trackWatchAll;                  (subscribe to all ID devices via ASD)
//   trackNotify source= command= detail=;   (notification sink)
//   trackWhereIs user=;             -> ok room= station= sightings=
//   trackHistory user= limit=?;     -> ok entries={room|station|device ...}
//   trackPresent room=;             -> ok users={...}
#pragma once

#include <deque>

#include "daemon/daemon.hpp"

namespace ace::services {

struct TrackerOptions {
  std::size_t max_history_per_user = 64;
};

class TrackerDaemon : public daemon::ServiceDaemon {
 public:
  struct Sighting {
    std::string room;
    std::string station;
    std::string device;
    std::chrono::steady_clock::time_point at;
  };

  TrackerDaemon(daemon::Environment& env, daemon::DaemonHost& host,
                daemon::DaemonConfig config, TrackerOptions options = {});

  // Subscribes to `identified` on every registered identification device.
  // Returns how many devices were subscribed.
  util::Result<std::int64_t> watch_all_devices();

  std::optional<Sighting> last_sighting(const std::string& user) const;
  std::size_t tracked_users() const;

 private:
  TrackerOptions options_;
  mutable std::mutex mu_;
  std::map<std::string, std::deque<Sighting>> history_;
};

}  // namespace ace::services
