// HRM and SRM — the resource-monitoring pair (paper §4.1/§4.2, Fig 11).
//
// HRM (Host Resource Monitor) reports the resources of the host it runs on:
// "host CPU load, CPU speed (in bogomips), network traffic load, total and
// available memory, and disk storage capabilities and size". It answers
// queries and — via the standard notification machinery — pushes periodic
// `hrmSample` events to subscribed services.
//
// SRM (System Resource Monitor) aggregates all HRMs (discovered through the
// ASD) "thus allowing for uniform allocation and distribution of ACE system
// resources" and serves as the placement oracle for the SAL.
//
// HRM commands:  hrmStatus;
// SRM commands:  srmStatus;
//                srmPickHost cpu=? mem=? policy=least_loaded|random|first;
#pragma once

#include "daemon/daemon.hpp"
#include "daemon/host.hpp"

namespace ace::services {

struct HrmOptions {
  // Period of self-sampling (drives hrmSample notifications); zero disables.
  std::chrono::milliseconds sample_period{0};
};

class HrmDaemon : public daemon::ServiceDaemon {
 public:
  HrmDaemon(daemon::Environment& env, daemon::DaemonHost& host,
            daemon::DaemonConfig config, HrmOptions options = {});

 protected:
  util::Status on_start() override;
  void on_stop() override;

 private:
  void sampler_loop(std::stop_token st);
  cmdlang::CmdLine status_reply();

  HrmOptions options_;
  std::jthread sampler_;
};

struct SrmOptions {
  std::chrono::milliseconds cache_ttl{200};  // HRM snapshot cache
  std::string hrm_class_glob = "Service/Monitor/HRM*";
};

class SrmDaemon : public daemon::ServiceDaemon {
 public:
  struct HostSnapshot {
    std::string host;
    net::Address hrm;
    double cpu_load = 0.0;
    double bogomips = 0.0;
    std::uint64_t mem_free_kb = 0;
    bool reachable = false;
  };

  SrmDaemon(daemon::Environment& env, daemon::DaemonHost& host,
            daemon::DaemonConfig config, SrmOptions options = {});

  // Collects fresh snapshots from every registered HRM (cached briefly).
  std::vector<HostSnapshot> snapshots();

 private:
  // Placement policy: pick the host with the most spare normalized CPU
  // capacity that satisfies the memory requirement.
  std::optional<HostSnapshot> pick(double cpu_demand, std::uint64_t mem_kb,
                                   const std::string& policy);

  SrmOptions options_;
  std::mutex mu_;
  std::vector<HostSnapshot> cache_;
  std::chrono::steady_clock::time_point cache_at_{};
  util::Rng rng_;
};

}  // namespace ace::services
