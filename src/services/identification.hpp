// User identification services (paper §4.6, §4.8, §4.9; Scenario 2):
//
//  * FiuDaemon — interface to the (simulated) Sony FIU fingerprint unit:
//    enrolled templates are feature vectors, scans are noisy samples matched
//    by nearest template under a distance threshold.
//  * IButtonDaemon — interface to the (simulated) Dallas iButton reader:
//    reads a serial number and resolves it through the AUD.
//  * IdMonitorDaemon — "receives user identification notifications from ACE
//    identification devices and initiat[es] the appropriate actions": it
//    updates the user's location in the AUD and brings the user's default
//    workspace up at the access point via the WSS (Fig 19).
//
// Both device daemons emit `identified user= room= station= device=;`
// notifications on success and `identifyFailed ...;` on failure; failures
// are also reported to the Network Logger at level `security` (§4.14's
// intrusion-attempt example).
#pragma once

#include <deque>

#include "daemon/devices.hpp"

namespace ace::services {

using FingerprintFeatures = std::vector<double>;

struct FiuOptions {
  double match_threshold = 0.5;  // max L2 feature distance for a match
};

class FiuDaemon : public daemon::DeviceDaemon {
 public:
  FiuDaemon(daemon::Environment& env, daemon::DaemonHost& host,
            daemon::DaemonConfig config, FiuOptions options = {});

  // Commands:
  //   fiuEnroll template= features={...};
  //   fiuScan features={...} station=?;     -> ok template= user=
  //   fiuTemplates;                         -> ok templates={...}

 private:
  cmdlang::CmdLine identify(const FingerprintFeatures& scan,
                            const std::string& station);

  FiuOptions options_;
  std::mutex mu_;
  std::map<std::string, FingerprintFeatures> templates_;
};

class IButtonDaemon : public daemon::DeviceDaemon {
 public:
  IButtonDaemon(daemon::Environment& env, daemon::DaemonHost& host,
                daemon::DaemonConfig config);

  // Commands:
  //   ibuttonRead serial= station=?;        -> ok user=
};

struct IdMonitorOptions {
  bool auto_show_workspace = true;  // bring up the workspace on identify
  std::size_t max_events = 256;
};

class IdMonitorDaemon : public daemon::ServiceDaemon {
 public:
  struct IdEvent {
    std::string user;
    std::string room;
    std::string station;
    std::string device;
    bool positive = false;
  };

  IdMonitorDaemon(daemon::Environment& env, daemon::DaemonHost& host,
                  daemon::DaemonConfig config, IdMonitorOptions options = {});

  // Subscribes this monitor to `identified`/`identifyFailed` notifications
  // of an identification device daemon.
  util::Status watch_device(const net::Address& device);

  std::vector<IdEvent> events() const;

  // Commands:
  //   idNotify source= command= detail=;   (notification sink)
  //   idEvents;                            -> ok events={...}

 private:
  void handle_identified(const cmdlang::CmdLine& detail);

  IdMonitorOptions options_;
  mutable std::mutex mu_;
  std::deque<IdEvent> events_;
};

}  // namespace ace::services
