#include "services/identification.hpp"

#include <cmath>

#include "services/asd.hpp"

namespace ace::services {

using cmdlang::CmdLine;
using cmdlang::CommandSpec;
using cmdlang::string_arg;
using cmdlang::vector_arg;
using cmdlang::Word;
using cmdlang::word_arg;
using daemon::CallerInfo;

namespace {

daemon::DaemonConfig fiu_defaults(daemon::DaemonConfig config) {
  if (config.service_class.empty())
    config.service_class = "Service/Device/Identification/FIU";
  return config;
}
daemon::DaemonConfig ibutton_defaults(daemon::DaemonConfig config) {
  if (config.service_class.empty())
    config.service_class = "Service/Device/Identification/IButton";
  return config;
}
daemon::DaemonConfig idmon_defaults(daemon::DaemonConfig config) {
  if (config.service_class.empty())
    config.service_class = "Service/Monitor/IDMonitor";
  return config;
}

FingerprintFeatures features_from(const cmdlang::Vector& vec) {
  FingerprintFeatures out;
  for (const auto& v : vec.elements)
    if (v.is_real() || v.is_integer()) out.push_back(v.as_real());
  return out;
}

double feature_distance(const FingerprintFeatures& a,
                        const FingerprintFeatures& b) {
  if (a.size() != b.size()) return 1e9;
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    double d = a[i] - b[i];
    acc += d * d;
  }
  return std::sqrt(acc);
}

}  // namespace

// ----------------------------------------------------------------------- FIU

FiuDaemon::FiuDaemon(daemon::Environment& env, daemon::DaemonHost& host,
                     daemon::DaemonConfig config, FiuOptions options)
    : DeviceDaemon(env, host, fiu_defaults(std::move(config))),
      options_(options) {
  powered_ = true;  // identification devices come up powered

  register_command(
      CommandSpec("fiuEnroll", "load a fingerprint template into the unit")
          .arg(word_arg("template"))
          .arg(vector_arg("features", cmdlang::ArgType::vector_real)),
      [this](const CmdLine& cmd, const CallerInfo&) {
        auto vec = cmd.get_vector("features");
        if (!vec || vec->elements.empty())
          return cmdlang::make_error(util::Errc::invalid, "empty features");
        std::scoped_lock lock(mu_);
        templates_[cmd.get_text("template")] = features_from(*vec);
        return cmdlang::make_ok();
      });

  register_command(
      CommandSpec("fiuScan", "match a scanned fingerprint")
          .arg(vector_arg("features", cmdlang::ArgType::vector_real))
          .arg(string_arg("station").optional_arg()),
      [this](const CmdLine& cmd, const CallerInfo&) {
        auto vec = cmd.get_vector("features");
        if (!vec)
          return cmdlang::make_error(util::Errc::invalid, "missing features");
        return identify(features_from(*vec), cmd.get_text("station"));
      });

  register_command(
      CommandSpec("fiuTemplates", "list loaded template ids"),
      [this](const CmdLine&, const CallerInfo&) {
        std::vector<std::string> ids;
        {
          std::scoped_lock lock(mu_);
          for (const auto& [id, f] : templates_) ids.push_back(id);
        }
        CmdLine reply = cmdlang::make_ok();
        reply.arg("templates", cmdlang::string_vector(std::move(ids)));
        return reply;
      });
}

cmdlang::CmdLine FiuDaemon::identify(const FingerprintFeatures& scan,
                                     const std::string& station) {
  if (!powered())
    return cmdlang::make_error(util::Errc::invalid, "FIU is powered off");
  std::string best_template;
  double best_distance = 1e300;
  {
    std::scoped_lock lock(mu_);
    for (const auto& [id, features] : templates_) {
      double d = feature_distance(scan, features);
      if (d < best_distance) {
        best_distance = d;
        best_template = id;
      }
    }
  }

  if (best_template.empty() || best_distance > options_.match_threshold) {
    net_log("security",
            "invalid fingerprint identification attempt at station '" +
                station + "'");
    CmdLine failed("identifyFailed");
    failed.arg("room", Word{config().room});
    failed.arg("station", station);
    failed.arg("device", Word{"fiu"});
    emit_notification(failed);
    return cmdlang::make_error(util::Errc::not_found,
                               "fingerprint not recognized");
  }

  // Resolve the template to a user through the AUD (Fig 18).
  std::string username;
  auto auds = AsdClient(control_client(), env().asd_address).query("*", "Service/Database/UserDatabase*", "*");
  if (auds.ok() && !auds->empty()) {
    CmdLine find("userByFingerprint");
    find.arg("template", best_template);
    auto user = control_client().call(auds->front().address, find, daemon::kCallOk);
    if (user.ok()) username = user->get_text("username");
  }
  if (username.empty()) {
    net_log("security", "fingerprint template '" + best_template +
                            "' matches no registered ACE user");
    return cmdlang::make_error(util::Errc::not_found,
                               "fingerprint matches no registered user");
  }

  CmdLine event("identified");
  event.arg("user", Word{username});
  event.arg("room", Word{config().room});
  event.arg("station", station);
  event.arg("device", Word{"fiu"});
  emit_notification(event);

  CmdLine reply = cmdlang::make_ok();
  reply.arg("template", Word{best_template});
  reply.arg("user", Word{username});
  reply.arg("distance", best_distance);
  return reply;
}

// ------------------------------------------------------------------- iButton

IButtonDaemon::IButtonDaemon(daemon::Environment& env,
                             daemon::DaemonHost& host,
                             daemon::DaemonConfig config)
    : DeviceDaemon(env, host, ibutton_defaults(std::move(config))) {
  powered_ = true;

  register_command(
      CommandSpec("ibuttonRead", "resolve a presented iButton")
          .arg(string_arg("serial"))
          .arg(string_arg("station").optional_arg()),
      [this](const CmdLine& cmd, const CallerInfo&) {
        if (!powered())
          return cmdlang::make_error(util::Errc::invalid,
                                     "reader is powered off");
        std::string serial = cmd.get_text("serial");
        std::string station = cmd.get_text("station");
        std::string username;
        auto auds = AsdClient(control_client(), this->env().asd_address).query("*", "Service/Database/UserDatabase*", "*");
        if (auds.ok() && !auds->empty()) {
          CmdLine find("userByIButton");
          find.arg("serial", serial);
          auto user = control_client().call(auds->front().address, find, daemon::kCallOk);
          if (user.ok()) username = user->get_text("username");
        }
        if (username.empty()) {
          net_log("security", "unknown iButton '" + serial +
                                  "' presented at station '" + station + "'");
          CmdLine failed("identifyFailed");
          failed.arg("room", Word{this->config().room});
          failed.arg("station", station);
          failed.arg("device", Word{"ibutton"});
          emit_notification(failed);
          return cmdlang::make_error(util::Errc::not_found,
                                     "unknown iButton serial");
        }
        CmdLine event("identified");
        event.arg("user", Word{username});
        event.arg("room", Word{this->config().room});
        event.arg("station", station);
        event.arg("device", Word{"ibutton"});
        emit_notification(event);
        CmdLine reply = cmdlang::make_ok();
        reply.arg("user", Word{username});
        return reply;
      });
}

// ---------------------------------------------------------------- ID Monitor

IdMonitorDaemon::IdMonitorDaemon(daemon::Environment& env,
                                 daemon::DaemonHost& host,
                                 daemon::DaemonConfig config,
                                 IdMonitorOptions options)
    : ServiceDaemon(env, host, idmon_defaults(std::move(config))),
      options_(options) {
  register_command(
      CommandSpec("idNotify", "notification sink for identification events")
          .arg(string_arg("source"))
          .arg(word_arg("command"))
          .arg(string_arg("detail")),
      [this](const CmdLine& cmd, const CallerInfo&) {
        auto detail = cmdlang::Parser::parse(cmd.get_text("detail"));
        if (!detail.ok())
          return cmdlang::make_error(util::Errc::parse_error,
                                     "bad notification detail");
        handle_identified(detail.value());
        return cmdlang::make_ok();
      });

  register_command(
      CommandSpec("idEvents", "recent identification events"),
      [this](const CmdLine&, const CallerInfo&) {
        std::vector<std::string> rows;
        {
          std::scoped_lock lock(mu_);
          for (const IdEvent& e : events_)
            rows.push_back((e.positive ? std::string("ok|") : "fail|") +
                           e.user + "|" + e.room + "|" + e.station + "|" +
                           e.device);
        }
        CmdLine reply = cmdlang::make_ok();
        reply.arg("events", cmdlang::string_vector(std::move(rows)));
        return reply;
      });
}

util::Status IdMonitorDaemon::watch_device(const net::Address& device) {
  for (const char* event : {"identified", "identifyFailed"}) {
    CmdLine sub("addNotification");
    sub.arg("command", Word{event});
    sub.arg("service", address().to_string());
    sub.arg("method", Word{"idNotify"});
    auto reply = control_client().call(device, sub, daemon::kCallOk);
    if (!reply.ok()) return reply.error();
  }
  return util::Status::ok_status();
}

void IdMonitorDaemon::handle_identified(const cmdlang::CmdLine& detail) {
  IdEvent e;
  e.user = detail.get_text("user");
  e.room = detail.get_text("room");
  e.station = detail.get_text("station");
  e.device = detail.get_text("device");
  e.positive = detail.name() == "identified";
  {
    std::scoped_lock lock(mu_);
    events_.push_back(e);
    while (events_.size() > options_.max_events) events_.pop_front();
  }
  if (!e.positive || e.user.empty()) return;

  // Scenario 2: update the user's current location with the AUD.
  auto auds = AsdClient(control_client(), env().asd_address).query("*", "Service/Database/UserDatabase*", "*");
  if (auds.ok() && !auds->empty()) {
    CmdLine loc("userSetLocation");
    loc.arg("username", Word{e.user});
    loc.arg("room", Word{e.room.empty() ? "unknown" : e.room});
    loc.arg("station", e.station);
    (void)control_client().call(auds->front().address, loc);
  }

  // Scenario 3: bring the user's default workspace up at the access point.
  if (options_.auto_show_workspace && !e.station.empty()) {
    auto wsses = AsdClient(control_client(), env().asd_address).query("*", "Service/WorkspaceServer*", "*");
    if (wsses.ok() && !wsses->empty()) {
      const net::Address wss = wsses->front().address;
      CmdLine def("wssDefault");
      def.arg("owner", Word{e.user});
      auto ws = control_client().call(wss, def, daemon::kCallOk);
      if (ws.ok()) {
        CmdLine show("wssShow");
        show.arg("workspace", ws->get_text("workspace"));
        show.arg("location", e.station);
        (void)control_client().call(wss, show);
      }
    }
  }
}

std::vector<IdMonitorDaemon::IdEvent> IdMonitorDaemon::events() const {
  std::scoped_lock lock(mu_);
  return std::vector<IdEvent>(events_.begin(), events_.end());
}

}  // namespace ace::services
