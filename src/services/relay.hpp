// RelayDaemon — the rendezvous tier for rooms behind bad links (paper Ch 9
// campus topology; the syncspirit global-discovery + relay-actor shape).
//
// A room ASD that cannot be reached directly keeps a lease-bounded
// registration here (`relayRegister`, renewed by its GossipAgent). Peers
// whose direct link is down — or who were seeded with a relay for the room
// — tunnel commands through `relayForward room= cmd=`: the relay parses the
// serialized command, invokes it on the registered room ASD over its own
// control client, and returns the serialized reply verbatim (`ok reply=`).
// Tunneling is transparent: an `error` reply from the room comes back
// inside an outer `ok`, so the tunnel never masks room-level failures as
// relay failures.
//
// Commands:
//   relayRegister room= host= port= lease=?;  -> ok lease=granted_ms
//   relayForward room= cmd=;                  -> ok reply="<serialized>"
//   relayRooms;                               -> ok rooms={room|host:port|expires_in}
#pragma once

#include <chrono>
#include <map>
#include <mutex>
#include <string>

#include "daemon/daemon.hpp"

namespace ace::services {

struct RelayOptions {
  std::chrono::milliseconds min_lease{200};
  std::chrono::milliseconds max_lease{60000};
  // Deadline for one tunneled command (the room-side RPC).
  std::chrono::milliseconds forward_timeout{750};
};

class RelayDaemon : public daemon::ServiceDaemon {
 public:
  RelayDaemon(daemon::Environment& env, daemon::DaemonHost& host,
              daemon::DaemonConfig config, RelayOptions options = {});

  std::size_t room_count() const;

 protected:
  void on_crash() override;

 private:
  struct RoomEntry {
    net::Address address;
    std::chrono::steady_clock::time_point expires;
  };

  RelayOptions options_;

  obs::Counter* obs_frames_;         // asd.relay_frames — tunneled commands
  obs::Counter* obs_registrations_;  // asd.relay_registrations
  obs::Counter* obs_misses_;         // asd.relay_misses — unknown/expired room
  obs::Gauge* obs_rooms_;            // asd.relay_rooms

  mutable std::mutex mu_;
  std::map<std::string, RoomEntry> rooms_;

  // Drops expired entries and refreshes the gauge; returns a live room's
  // address. Expiry is lazy (checked on every touch) — the relay has no
  // reaper of its own.
  std::optional<net::Address> live_room_locked(
      const std::string& room, std::chrono::steady_clock::time_point now);
};

}  // namespace ace::services
