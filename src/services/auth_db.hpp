// ACE Authorization Database service (paper §4.10, Fig 10): stores KeyNote
// credential assertions per principal and serves them to daemons verifying
// client trust. Assertions are syntax- and signature-checked on insertion.
//
// Command set:
//   credAdd principal= assertion=;        (assertion = serialized KeyNote text)
//   credRemove principal=;                (drops all credentials of principal)
//   getCredentials principal=;            -> ok credentials={...}
//   credCount;                            -> ok count=
#pragma once

#include <map>

#include "daemon/daemon.hpp"
#include "keynote/assertion.hpp"

namespace ace::services {

class AuthDbDaemon : public daemon::ServiceDaemon {
 public:
  AuthDbDaemon(daemon::Environment& env, daemon::DaemonHost& host,
               daemon::DaemonConfig config);

  std::size_t credential_count() const;

  // In-process insertion used during environment bootstrap (signs nothing;
  // the assertion must already carry a valid signature).
  util::Status add_credential(const std::string& principal,
                              const keynote::Assertion& assertion);

 private:
  mutable std::mutex mu_;
  // principal -> serialized credential assertions naming it as a licensee
  std::map<std::string, std::vector<std::string>> credentials_;
};

// Helper: build + sign a credential "authorizer delegates `conditions` to
// licensee" and store it at the Authorization DB via command.
util::Status grant_credential(daemon::AceClient& client,
                              const net::Address& auth_db,
                              daemon::Environment& env,
                              const std::string& authorizer,
                              const std::string& licensee,
                              const std::string& conditions,
                              const std::string& comment = {});

}  // namespace ace::services
