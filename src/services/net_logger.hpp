// ACE Network Logger service (paper §4.14): the system-wide activity and
// security log — "to record what kinds of activities are present within an
// ACE system and to serve as a history so that ... system administrators
// can investigate them for security holes or system bugs".
//
// Command set:
//   log source= level= message=;                    (usually _noreply)
//   queryLog source=<glob>? level=? limit=?;        -> ok entries={...}
//   logCount level=?;                               -> ok count=
//   clearLog;
//
// Includes the paper's intrusion example: repeated auth failures from one
// source raise a `securityAlert` notification.
#pragma once

#include <deque>

#include "daemon/daemon.hpp"

namespace ace::services {

struct NetLoggerOptions {
  std::size_t max_entries = 10000;  // rotation bound
  int alert_threshold = 3;          // auth failures before securityAlert
};

class NetLoggerDaemon : public daemon::ServiceDaemon {
 public:
  struct Entry {
    std::uint64_t id = 0;
    std::string source;
    std::string level;
    std::string message;
    std::chrono::steady_clock::time_point at;
  };

  NetLoggerDaemon(daemon::Environment& env, daemon::DaemonHost& host,
                  daemon::DaemonConfig config, NetLoggerOptions options = {});

  std::size_t entry_count() const;
  std::vector<Entry> entries_from(const std::string& source_glob) const;
  std::uint64_t alerts_raised() const;

 private:
  NetLoggerOptions options_;
  mutable std::mutex mu_;
  std::deque<Entry> entries_;
  std::uint64_t next_id_ = 1;
  std::map<std::string, int> auth_failures_;
  std::uint64_t alerts_ = 0;
};

}  // namespace ace::services
