#include "services/monitors.hpp"

#include "services/asd.hpp"

namespace ace::services {

using cmdlang::CmdLine;
using cmdlang::CommandSpec;
using cmdlang::integer_arg;
using cmdlang::real_arg;
using cmdlang::Word;
using cmdlang::word_arg;
using daemon::CallerInfo;

namespace {
daemon::DaemonConfig hrm_defaults(daemon::DaemonConfig config) {
  if (config.service_class.empty())
    config.service_class = "Service/Monitor/HRM";
  return config;
}
daemon::DaemonConfig srm_defaults(daemon::DaemonConfig config) {
  if (config.service_class.empty())
    config.service_class = "Service/Monitor/SRM";
  return config;
}
}  // namespace

HrmDaemon::HrmDaemon(daemon::Environment& env, daemon::DaemonHost& host,
                     daemon::DaemonConfig config, HrmOptions options)
    : ServiceDaemon(env, host, hrm_defaults(std::move(config))),
      options_(options) {
  register_command(CommandSpec("hrmStatus", "report host resources"),
                   [this](const CmdLine&, const CallerInfo&) {
                     return status_reply();
                   });
}

cmdlang::CmdLine HrmDaemon::status_reply() {
  const daemon::ResourceSnapshot snap = host().resources();
  CmdLine reply = cmdlang::make_ok();
  reply.arg("host", host().name());
  reply.arg("cpu_load", snap.cpu_load);
  reply.arg("bogomips", snap.bogomips);
  reply.arg("mem_total", static_cast<std::int64_t>(snap.mem_total_kb));
  reply.arg("mem_free", static_cast<std::int64_t>(snap.mem_free_kb));
  reply.arg("disk_total", static_cast<std::int64_t>(snap.disk_total_kb));
  reply.arg("disk_free", static_cast<std::int64_t>(snap.disk_free_kb));
  reply.arg("net_load", snap.net_load);
  reply.arg("processes", static_cast<std::int64_t>(snap.process_count));
  return reply;
}

util::Status HrmDaemon::on_start() {
  if (options_.sample_period.count() > 0)
    sampler_ = std::jthread([this](std::stop_token st) { sampler_loop(st); });
  return util::Status::ok_status();
}

void HrmDaemon::on_stop() { sampler_ = {}; }

void HrmDaemon::sampler_loop(std::stop_token st) {
  while (!st.stop_requested()) {
    std::this_thread::sleep_for(options_.sample_period);
    if (st.stop_requested()) return;
    const daemon::ResourceSnapshot snap = host().resources();
    CmdLine event("hrmSample");
    event.arg("host", host().name());
    event.arg("cpu_load", snap.cpu_load);
    event.arg("mem_free", static_cast<std::int64_t>(snap.mem_free_kb));
    emit_notification(event);
  }
}

// -------------------------------------------------------------------- SRM

SrmDaemon::SrmDaemon(daemon::Environment& env, daemon::DaemonHost& host,
                     daemon::DaemonConfig config, SrmOptions options)
    : ServiceDaemon(env, host, srm_defaults(std::move(config))),
      options_(options),
      rng_(env.next_seed()) {
  register_command(
      CommandSpec("srmStatus", "aggregate resource status of all hosts"),
      [this](const CmdLine&, const CallerInfo&) {
        std::vector<std::string> rows;
        for (const HostSnapshot& s : snapshots()) {
          if (!s.reachable) continue;
          char buf[160];
          std::snprintf(buf, sizeof(buf), "%s|%.3f|%.0f|%llu", s.host.c_str(),
                        s.cpu_load, s.bogomips,
                        static_cast<unsigned long long>(s.mem_free_kb));
          rows.push_back(buf);
        }
        CmdLine reply = cmdlang::make_ok();
        reply.arg("hosts", cmdlang::string_vector(std::move(rows)));
        return reply;
      });

  register_command(
      CommandSpec("srmPickHost", "choose a host for a new application")
          .arg(real_arg("cpu").optional_arg())
          .arg(integer_arg("mem").optional_arg())
          .arg(word_arg("policy")
                   .optional_arg()
                   .choices({"least_loaded", "random", "first"})),
      [this](const CmdLine& cmd, const CallerInfo&) {
        auto picked = pick(cmd.get_real("cpu", 0.1),
                           static_cast<std::uint64_t>(cmd.get_integer("mem", 0)),
                           cmd.get_text("policy", "least_loaded"));
        if (!picked)
          return cmdlang::make_error(util::Errc::unavailable,
                                     "no host satisfies the request");
        CmdLine reply = cmdlang::make_ok();
        reply.arg("host", picked->host);
        reply.arg("cpu_load", picked->cpu_load);
        return reply;
      });
}

std::vector<SrmDaemon::HostSnapshot> SrmDaemon::snapshots() {
  {
    std::scoped_lock lock(mu_);
    if (!cache_.empty() &&
        std::chrono::steady_clock::now() - cache_at_ < options_.cache_ttl)
      return cache_;
  }

  std::vector<HostSnapshot> out;
  auto hrms = AsdClient(control_client(), env().asd_address).query("*", options_.hrm_class_glob, "*");
  if (hrms.ok()) {
    for (const ServiceLocation& loc : hrms.value()) {
      HostSnapshot s;
      s.hrm = loc.address;
      auto status = control_client().call(loc.address, CmdLine("hrmStatus"), daemon::kCallOk);
      if (status.ok()) {
        s.host = status->get_text("host");
        s.cpu_load = status->get_real("cpu_load");
        s.bogomips = status->get_real("bogomips");
        s.mem_free_kb =
            static_cast<std::uint64_t>(status->get_integer("mem_free"));
        s.reachable = true;
      } else {
        s.host = loc.address.host;
        s.reachable = false;
      }
      out.push_back(std::move(s));
    }
  }
  std::scoped_lock lock(mu_);
  cache_ = out;
  cache_at_ = std::chrono::steady_clock::now();
  return out;
}

std::optional<SrmDaemon::HostSnapshot> SrmDaemon::pick(
    double cpu_demand, std::uint64_t mem_kb, const std::string& policy) {
  std::vector<HostSnapshot> candidates;
  for (HostSnapshot& s : snapshots()) {
    if (!s.reachable) continue;
    if (mem_kb > 0 && s.mem_free_kb < mem_kb) continue;
    candidates.push_back(s);
  }
  if (candidates.empty()) return std::nullopt;
  if (policy == "first") return candidates.front();
  if (policy == "random")
    return candidates[rng_.next_below(candidates.size())];
  // least_loaded: minimize load after placement, normalized by capacity.
  std::size_t best = 0;
  double best_score = 1e300;
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    double capacity = std::max(candidates[i].bogomips, 1.0) / 1000.0;
    double score = (candidates[i].cpu_load + cpu_demand) / capacity;
    if (score < best_score) {
      best_score = score;
      best = i;
    }
  }
  return candidates[best];
}

}  // namespace ace::services
