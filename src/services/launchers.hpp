// HAL and SAL — the application launchers (paper §4.3/§4.4).
//
// HAL (Host Application Launcher) "simply runs the requested program on a
// selected host utilizing the host's local resources" — here, entries in
// the DaemonHost process table, plus registered *service launchables*: named
// factory callbacks that (re)create service daemons on this host, which is
// how the Robustness Manager restarts dead restart/robust services (Ch 9).
//
// SAL (System Application Launcher) "finds an appropriate HAL to launch the
// application (randomly or by resource allocation by communicating with the
// SRM) and delegates that responsibility to that chosen HAL".
//
// HAL commands: halLaunch command= cpu=? mem=?;      -> ok pid=
//               halKill pid=;  halRunning pid=;  halList;
//               halLaunchService name=;              -> ok
// SAL commands: salLaunch command= cpu=? mem=? policy=? host=?;
//                                                    -> ok host= pid=
//               salLaunchService name= host=?;       -> ok host=
#pragma once

#include <functional>

#include "daemon/daemon.hpp"
#include "daemon/host.hpp"

namespace ace::services {

class HalDaemon : public daemon::ServiceDaemon {
 public:
  using ServiceLauncher = std::function<util::Status()>;

  HalDaemon(daemon::Environment& env, daemon::DaemonHost& host,
            daemon::DaemonConfig config);

  // Registers a named factory that can (re)start a service on this host.
  void register_launchable(const std::string& name, ServiceLauncher launcher);

 private:
  std::mutex mu_;
  std::map<std::string, ServiceLauncher> launchables_;
};

class SalDaemon : public daemon::ServiceDaemon {
 public:
  SalDaemon(daemon::Environment& env, daemon::DaemonHost& host,
            daemon::DaemonConfig config);

 private:
  // Finds the HAL on `host_name` through the ASD.
  util::Result<net::Address> hal_on(const std::string& host_name);
  // Asks the SRM to choose a host; falls back to any HAL if no SRM.
  util::Result<std::string> choose_host(double cpu, std::int64_t mem,
                                        const std::string& policy);
};

}  // namespace ace::services
