#include "services/asd.hpp"

#include <algorithm>
#include <iterator>

#include "daemon/host.hpp"
#include "util/strings.hpp"

namespace ace::services {

using cmdlang::ArgType;
using cmdlang::CmdLine;
using cmdlang::CommandSpec;
using cmdlang::integer_arg;
using cmdlang::string_arg;
using cmdlang::vector_arg;
using cmdlang::Word;
using cmdlang::word_arg;
using daemon::CallerInfo;

namespace {
daemon::DaemonConfig asd_defaults(daemon::DaemonConfig config) {
  // The directory itself is infrastructure: it neither registers with
  // itself nor renews leases anywhere.
  config.register_with_asd = false;
  if (config.service_class.empty())
    config.service_class = "Service/ServiceDirectory";
  return config;
}

std::int64_t remaining_ms(std::chrono::steady_clock::time_point expires,
                          std::chrono::steady_clock::time_point now) {
  return std::chrono::duration_cast<std::chrono::milliseconds>(expires - now)
      .count();
}
}  // namespace

AsdDaemon::AsdDaemon(daemon::Environment& env, daemon::DaemonHost& host,
                     daemon::DaemonConfig config, AsdOptions options)
    : ServiceDaemon(env, host, asd_defaults(std::move(config))),
      options_(options),
      obs_registrations_(&env.metrics().counter("asd.registrations")),
      obs_renewals_(&env.metrics().counter("asd.renewals")),
      obs_renew_rpcs_(&env.metrics().counter("asd.renew_rpcs")),
      obs_renew_batches_(&env.metrics().counter("asd.renew_batches")),
      obs_deregistrations_(&env.metrics().counter("asd.deregistrations")),
      obs_expirations_(&env.metrics().counter("asd.expirations")),
      obs_lookups_(&env.metrics().counter("asd.lookups")),
      obs_queries_(&env.metrics().counter("asd.queries")),
      obs_index_hits_(&env.metrics().counter("asd.query_index_hits")),
      obs_scans_(&env.metrics().counter("asd.query_scans")),
      obs_forwarded_(&env.metrics().counter("asd.forwarded_queries")),
      obs_forward_failures_(&env.metrics().counter("asd.forward_failures")),
      obs_forward_cache_hits_(
          &env.metrics().counter("asd.forward_cache_hits")),
      obs_forward_cache_misses_(
          &env.metrics().counter("asd.forward_cache_misses")),
      obs_live_count_(&env.metrics().gauge("asd.live_count")),
      index_(options.use_index,
             AsdIndexObs{obs_index_hits_, obs_scans_, obs_live_count_}) {
  if (options_.federation.enabled) {
    gossip_ = std::make_unique<GossipAgent>(env, ServiceDaemon::config().room,
                                            options_.federation);
    gossip_->on_room_changed = [this](const std::string& room) {
      invalidate_forward_cache(room);
    };
  }
  // Every directory command runs concurrently against the synchronized
  // index: readers share the index lock instead of convoying behind the
  // daemon's control thread (see asd_index.hpp).
  register_command(
      CommandSpec("register", "register a service with a liveness lease")
          .arg(word_arg("name"))
          .arg(string_arg("host"))
          .arg(integer_arg("port").range(1, 65535))
          .arg(word_arg("room").optional_arg())
          .arg(string_arg("class").optional_arg())
          .arg(integer_arg("lease").optional_arg())
          .concurrent_ok(),
      [this](const CmdLine& cmd, const CallerInfo&) {
        Registration r;
        r.name = cmd.get_text("name");
        r.host = cmd.get_text("host");
        r.port = static_cast<std::uint16_t>(cmd.get_integer("port"));
        r.room = cmd.get_text("room");
        r.service_class = cmd.get_text("class");
        auto requested = std::chrono::milliseconds(
            cmd.get_integer("lease", options_.max_lease.count()));
        r.lease = std::clamp(requested, options_.min_lease, options_.max_lease);
        r.expires = std::chrono::steady_clock::now() + r.lease;
        auto granted = r.lease;
        index_.upsert(std::move(r));
        obs_registrations_->inc();
        registry_mutated();
        CmdLine reply = cmdlang::make_ok();
        reply.arg("lease", static_cast<std::int64_t>(granted.count()));
        return reply;
      });

  register_command(
      CommandSpec("renew", "renew a service lease")
          .arg(word_arg("name"))
          .concurrent_ok(),
      [this](const CmdLine& cmd, const CallerInfo&) {
        obs_renew_rpcs_->inc();
        auto lease = index_.renew(cmd.get_text("name"),
                                  std::chrono::steady_clock::now());
        if (!lease)
          return cmdlang::make_error(util::Errc::not_found,
                                     "service not registered");
        obs_renewals_->inc();
        CmdLine reply = cmdlang::make_ok();
        reply.arg("expires_in", static_cast<std::int64_t>(lease->count()));
        return reply;
      });

  // One RPC per host per renewal interval instead of one per lease: a
  // DaemonHost's LeaseCoordinator sends every resident service name here
  // (daemon/lease.hpp). Per-name statuses let one lost lease trigger one
  // re-registration without failing the whole batch.
  register_command(
      CommandSpec("renewBatch", "renew many service leases in one RPC")
          .arg(vector_arg("names", ArgType::vector_string))
          .concurrent_ok(),
      [this](const CmdLine& cmd, const CallerInfo&) {
        obs_renew_rpcs_->inc();
        obs_renew_batches_->inc();
        auto now = std::chrono::steady_clock::now();
        std::vector<std::string> statuses;
        if (auto names = cmd.get_vector("names")) {
          statuses.reserve(names->elements.size());
          for (const auto& elem : names->elements) {
            if (!elem.is_string() && !elem.is_word()) continue;
            const std::string& name = elem.as_text();
            if (auto lease = index_.renew(name, now)) {
              obs_renewals_->inc();
              statuses.push_back(name + "|ok|" +
                                 std::to_string(lease->count()));
            } else {
              statuses.push_back(name + "|not_found");
            }
          }
        }
        CmdLine reply = cmdlang::make_ok();
        reply.arg("statuses", cmdlang::string_vector(std::move(statuses)));
        return reply;
      });

  register_command(
      CommandSpec("deregister", "remove a service from the directory")
          .arg(word_arg("name"))
          .concurrent_ok(),
      [this](const CmdLine& cmd, const CallerInfo&) {
        index_.erase(cmd.get_text("name"));
        obs_deregistrations_->inc();
        registry_mutated();
        return cmdlang::make_ok();
      });

  register_command(
      CommandSpec("lookup", "find one service by exact name")
          .arg(word_arg("name"))
          .concurrent_ok(),
      [this](const CmdLine& cmd, const CallerInfo&) {
        obs_lookups_->inc();
        auto now = std::chrono::steady_clock::now();
        auto r = index_.find(cmd.get_text("name"));
        if (!r || r->expires < now)
          return cmdlang::make_error(util::Errc::not_found,
                                     "no such service");
        CmdLine reply = cmdlang::make_ok();
        reply.arg("name", Word{r->name});
        reply.arg("host", r->host);
        reply.arg("port", static_cast<std::int64_t>(r->port));
        reply.arg("room", r->room);
        reply.arg("class", r->service_class);
        // Remaining lease: the horizon a client-side cache may serve this
        // entry to without risking staleness beyond the lease contract.
        reply.arg("expires_in", remaining_ms(r->expires, now));
        return reply;
      });

  register_command(
      CommandSpec("query", "find services by glob patterns")
          .arg(string_arg("name").optional_arg())
          .arg(string_arg("class").optional_arg())
          .arg(string_arg("room").optional_arg())
          .arg(word_arg("scope").optional_arg())
          .concurrent_ok(),
      [this](const CmdLine& cmd, const CallerInfo&) {
        obs_queries_->inc();
        const std::string name_glob = cmd.get_text("name", "*");
        const std::string class_glob = cmd.get_text("class", "*");
        const std::string room_glob = cmd.get_text("room", "*");
        auto entries = index_.query(name_glob, class_glob, room_glob,
                                    std::chrono::steady_clock::now());
        std::vector<std::string> encoded;
        encoded.reserve(entries.size());
        for (const Registration& r : entries)
          encoded.push_back(encode_entry(r));
        // Federation: a query whose room constraint is non-local (or
        // unconstrained) also fans out to live peer rooms — unless the
        // sender pinned scope=local, which is both the client's opt-out
        // and the loop guard on forwarded sub-queries.
        if (gossip_ && options_.federation.forward_queries &&
            cmd.get_text("scope", "") != "local") {
          auto remote = forward_query(name_glob, class_glob, room_glob);
          encoded.insert(encoded.end(),
                         std::make_move_iterator(remote.begin()),
                         std::make_move_iterator(remote.end()));
        }
        CmdLine reply = cmdlang::make_ok();
        reply.arg("services", cmdlang::string_vector(std::move(encoded)));
        return reply;
      });

  register_command(
      CommandSpec("count", "number of live registrations").concurrent_ok(),
      [this](const CmdLine&, const CallerInfo&) {
        CmdLine reply = cmdlang::make_ok();
        reply.arg("count", static_cast<std::int64_t>(index_.size()));
        return reply;
      });

  // Internal: executed by the reaper; exists so lease expiry flows through
  // the normal notification machinery (§2.5) for watchers. Removes the
  // entry only if it is still expired — a renewal racing the reaper wins.
  register_command(
      CommandSpec("serviceExpired", "internal lease-expiry event")
          .arg(word_arg("name"))
          .arg(string_arg("class").optional_arg())
          .arg(string_arg("host").optional_arg())
          .concurrent_ok(),
      [this](const CmdLine& cmd, const CallerInfo&) {
        if (index_.erase_expired(cmd.get_text("name"),
                                 std::chrono::steady_clock::now())) {
          obs_expirations_->inc();
          registry_mutated();
        }
        return cmdlang::make_ok();
      });

  // Federation commands. Registered unconditionally so the machine-checked
  // command reference (docs/commands.md + test_docs) holds for every
  // AsdDaemon; without federation they answer with a clean error.
  register_command(
      CommandSpec("gossipSync",
                  "anti-entropy membership exchange between room ASDs")
          .arg(word_arg("from"))
          .arg(vector_arg("view", ArgType::vector_string))
          .concurrent_ok(),
      [this](const CmdLine& cmd, const CallerInfo&) {
        if (!gossip_)
          return cmdlang::make_error(util::Errc::invalid,
                                     "federation is disabled here");
        std::vector<std::string> entries;
        if (auto vec = cmd.get_vector("view")) {
          entries.reserve(vec->elements.size());
          for (const auto& elem : vec->elements)
            if (elem.is_string() || elem.is_word())
              entries.push_back(elem.as_text());
        }
        CmdLine reply = cmdlang::make_ok();
        reply.arg("view", cmdlang::string_vector(gossip_->handle_sync(entries)));
        return reply;
      });

  register_command(
      CommandSpec("gossipView",
                  "this directory's federation membership view")
          .concurrent_ok(),
      [this](const CmdLine&, const CallerInfo&) {
        if (!gossip_)
          return cmdlang::make_error(util::Errc::invalid,
                                     "federation is disabled here");
        std::vector<std::string> rooms;
        for (const RoomView& v : gossip_->view())
          rooms.push_back(GossipAgent::encode_entry(v) + "|" +
                          services::to_string(v.state));
        CmdLine reply = cmdlang::make_ok();
        reply.arg("room", Word{gossip_->self_room()});
        reply.arg("rooms", cmdlang::string_vector(std::move(rooms)));
        return reply;
      });
}

std::string AsdDaemon::encode_entry(const Registration& r) {
  return r.name + "|" + r.host + ":" + std::to_string(r.port) + "|" + r.room +
         "|" + r.service_class;
}

void AsdDaemon::registry_mutated() {
  // Peers bound their scoped caches to our (epoch, version); advancing it
  // through gossip is what invalidates them.
  if (gossip_) gossip_->bump_version();
}

void AsdDaemon::invalidate_forward_cache(const std::string& room) {
  const std::string prefix = room + "\x1f";
  std::scoped_lock lock(forward_mu_);
  std::erase_if(forward_cache_, [&](const auto& kv) {
    return kv.first.starts_with(prefix);
  });
}

std::vector<std::string> AsdDaemon::forward_query(
    const std::string& name_glob, const std::string& class_glob,
    const std::string& room_glob) {
  auto targets = gossip_->forward_targets(room_glob);
  if (targets.empty()) return {};

  auto now = std::chrono::steady_clock::now();
  std::vector<std::string> merged;
  std::vector<RoomView> missing;
  std::shared_ptr<daemon::AceClient> client;
  {
    std::scoped_lock lock(forward_mu_);
    client = fed_client_;
    for (const RoomView& t : targets) {
      const std::string key =
          t.room + "\x1f" + name_glob + "\x1f" + class_glob;
      auto it = forward_cache_.find(key);
      // A cached entry serves only while the TTL holds AND the room's
      // gossip freshness still matches its fill-time pair: an epoch bump
      // (restart, registry gone) or version bump (registry mutated)
      // invalidates it even inside the TTL.
      if (it != forward_cache_.end() && it->second.valid_until > now &&
          it->second.epoch == t.epoch && it->second.version == t.version) {
        obs_forward_cache_hits_->inc();
        merged.insert(merged.end(), it->second.encoded.begin(),
                      it->second.encoded.end());
        continue;
      }
      if (it != forward_cache_.end()) forward_cache_.erase(it);
      obs_forward_cache_misses_->inc();
      missing.push_back(t);
    }
  }
  if (missing.empty() || !client) return merged;

  // Fan the misses out in parallel on the ops pool. The tasks are
  // self-contained — they touch only the shared gather state and their own
  // client reference — so a task that outlives our bounded wait (or the
  // daemon's stop) writes into an abandoned gather and harmlessly expires.
  struct Gather {
    std::mutex mu;
    std::condition_variable cv;
    std::size_t outstanding = 0;
    struct SubResult {
      bool ok = false;
      std::vector<std::string> encoded;
    };
    std::vector<SubResult> results;
  };
  auto gather = std::make_shared<Gather>();
  gather->outstanding = missing.size();
  gather->results.resize(missing.size());
  const auto timeout = options_.federation.forward_timeout;
  for (std::size_t i = 0; i < missing.size(); ++i) {
    env().reactor().post_blocking([client, gather, i, target = missing[i],
                                   name_glob, class_glob, room_glob, timeout,
                                   forwarded = obs_forwarded_] {
      CmdLine q("query");
      q.arg("name", name_glob);
      q.arg("class", class_glob);
      q.arg("room", room_glob);
      q.arg("scope", Word{"local"});  // the peer must not re-forward
      forwarded->inc();
      auto reply = call_room(*client, target, q, timeout);
      Gather::SubResult res;
      if (reply.ok()) {
        res.ok = true;
        if (auto vec = reply->get_vector("services")) {
          res.encoded.reserve(vec->elements.size());
          for (const auto& elem : vec->elements)
            if (elem.is_string() || elem.is_word())
              res.encoded.push_back(elem.as_text());
        }
      }
      std::scoped_lock lock(gather->mu);
      gather->results[i] = std::move(res);
      if (--gather->outstanding == 0) gather->cv.notify_all();
    });
  }
  {
    // Bounded wait: every sub-query carries its own deadline, the slack
    // covers scheduling. Partial answers are better than a hung query.
    std::unique_lock lock(gather->mu);
    gather->cv.wait_for(lock, timeout + timeout / 2 + std::chrono::milliseconds(250),
                        [&] { return gather->outstanding == 0; });
  }

  now = std::chrono::steady_clock::now();
  std::scoped_lock glock(gather->mu);  // a straggler may still be writing
  std::scoped_lock lock(forward_mu_);
  for (std::size_t i = 0; i < missing.size(); ++i) {
    const auto& res = gather->results[i];
    if (!res.ok) {
      obs_forward_failures_->inc();
      continue;
    }
    merged.insert(merged.end(), res.encoded.begin(), res.encoded.end());
    if (options_.federation.forward_cache_ttl.count() <= 0) continue;
    if (forward_cache_.size() >= options_.federation.forward_cache_max) {
      // Capped: drop dead entries first, then the soonest-expiring one.
      std::erase_if(forward_cache_, [&](const auto& kv) {
        return kv.second.valid_until <= now;
      });
      if (forward_cache_.size() >= options_.federation.forward_cache_max) {
        auto victim = forward_cache_.begin();
        for (auto it = forward_cache_.begin(); it != forward_cache_.end();
             ++it)
          if (it->second.valid_until < victim->second.valid_until)
            victim = it;
        forward_cache_.erase(victim);
      }
    }
    const RoomView& t = missing[i];
    ForwardCacheEntry entry;
    entry.encoded = res.encoded;
    entry.valid_until = now + options_.federation.forward_cache_ttl;
    // Bound the entry to the freshness pair we targeted at fan-out time;
    // if gossip advanced meanwhile, the entry self-invalidates on its
    // first probe.
    entry.epoch = t.epoch;
    entry.version = t.version;
    forward_cache_[t.room + "\x1f" + name_glob + "\x1f" + class_glob] =
        std::move(entry);
  }
  return merged;
}

util::Status AsdDaemon::on_start() {
  reaper_ = std::jthread([this](std::stop_token st) { reaper_loop(st); });
  if (gossip_) {
    auto client = std::make_shared<daemon::AceClient>(
        env(), host().net_host(), identity());
    {
      std::scoped_lock lock(forward_mu_);
      fed_client_ = client;
    }
    gossip_->start(address(), client);
  }
  return util::Status::ok_status();
}

void AsdDaemon::on_stop() {
  if (gossip_) gossip_->stop();
  std::shared_ptr<daemon::AceClient> client;
  {
    std::scoped_lock lock(forward_mu_);
    client = std::move(fed_client_);
    forward_cache_.clear();
  }
  if (client) client->close_all();
  reaper_ = {};
}

void AsdDaemon::on_crash() {
  if (gossip_) gossip_->stop();
  std::shared_ptr<daemon::AceClient> client;
  {
    std::scoped_lock lock(forward_mu_);
    client = std::move(fed_client_);
    forward_cache_.clear();
  }
  if (client) client->close_all();
  reaper_ = {};
  index_.clear();
}

void AsdDaemon::reaper_loop(std::stop_token st) {
  std::unique_lock lock(reaper_mu_);
  while (!st.stop_requested()) {
    // Interruptible wait: the jthread's stop request wakes this
    // immediately, so shutdown never stalls for a whole reap interval.
    reaper_cv_.wait_for(lock, st, options_.reap_interval,
                        [] { return false; });
    if (st.stop_requested()) return;
    // O(k log n): pops only the due entries off the expiry heap instead of
    // sweeping the registry.
    auto expired = index_.collect_expired(std::chrono::steady_clock::now());
    for (const Registration& r : expired) {
      CmdLine event("serviceExpired");
      event.arg("name", Word{r.name});
      event.arg("class", r.service_class);
      event.arg("host", r.host + ":" + std::to_string(r.port));
      // Runs the registered handler (removes the entry if still expired)
      // and fires any `serviceExpired` notifications.
      (void)execute(event, CallerInfo{"svc/" + config().name, address()});
      net_log("warn", "lease expired for service '" + r.name + "'");
    }
  }
}

// ----------------------------------------------------------------- client

AsdClient::AsdClient(daemon::AceClient& client, net::Address asd,
                     AsdCacheOptions cache)
    : client_(client), asd_(asd) {
  if (cache.enabled) {
    cache_ = std::make_unique<CacheState>();
    cache_->options = cache;
    cache_->hits = &client.env().metrics().counter("asd_client.cache_hits");
    cache_->misses =
        &client.env().metrics().counter("asd_client.cache_misses");
  }
}

std::optional<util::Result<ServiceLocation>> AsdClient::cache_get(
    const std::string& name) {
  auto now = std::chrono::steady_clock::now();
  std::scoped_lock lock(cache_->mu);
  auto it = cache_->entries.find(name);
  if (it == cache_->entries.end() || it->second.valid_until <= now) {
    if (it != cache_->entries.end()) cache_->entries.erase(it);
    cache_->misses->inc();
    return std::nullopt;
  }
  cache_->hits->inc();
  if (!it->second.location)
    return util::Result<ServiceLocation>(
        util::Error{util::Errc::not_found, "no such service (cached)"});
  return util::Result<ServiceLocation>(*it->second.location);
}

void AsdClient::cache_put(const std::string& name,
                          std::optional<ServiceLocation> loc,
                          std::chrono::milliseconds ttl) {
  if (ttl.count() <= 0) return;
  auto now = std::chrono::steady_clock::now();
  std::scoped_lock lock(cache_->mu);
  if (cache_->entries.size() >= cache_->options.max_entries &&
      !cache_->entries.contains(name)) {
    // Capped size: drop dead entries first, then the soonest-expiring one
    // (it carries the least remaining usefulness).
    std::erase_if(cache_->entries,
                  [&](const auto& kv) { return kv.second.valid_until <= now; });
    if (cache_->entries.size() >= cache_->options.max_entries) {
      auto victim = cache_->entries.begin();
      for (auto it = cache_->entries.begin(); it != cache_->entries.end(); ++it)
        if (it->second.valid_until < victim->second.valid_until) victim = it;
      cache_->entries.erase(victim);
    }
  }
  cache_->entries[name] = CacheEntry{std::move(loc), now + ttl};
}

void AsdClient::invalidate(const std::string& name) {
  if (!cache_) return;
  std::scoped_lock lock(cache_->mu);
  cache_->entries.erase(name);
}

void AsdClient::invalidate_all() {
  if (!cache_) return;
  std::scoped_lock lock(cache_->mu);
  cache_->entries.clear();
}

util::Result<ServiceLocation> AsdClient::lookup(const std::string& name) {
  if (cache_) {
    if (auto cached = cache_get(name)) return std::move(*cached);
  }
  CmdLine cmd("lookup");
  cmd.arg("name", Word{name});
  auto reply = client_.call(asd_, cmd, daemon::kCallOk);
  if (!reply.ok()) {
    // Negative caching: a directory miss is re-served for a short window
    // so retry storms (e.g. a crashed dependency being polled) cost one
    // RPC per negative_ttl instead of one per poll.
    if (cache_ && reply.error().code == util::Errc::not_found)
      cache_put(name, std::nullopt, cache_->options.negative_ttl);
    return reply.error();
  }
  ServiceLocation loc;
  loc.name = reply->get_text("name");
  loc.address.host = reply->get_text("host");
  loc.address.port = static_cast<std::uint16_t>(reply->get_integer("port"));
  loc.room = reply->get_text("room");
  loc.service_class = reply->get_text("class");
  if (cache_) {
    // Lease-bounded TTL: never serve the entry past the lease the
    // directory itself would hold it for. Replies without expires_in
    // (pre-v2 directories) are simply not cached.
    auto ttl = std::chrono::milliseconds(reply->get_integer("expires_in", 0));
    cache_put(name, loc, ttl);
  }
  return loc;
}

util::Result<std::vector<ServiceLocation>> AsdClient::query(
    const std::string& name_glob, const std::string& class_glob,
    const std::string& room_glob, bool local_only) {
  CmdLine cmd("query");
  cmd.arg("name", name_glob);
  cmd.arg("class", class_glob);
  cmd.arg("room", room_glob);
  if (local_only) cmd.arg("scope", Word{"local"});
  auto reply = client_.call(asd_, cmd, daemon::kCallOk);
  if (!reply.ok()) return reply.error();
  std::vector<ServiceLocation> out;
  if (auto vec = reply->get_vector("services")) {
    for (const auto& elem : vec->elements) {
      if (!elem.is_string() && !elem.is_word()) continue;
      auto parts = util::split(elem.as_text(), '|');
      if (parts.size() != 4) continue;
      auto addr = net::Address::parse(parts[1]);
      if (!addr) continue;
      out.push_back(ServiceLocation{parts[0], *addr, parts[2], parts[3]});
    }
  }
  return out;
}

util::Result<std::chrono::milliseconds> AsdClient::register_service(
    const ServiceRegistration& registration) {
  CmdLine cmd("register");
  cmd.arg("name", Word{registration.name});
  cmd.arg("host", registration.address.host);
  cmd.arg("port", static_cast<std::int64_t>(registration.address.port));
  if (!registration.room.empty()) cmd.arg("room", Word{registration.room});
  if (!registration.service_class.empty())
    cmd.arg("class", registration.service_class);
  if (registration.lease)
    cmd.arg("lease", static_cast<std::int64_t>(registration.lease->count()));
  auto reply = client_.call(asd_, cmd, daemon::kCallOk);
  if (!reply.ok()) return reply.error();
  return std::chrono::milliseconds(reply->get_integer("lease"));
}

util::Status AsdClient::renew(const std::string& name) {
  CmdLine cmd("renew");
  cmd.arg("name", Word{name});
  auto reply = client_.call(asd_, cmd, daemon::kCallOk);
  if (!reply.ok()) return reply.error();
  return util::Status::ok_status();
}

util::Result<std::vector<RenewOutcome>> AsdClient::renew_batch(
    const std::vector<std::string>& names) {
  CmdLine cmd("renewBatch");
  cmd.arg("names", cmdlang::string_vector(names));
  auto reply = client_.call(asd_, cmd, daemon::kCallOk);
  if (!reply.ok()) return reply.error();
  std::vector<RenewOutcome> out;
  out.reserve(names.size());
  if (auto vec = reply->get_vector("statuses")) {
    for (const auto& elem : vec->elements) {
      if (!elem.is_string() && !elem.is_word()) continue;
      auto parts = util::split(elem.as_text(), '|');
      if (parts.size() < 2) continue;
      out.push_back(RenewOutcome{parts[0], parts[1] == "ok"});
    }
  }
  return out;
}

util::Status AsdClient::deregister(const std::string& name) {
  CmdLine cmd("deregister");
  cmd.arg("name", Word{name});
  auto reply = client_.call(asd_, cmd, daemon::kCallOk);
  if (!reply.ok()) return reply.error();
  return util::Status::ok_status();
}

util::Result<std::size_t> AsdClient::count() {
  auto reply = client_.call(asd_, CmdLine("count"), daemon::kCallOk);
  if (!reply.ok()) return reply.error();
  return static_cast<std::size_t>(reply->get_integer("count"));
}

}  // namespace ace::services
