#include "services/asd.hpp"

#include <algorithm>

#include "util/strings.hpp"

namespace ace::services {

using cmdlang::CmdLine;
using cmdlang::CommandSpec;
using cmdlang::integer_arg;
using cmdlang::string_arg;
using cmdlang::Word;
using cmdlang::word_arg;
using daemon::CallerInfo;

namespace {
daemon::DaemonConfig asd_defaults(daemon::DaemonConfig config) {
  // The directory itself is infrastructure: it neither registers with
  // itself nor renews leases anywhere.
  config.register_with_asd = false;
  if (config.service_class.empty())
    config.service_class = "Service/ServiceDirectory";
  return config;
}
}  // namespace

AsdDaemon::AsdDaemon(daemon::Environment& env, daemon::DaemonHost& host,
                     daemon::DaemonConfig config, AsdOptions options)
    : ServiceDaemon(env, host, asd_defaults(std::move(config))),
      options_(options),
      obs_registrations_(&env.metrics().counter("asd.registrations")),
      obs_renewals_(&env.metrics().counter("asd.renewals")),
      obs_deregistrations_(&env.metrics().counter("asd.deregistrations")),
      obs_expirations_(&env.metrics().counter("asd.expirations")),
      obs_lookups_(&env.metrics().counter("asd.lookups")),
      obs_queries_(&env.metrics().counter("asd.queries")),
      obs_live_count_(&env.metrics().gauge("asd.live_count")) {
  register_command(
      CommandSpec("register", "register a service with a liveness lease")
          .arg(word_arg("name"))
          .arg(string_arg("host"))
          .arg(integer_arg("port").range(1, 65535))
          .arg(word_arg("room").optional_arg())
          .arg(string_arg("class").optional_arg())
          .arg(integer_arg("lease").optional_arg()),
      [this](const CmdLine& cmd, const CallerInfo&) {
        Registration r;
        r.name = cmd.get_text("name");
        r.host = cmd.get_text("host");
        r.port = static_cast<std::uint16_t>(cmd.get_integer("port"));
        r.room = cmd.get_text("room");
        r.service_class = cmd.get_text("class");
        auto requested = std::chrono::milliseconds(
            cmd.get_integer("lease", options_.max_lease.count()));
        r.lease = std::clamp(requested, options_.min_lease, options_.max_lease);
        r.expires = std::chrono::steady_clock::now() + r.lease;
        {
          std::scoped_lock lock(mu_);
          registry_[r.name] = r;
          update_live_gauge_locked();
        }
        obs_registrations_->inc();
        CmdLine reply = cmdlang::make_ok();
        reply.arg("lease", static_cast<std::int64_t>(r.lease.count()));
        return reply;
      });

  register_command(
      CommandSpec("renew", "renew a service lease").arg(word_arg("name")),
      [this](const CmdLine& cmd, const CallerInfo&) {
        std::scoped_lock lock(mu_);
        auto it = registry_.find(cmd.get_text("name"));
        if (it == registry_.end())
          return cmdlang::make_error(util::Errc::not_found,
                                     "service not registered");
        it->second.expires = std::chrono::steady_clock::now() +
                             it->second.lease;
        obs_renewals_->inc();
        CmdLine reply = cmdlang::make_ok();
        reply.arg("expires_in",
                  static_cast<std::int64_t>(it->second.lease.count()));
        return reply;
      });

  register_command(
      CommandSpec("deregister", "remove a service from the directory")
          .arg(word_arg("name")),
      [this](const CmdLine& cmd, const CallerInfo&) {
        {
          std::scoped_lock lock(mu_);
          registry_.erase(cmd.get_text("name"));
          update_live_gauge_locked();
        }
        obs_deregistrations_->inc();
        return cmdlang::make_ok();
      });

  register_command(
      CommandSpec("lookup", "find one service by exact name")
          .arg(word_arg("name")),
      [this](const CmdLine& cmd, const CallerInfo&) {
        obs_lookups_->inc();
        std::scoped_lock lock(mu_);
        auto it = registry_.find(cmd.get_text("name"));
        if (it == registry_.end() ||
            it->second.expires < std::chrono::steady_clock::now())
          return cmdlang::make_error(util::Errc::not_found,
                                     "no such service");
        const Registration& r = it->second;
        CmdLine reply = cmdlang::make_ok();
        reply.arg("name", Word{r.name});
        reply.arg("host", r.host);
        reply.arg("port", static_cast<std::int64_t>(r.port));
        reply.arg("room", r.room);
        reply.arg("class", r.service_class);
        return reply;
      });

  register_command(
      CommandSpec("query", "find services by glob patterns")
          .arg(string_arg("name").optional_arg())
          .arg(string_arg("class").optional_arg())
          .arg(string_arg("room").optional_arg()),
      [this](const CmdLine& cmd, const CallerInfo&) {
        obs_queries_->inc();
        std::string name_glob = cmd.get_text("name", "*");
        std::string class_glob = cmd.get_text("class", "*");
        std::string room_glob = cmd.get_text("room", "*");
        auto now = std::chrono::steady_clock::now();
        std::vector<std::string> entries;
        {
          std::scoped_lock lock(mu_);
          for (const auto& [name, r] : registry_) {
            if (r.expires < now) continue;
            if (!util::glob_match(name_glob, r.name)) continue;
            if (!util::glob_match(class_glob, r.service_class)) continue;
            if (!util::glob_match(room_glob, r.room)) continue;
            entries.push_back(encode_entry(r));
          }
        }
        CmdLine reply = cmdlang::make_ok();
        reply.arg("services", cmdlang::string_vector(std::move(entries)));
        return reply;
      });

  register_command(
      CommandSpec("count", "number of live registrations"),
      [this](const CmdLine&, const CallerInfo&) {
        CmdLine reply = cmdlang::make_ok();
        reply.arg("count", static_cast<std::int64_t>(live_count()));
        return reply;
      });

  // Internal: executed by the reaper; exists so lease expiry flows through
  // the normal notification machinery (§2.5) for watchers.
  register_command(
      CommandSpec("serviceExpired", "internal lease-expiry event")
          .arg(word_arg("name"))
          .arg(string_arg("class").optional_arg())
          .arg(string_arg("host").optional_arg()),
      [this](const CmdLine& cmd, const CallerInfo&) {
        {
          std::scoped_lock lock(mu_);
          registry_.erase(cmd.get_text("name"));
          update_live_gauge_locked();
        }
        obs_expirations_->inc();
        return cmdlang::make_ok();
      });
}

void AsdDaemon::update_live_gauge_locked() {
  auto now = std::chrono::steady_clock::now();
  std::int64_t n = 0;
  for (const auto& [name, r] : registry_)
    if (r.expires >= now) ++n;
  obs_live_count_->set(n);
}

std::string AsdDaemon::encode_entry(const Registration& r) {
  return r.name + "|" + r.host + ":" + std::to_string(r.port) + "|" + r.room +
         "|" + r.service_class;
}

std::size_t AsdDaemon::live_count() const {
  auto now = std::chrono::steady_clock::now();
  std::scoped_lock lock(mu_);
  std::size_t n = 0;
  for (const auto& [name, r] : registry_)
    if (r.expires >= now) ++n;
  return n;
}

std::optional<AsdDaemon::Registration> AsdDaemon::find_registration(
    const std::string& name) const {
  std::scoped_lock lock(mu_);
  auto it = registry_.find(name);
  if (it == registry_.end()) return std::nullopt;
  return it->second;
}

util::Status AsdDaemon::on_start() {
  reaper_ = std::jthread([this](std::stop_token st) { reaper_loop(st); });
  return util::Status::ok_status();
}

void AsdDaemon::on_stop() { reaper_ = {}; }

void AsdDaemon::on_crash() {
  reaper_ = {};
  std::scoped_lock lock(mu_);
  registry_.clear();
  update_live_gauge_locked();
}

void AsdDaemon::reaper_loop(std::stop_token st) {
  while (!st.stop_requested()) {
    std::this_thread::sleep_for(options_.reap_interval);
    auto now = std::chrono::steady_clock::now();
    std::vector<Registration> expired;
    {
      std::scoped_lock lock(mu_);
      for (const auto& [name, r] : registry_)
        if (r.expires < now) expired.push_back(r);
    }
    for (const Registration& r : expired) {
      CmdLine event("serviceExpired");
      event.arg("name", Word{r.name});
      event.arg("class", r.service_class);
      event.arg("host", r.host + ":" + std::to_string(r.port));
      // Runs the registered handler (removes the entry) and fires any
      // `serviceExpired` notifications.
      (void)execute(event, CallerInfo{"svc/" + config().name, address()});
      net_log("warn", "lease expired for service '" + r.name + "'");
    }
  }
}

util::Result<ServiceLocation> AsdClient::lookup(const std::string& name) {
  CmdLine cmd("lookup");
  cmd.arg("name", Word{name});
  auto reply = client_.call(asd_, cmd, daemon::kCallOk);
  if (!reply.ok()) return reply.error();
  ServiceLocation loc;
  loc.name = reply->get_text("name");
  loc.address.host = reply->get_text("host");
  loc.address.port = static_cast<std::uint16_t>(reply->get_integer("port"));
  loc.room = reply->get_text("room");
  loc.service_class = reply->get_text("class");
  return loc;
}

util::Result<std::vector<ServiceLocation>> AsdClient::query(
    const std::string& name_glob, const std::string& class_glob,
    const std::string& room_glob) {
  CmdLine cmd("query");
  cmd.arg("name", name_glob);
  cmd.arg("class", class_glob);
  cmd.arg("room", room_glob);
  auto reply = client_.call(asd_, cmd, daemon::kCallOk);
  if (!reply.ok()) return reply.error();
  std::vector<ServiceLocation> out;
  if (auto vec = reply->get_vector("services")) {
    for (const auto& elem : vec->elements) {
      if (!elem.is_string() && !elem.is_word()) continue;
      auto parts = util::split(elem.as_text(), '|');
      if (parts.size() != 4) continue;
      auto addr = net::Address::parse(parts[1]);
      if (!addr) continue;
      out.push_back(ServiceLocation{parts[0], *addr, parts[2], parts[3]});
    }
  }
  return out;
}

util::Result<std::chrono::milliseconds> AsdClient::register_service(
    const ServiceRegistration& registration) {
  CmdLine cmd("register");
  cmd.arg("name", Word{registration.name});
  cmd.arg("host", registration.address.host);
  cmd.arg("port", static_cast<std::int64_t>(registration.address.port));
  if (!registration.room.empty()) cmd.arg("room", Word{registration.room});
  if (!registration.service_class.empty())
    cmd.arg("class", registration.service_class);
  if (registration.lease)
    cmd.arg("lease", static_cast<std::int64_t>(registration.lease->count()));
  auto reply = client_.call(asd_, cmd, daemon::kCallOk);
  if (!reply.ok()) return reply.error();
  return std::chrono::milliseconds(reply->get_integer("lease"));
}

util::Status AsdClient::renew(const std::string& name) {
  CmdLine cmd("renew");
  cmd.arg("name", Word{name});
  auto reply = client_.call(asd_, cmd, daemon::kCallOk);
  if (!reply.ok()) return reply.error();
  return util::Status::ok_status();
}

util::Status AsdClient::deregister(const std::string& name) {
  CmdLine cmd("deregister");
  cmd.arg("name", Word{name});
  auto reply = client_.call(asd_, cmd, daemon::kCallOk);
  if (!reply.ok()) return reply.error();
  return util::Status::ok_status();
}

util::Result<std::size_t> AsdClient::count() {
  auto reply = client_.call(asd_, CmdLine("count"), daemon::kCallOk);
  if (!reply.ok()) return reply.error();
  return static_cast<std::size_t>(reply->get_integer("count"));
}

}  // namespace ace::services
