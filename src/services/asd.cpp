#include "services/asd.hpp"

#include <algorithm>

#include "util/strings.hpp"

namespace ace::services {

using cmdlang::ArgType;
using cmdlang::CmdLine;
using cmdlang::CommandSpec;
using cmdlang::integer_arg;
using cmdlang::string_arg;
using cmdlang::vector_arg;
using cmdlang::Word;
using cmdlang::word_arg;
using daemon::CallerInfo;

namespace {
daemon::DaemonConfig asd_defaults(daemon::DaemonConfig config) {
  // The directory itself is infrastructure: it neither registers with
  // itself nor renews leases anywhere.
  config.register_with_asd = false;
  if (config.service_class.empty())
    config.service_class = "Service/ServiceDirectory";
  return config;
}

std::int64_t remaining_ms(std::chrono::steady_clock::time_point expires,
                          std::chrono::steady_clock::time_point now) {
  return std::chrono::duration_cast<std::chrono::milliseconds>(expires - now)
      .count();
}
}  // namespace

AsdDaemon::AsdDaemon(daemon::Environment& env, daemon::DaemonHost& host,
                     daemon::DaemonConfig config, AsdOptions options)
    : ServiceDaemon(env, host, asd_defaults(std::move(config))),
      options_(options),
      obs_registrations_(&env.metrics().counter("asd.registrations")),
      obs_renewals_(&env.metrics().counter("asd.renewals")),
      obs_renew_rpcs_(&env.metrics().counter("asd.renew_rpcs")),
      obs_renew_batches_(&env.metrics().counter("asd.renew_batches")),
      obs_deregistrations_(&env.metrics().counter("asd.deregistrations")),
      obs_expirations_(&env.metrics().counter("asd.expirations")),
      obs_lookups_(&env.metrics().counter("asd.lookups")),
      obs_queries_(&env.metrics().counter("asd.queries")),
      obs_index_hits_(&env.metrics().counter("asd.query_index_hits")),
      obs_scans_(&env.metrics().counter("asd.query_scans")),
      obs_live_count_(&env.metrics().gauge("asd.live_count")),
      index_(options.use_index,
             AsdIndexObs{obs_index_hits_, obs_scans_, obs_live_count_}) {
  // Every directory command runs concurrently against the synchronized
  // index: readers share the index lock instead of convoying behind the
  // daemon's control thread (see asd_index.hpp).
  register_command(
      CommandSpec("register", "register a service with a liveness lease")
          .arg(word_arg("name"))
          .arg(string_arg("host"))
          .arg(integer_arg("port").range(1, 65535))
          .arg(word_arg("room").optional_arg())
          .arg(string_arg("class").optional_arg())
          .arg(integer_arg("lease").optional_arg())
          .concurrent_ok(),
      [this](const CmdLine& cmd, const CallerInfo&) {
        Registration r;
        r.name = cmd.get_text("name");
        r.host = cmd.get_text("host");
        r.port = static_cast<std::uint16_t>(cmd.get_integer("port"));
        r.room = cmd.get_text("room");
        r.service_class = cmd.get_text("class");
        auto requested = std::chrono::milliseconds(
            cmd.get_integer("lease", options_.max_lease.count()));
        r.lease = std::clamp(requested, options_.min_lease, options_.max_lease);
        r.expires = std::chrono::steady_clock::now() + r.lease;
        auto granted = r.lease;
        index_.upsert(std::move(r));
        obs_registrations_->inc();
        CmdLine reply = cmdlang::make_ok();
        reply.arg("lease", static_cast<std::int64_t>(granted.count()));
        return reply;
      });

  register_command(
      CommandSpec("renew", "renew a service lease")
          .arg(word_arg("name"))
          .concurrent_ok(),
      [this](const CmdLine& cmd, const CallerInfo&) {
        obs_renew_rpcs_->inc();
        auto lease = index_.renew(cmd.get_text("name"),
                                  std::chrono::steady_clock::now());
        if (!lease)
          return cmdlang::make_error(util::Errc::not_found,
                                     "service not registered");
        obs_renewals_->inc();
        CmdLine reply = cmdlang::make_ok();
        reply.arg("expires_in", static_cast<std::int64_t>(lease->count()));
        return reply;
      });

  // One RPC per host per renewal interval instead of one per lease: a
  // DaemonHost's LeaseCoordinator sends every resident service name here
  // (daemon/lease.hpp). Per-name statuses let one lost lease trigger one
  // re-registration without failing the whole batch.
  register_command(
      CommandSpec("renewBatch", "renew many service leases in one RPC")
          .arg(vector_arg("names", ArgType::vector_string))
          .concurrent_ok(),
      [this](const CmdLine& cmd, const CallerInfo&) {
        obs_renew_rpcs_->inc();
        obs_renew_batches_->inc();
        auto now = std::chrono::steady_clock::now();
        std::vector<std::string> statuses;
        if (auto names = cmd.get_vector("names")) {
          statuses.reserve(names->elements.size());
          for (const auto& elem : names->elements) {
            if (!elem.is_string() && !elem.is_word()) continue;
            const std::string& name = elem.as_text();
            if (auto lease = index_.renew(name, now)) {
              obs_renewals_->inc();
              statuses.push_back(name + "|ok|" +
                                 std::to_string(lease->count()));
            } else {
              statuses.push_back(name + "|not_found");
            }
          }
        }
        CmdLine reply = cmdlang::make_ok();
        reply.arg("statuses", cmdlang::string_vector(std::move(statuses)));
        return reply;
      });

  register_command(
      CommandSpec("deregister", "remove a service from the directory")
          .arg(word_arg("name"))
          .concurrent_ok(),
      [this](const CmdLine& cmd, const CallerInfo&) {
        index_.erase(cmd.get_text("name"));
        obs_deregistrations_->inc();
        return cmdlang::make_ok();
      });

  register_command(
      CommandSpec("lookup", "find one service by exact name")
          .arg(word_arg("name"))
          .concurrent_ok(),
      [this](const CmdLine& cmd, const CallerInfo&) {
        obs_lookups_->inc();
        auto now = std::chrono::steady_clock::now();
        auto r = index_.find(cmd.get_text("name"));
        if (!r || r->expires < now)
          return cmdlang::make_error(util::Errc::not_found,
                                     "no such service");
        CmdLine reply = cmdlang::make_ok();
        reply.arg("name", Word{r->name});
        reply.arg("host", r->host);
        reply.arg("port", static_cast<std::int64_t>(r->port));
        reply.arg("room", r->room);
        reply.arg("class", r->service_class);
        // Remaining lease: the horizon a client-side cache may serve this
        // entry to without risking staleness beyond the lease contract.
        reply.arg("expires_in", remaining_ms(r->expires, now));
        return reply;
      });

  register_command(
      CommandSpec("query", "find services by glob patterns")
          .arg(string_arg("name").optional_arg())
          .arg(string_arg("class").optional_arg())
          .arg(string_arg("room").optional_arg())
          .concurrent_ok(),
      [this](const CmdLine& cmd, const CallerInfo&) {
        obs_queries_->inc();
        auto entries = index_.query(cmd.get_text("name", "*"),
                                    cmd.get_text("class", "*"),
                                    cmd.get_text("room", "*"),
                                    std::chrono::steady_clock::now());
        std::vector<std::string> encoded;
        encoded.reserve(entries.size());
        for (const Registration& r : entries)
          encoded.push_back(encode_entry(r));
        CmdLine reply = cmdlang::make_ok();
        reply.arg("services", cmdlang::string_vector(std::move(encoded)));
        return reply;
      });

  register_command(
      CommandSpec("count", "number of live registrations").concurrent_ok(),
      [this](const CmdLine&, const CallerInfo&) {
        CmdLine reply = cmdlang::make_ok();
        reply.arg("count", static_cast<std::int64_t>(index_.size()));
        return reply;
      });

  // Internal: executed by the reaper; exists so lease expiry flows through
  // the normal notification machinery (§2.5) for watchers. Removes the
  // entry only if it is still expired — a renewal racing the reaper wins.
  register_command(
      CommandSpec("serviceExpired", "internal lease-expiry event")
          .arg(word_arg("name"))
          .arg(string_arg("class").optional_arg())
          .arg(string_arg("host").optional_arg())
          .concurrent_ok(),
      [this](const CmdLine& cmd, const CallerInfo&) {
        if (index_.erase_expired(cmd.get_text("name"),
                                 std::chrono::steady_clock::now()))
          obs_expirations_->inc();
        return cmdlang::make_ok();
      });
}

std::string AsdDaemon::encode_entry(const Registration& r) {
  return r.name + "|" + r.host + ":" + std::to_string(r.port) + "|" + r.room +
         "|" + r.service_class;
}

util::Status AsdDaemon::on_start() {
  reaper_ = std::jthread([this](std::stop_token st) { reaper_loop(st); });
  return util::Status::ok_status();
}

void AsdDaemon::on_stop() { reaper_ = {}; }

void AsdDaemon::on_crash() {
  reaper_ = {};
  index_.clear();
}

void AsdDaemon::reaper_loop(std::stop_token st) {
  std::unique_lock lock(reaper_mu_);
  while (!st.stop_requested()) {
    // Interruptible wait: the jthread's stop request wakes this
    // immediately, so shutdown never stalls for a whole reap interval.
    reaper_cv_.wait_for(lock, st, options_.reap_interval,
                        [] { return false; });
    if (st.stop_requested()) return;
    // O(k log n): pops only the due entries off the expiry heap instead of
    // sweeping the registry.
    auto expired = index_.collect_expired(std::chrono::steady_clock::now());
    for (const Registration& r : expired) {
      CmdLine event("serviceExpired");
      event.arg("name", Word{r.name});
      event.arg("class", r.service_class);
      event.arg("host", r.host + ":" + std::to_string(r.port));
      // Runs the registered handler (removes the entry if still expired)
      // and fires any `serviceExpired` notifications.
      (void)execute(event, CallerInfo{"svc/" + config().name, address()});
      net_log("warn", "lease expired for service '" + r.name + "'");
    }
  }
}

// ----------------------------------------------------------------- client

AsdClient::AsdClient(daemon::AceClient& client, net::Address asd,
                     AsdCacheOptions cache)
    : client_(client), asd_(asd) {
  if (cache.enabled) {
    cache_ = std::make_unique<CacheState>();
    cache_->options = cache;
    cache_->hits = &client.env().metrics().counter("asd_client.cache_hits");
    cache_->misses =
        &client.env().metrics().counter("asd_client.cache_misses");
  }
}

std::optional<util::Result<ServiceLocation>> AsdClient::cache_get(
    const std::string& name) {
  auto now = std::chrono::steady_clock::now();
  std::scoped_lock lock(cache_->mu);
  auto it = cache_->entries.find(name);
  if (it == cache_->entries.end() || it->second.valid_until <= now) {
    if (it != cache_->entries.end()) cache_->entries.erase(it);
    cache_->misses->inc();
    return std::nullopt;
  }
  cache_->hits->inc();
  if (!it->second.location)
    return util::Result<ServiceLocation>(
        util::Error{util::Errc::not_found, "no such service (cached)"});
  return util::Result<ServiceLocation>(*it->second.location);
}

void AsdClient::cache_put(const std::string& name,
                          std::optional<ServiceLocation> loc,
                          std::chrono::milliseconds ttl) {
  if (ttl.count() <= 0) return;
  auto now = std::chrono::steady_clock::now();
  std::scoped_lock lock(cache_->mu);
  if (cache_->entries.size() >= cache_->options.max_entries &&
      !cache_->entries.contains(name)) {
    // Capped size: drop dead entries first, then the soonest-expiring one
    // (it carries the least remaining usefulness).
    std::erase_if(cache_->entries,
                  [&](const auto& kv) { return kv.second.valid_until <= now; });
    if (cache_->entries.size() >= cache_->options.max_entries) {
      auto victim = cache_->entries.begin();
      for (auto it = cache_->entries.begin(); it != cache_->entries.end(); ++it)
        if (it->second.valid_until < victim->second.valid_until) victim = it;
      cache_->entries.erase(victim);
    }
  }
  cache_->entries[name] = CacheEntry{std::move(loc), now + ttl};
}

void AsdClient::invalidate(const std::string& name) {
  if (!cache_) return;
  std::scoped_lock lock(cache_->mu);
  cache_->entries.erase(name);
}

void AsdClient::invalidate_all() {
  if (!cache_) return;
  std::scoped_lock lock(cache_->mu);
  cache_->entries.clear();
}

util::Result<ServiceLocation> AsdClient::lookup(const std::string& name) {
  if (cache_) {
    if (auto cached = cache_get(name)) return std::move(*cached);
  }
  CmdLine cmd("lookup");
  cmd.arg("name", Word{name});
  auto reply = client_.call(asd_, cmd, daemon::kCallOk);
  if (!reply.ok()) {
    // Negative caching: a directory miss is re-served for a short window
    // so retry storms (e.g. a crashed dependency being polled) cost one
    // RPC per negative_ttl instead of one per poll.
    if (cache_ && reply.error().code == util::Errc::not_found)
      cache_put(name, std::nullopt, cache_->options.negative_ttl);
    return reply.error();
  }
  ServiceLocation loc;
  loc.name = reply->get_text("name");
  loc.address.host = reply->get_text("host");
  loc.address.port = static_cast<std::uint16_t>(reply->get_integer("port"));
  loc.room = reply->get_text("room");
  loc.service_class = reply->get_text("class");
  if (cache_) {
    // Lease-bounded TTL: never serve the entry past the lease the
    // directory itself would hold it for. Replies without expires_in
    // (pre-v2 directories) are simply not cached.
    auto ttl = std::chrono::milliseconds(reply->get_integer("expires_in", 0));
    cache_put(name, loc, ttl);
  }
  return loc;
}

util::Result<std::vector<ServiceLocation>> AsdClient::query(
    const std::string& name_glob, const std::string& class_glob,
    const std::string& room_glob) {
  CmdLine cmd("query");
  cmd.arg("name", name_glob);
  cmd.arg("class", class_glob);
  cmd.arg("room", room_glob);
  auto reply = client_.call(asd_, cmd, daemon::kCallOk);
  if (!reply.ok()) return reply.error();
  std::vector<ServiceLocation> out;
  if (auto vec = reply->get_vector("services")) {
    for (const auto& elem : vec->elements) {
      if (!elem.is_string() && !elem.is_word()) continue;
      auto parts = util::split(elem.as_text(), '|');
      if (parts.size() != 4) continue;
      auto addr = net::Address::parse(parts[1]);
      if (!addr) continue;
      out.push_back(ServiceLocation{parts[0], *addr, parts[2], parts[3]});
    }
  }
  return out;
}

util::Result<std::chrono::milliseconds> AsdClient::register_service(
    const ServiceRegistration& registration) {
  CmdLine cmd("register");
  cmd.arg("name", Word{registration.name});
  cmd.arg("host", registration.address.host);
  cmd.arg("port", static_cast<std::int64_t>(registration.address.port));
  if (!registration.room.empty()) cmd.arg("room", Word{registration.room});
  if (!registration.service_class.empty())
    cmd.arg("class", registration.service_class);
  if (registration.lease)
    cmd.arg("lease", static_cast<std::int64_t>(registration.lease->count()));
  auto reply = client_.call(asd_, cmd, daemon::kCallOk);
  if (!reply.ok()) return reply.error();
  return std::chrono::milliseconds(reply->get_integer("lease"));
}

util::Status AsdClient::renew(const std::string& name) {
  CmdLine cmd("renew");
  cmd.arg("name", Word{name});
  auto reply = client_.call(asd_, cmd, daemon::kCallOk);
  if (!reply.ok()) return reply.error();
  return util::Status::ok_status();
}

util::Result<std::vector<RenewOutcome>> AsdClient::renew_batch(
    const std::vector<std::string>& names) {
  CmdLine cmd("renewBatch");
  cmd.arg("names", cmdlang::string_vector(names));
  auto reply = client_.call(asd_, cmd, daemon::kCallOk);
  if (!reply.ok()) return reply.error();
  std::vector<RenewOutcome> out;
  out.reserve(names.size());
  if (auto vec = reply->get_vector("statuses")) {
    for (const auto& elem : vec->elements) {
      if (!elem.is_string() && !elem.is_word()) continue;
      auto parts = util::split(elem.as_text(), '|');
      if (parts.size() < 2) continue;
      out.push_back(RenewOutcome{parts[0], parts[1] == "ok"});
    }
  }
  return out;
}

util::Status AsdClient::deregister(const std::string& name) {
  CmdLine cmd("deregister");
  cmd.arg("name", Word{name});
  auto reply = client_.call(asd_, cmd, daemon::kCallOk);
  if (!reply.ok()) return reply.error();
  return util::Status::ok_status();
}

util::Result<std::size_t> AsdClient::count() {
  auto reply = client_.call(asd_, CmdLine("count"), daemon::kCallOk);
  if (!reply.ok()) return reply.error();
  return static_cast<std::size_t>(reply->get_integer("count"));
}

}  // namespace ace::services
