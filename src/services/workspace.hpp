// WSS — Workspace Server (paper §4.5, §5.4): creates, names, tracks and
// removes user workspaces, and brings a workspace's viewer up at whatever
// access point the user was identified at (Scenarios 1, 3 and 4).
//
// The WSS manages workspace *records*; the machinery that actually hosts a
// workspace (the VNC-like server, §5.4) is pluggable via WorkspaceBackend:
// the default backend launches simulated vncserver/vncviewer processes
// through the SAL, and src/apps installs a backend backed by the real
// remote-framebuffer implementation.
//
// Command set:
//   wssCreate owner= name=?;             -> ok workspace= host= port=
//   wssDefault owner=;                   -> ok workspace= ... (get-or-create)
//   wssList owner=;                      -> ok workspaces={...}
//   wssShow workspace= location=;        -> ok   (viewer up at access point)
//   wssRemove workspace=;
#pragma once

#include <functional>
#include <map>

#include "daemon/daemon.hpp"

namespace ace::services {

struct WorkspaceBackend {
  // Creates the hosting server for owner's workspace `name`; returns where
  // it runs.
  std::function<util::Result<net::Address>(const std::string& owner,
                                           const std::string& name)>
      create;
  // Brings up a viewer of the workspace at access point `location` (a host
  // name), authenticating as `owner`.
  std::function<util::Status(const net::Address& server,
                             const std::string& location,
                             const std::string& owner)>
      show;
  std::function<void(const net::Address& server)> destroy;
};

class WssDaemon : public daemon::ServiceDaemon {
 public:
  struct WorkspaceRecord {
    std::string id;  // "owner/name"
    std::string owner;
    std::string name;
    net::Address server;
    std::string shown_at;  // last access point a viewer was opened on
  };

  WssDaemon(daemon::Environment& env, daemon::DaemonHost& host,
            daemon::DaemonConfig config);

  // Replaces the default SAL-process backend (used by src/apps to plug in
  // the real VNC implementation).
  void set_backend(WorkspaceBackend backend);

  std::optional<WorkspaceRecord> workspace(const std::string& id) const;
  std::size_t workspace_count() const;

 private:
  cmdlang::CmdLine do_create(const std::string& owner,
                             const std::string& name);
  WorkspaceBackend default_backend();

  mutable std::mutex mu_;
  WorkspaceBackend backend_;
  std::map<std::string, WorkspaceRecord> workspaces_;
};

}  // namespace ace::services
