// Gossip membership for the federated directory tier (paper Ch 9: a campus
// of rooms, not one flat directory).
//
// Each room runs its own ASD; the ASDs learn about each other through an
// anti-entropy protocol: every `gossip_interval` a room picks
// `gossip_fanout` live peers and exchanges its full membership view
// (`gossipSync`). A view entry carries three monotonic counters:
//
//   * epoch     — the room ASD's incarnation, bumped on every (re)start. A
//                 higher epoch wins wholesale: the room came back and its
//                 old registry (and anything cached from it) is gone.
//   * version   — the registry mutation counter within an epoch, bumped on
//                 register/deregister/expiry. Peers invalidate their scoped
//                 query caches for the room when it advances.
//   * heartbeat — liveness within an epoch, bumped once per local round.
//
// Failure detection is round-based: a peer whose heartbeat has not advanced
// for `suspect_after_rounds` local rounds is marked suspect, and after
// `evict_after_rounds` it is evicted — excluded from query fan-out and from
// gossip peer selection. Any heartbeat/epoch advance (seen directly or via
// a third room) resurrects it. Evicted entries are kept (not erased) so a
// stale third-party view cannot flap them back alive; only genuinely newer
// state can. One evicted room is still probed directly each round: two
// sides of a healed partition that evicted each other are invisible to one
// another through normal peer selection (evicted rooms are withheld from
// sent views too), so only the probe lets them re-knit.
//
// Rooms behind bad links register with a relay/rendezvous daemon
// (relay.hpp); their view entries advertise the relay, and both gossip
// syncs and forwarded queries to them tunnel through `relayForward` — the
// syncspirit global-discovery + relay shape.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "daemon/client.hpp"
#include "daemon/environment.hpp"
#include "net/reactor.hpp"
#include "util/rng.hpp"

namespace ace::services {

// A statically-configured peer room: where its ASD listens and, for rooms
// behind bad links, the relay to tunnel through (empty host = direct).
struct GossipPeerSeed {
  std::string room;
  net::Address address;
  net::Address relay{};
};

enum class RoomState { alive, suspect, evicted };
const char* to_string(RoomState state);

// One room's entry in the membership view. Wire encoding (one vector
// element of `gossipSync view={...}`):
//   room|host:port|relayhost:relayport or -|epoch|version|heartbeat
struct RoomView {
  std::string room;
  net::Address address;
  net::Address relay{};
  std::uint64_t epoch = 0;
  std::uint64_t version = 0;
  std::uint64_t heartbeat = 0;
  RoomState state = RoomState::alive;
};

// Everything the federation tier needs, nested in AsdOptions. Disabled by
// default: a single-room deployment pays nothing.
struct FederationOptions {
  bool enabled = false;
  std::vector<GossipPeerSeed> seeds;

  // Membership protocol knobs.
  std::chrono::milliseconds gossip_interval{100};
  int gossip_fanout = 2;
  int suspect_after_rounds = 3;
  int evict_after_rounds = 10;
  std::chrono::milliseconds sync_timeout{500};

  // Cross-room query forwarding (consumed by AsdDaemon). A query whose
  // `room` constraint is non-local (or unconstrained) fans out to live peer
  // rooms in parallel on the ops pool; per-(room, pattern) results are
  // cached for `forward_cache_ttl`, bounded by the peer's gossip
  // epoch/version (any bump invalidates).
  bool forward_queries = true;
  std::chrono::milliseconds forward_timeout{750};
  std::chrono::milliseconds forward_cache_ttl{500};
  std::size_t forward_cache_max = 1024;

  // This room's own rendezvous relay (empty host = directly reachable).
  // When set, the agent keeps a `relayRegister` lease alive at the relay
  // and advertises it in every view entry it gossips.
  net::Address relay{};
  std::chrono::milliseconds relay_lease{2000};
};

// The per-room membership agent. Owned by an AsdDaemon; rounds run as a
// repeating reactor timer chain on the ops pool (they do bounded RPCs), the
// same generation-counted shape as daemon::LeaseCoordinator.
class GossipAgent {
 public:
  GossipAgent(daemon::Environment& env, std::string self_room,
              FederationOptions options);
  ~GossipAgent();

  GossipAgent(const GossipAgent&) = delete;
  GossipAgent& operator=(const GossipAgent&) = delete;

  // (Re)starts the round chain. Bumps the incarnation epoch — a restarted
  // directory's registry is empty, so peers must drop anything cached from
  // the previous life — and re-seeds the membership map from options
  // (volatile state died with the "process").
  void start(net::Address self_address,
             std::shared_ptr<daemon::AceClient> client);

  // Cancels the round chain and waits out a round running right now.
  void stop();

  // Registry mutation hook (register/deregister/expiry): advances the
  // version peers use to invalidate their scoped caches.
  void bump_version();

  std::uint64_t epoch() const;
  std::uint64_t version() const;
  const std::string& self_room() const { return self_room_; }

  // Full view snapshot, self entry first (introspection / gossipView).
  std::vector<RoomView> view() const;

  // Live (non-evicted, non-self) rooms matching `room_glob`, for query
  // fan-out.
  std::vector<RoomView> forward_targets(const std::string& room_glob) const;

  // The (epoch, version) this agent currently believes `room` is at;
  // nullopt for unknown rooms. Scoped-cache entries are valid only while
  // this pair matches their fill-time value.
  std::optional<std::pair<std::uint64_t, std::uint64_t>> room_freshness(
      const std::string& room) const;

  // Handles an incoming `gossipSync`: merges the peer's encoded view and
  // returns our own (the reply payload). Thread-safe (concurrent_ok).
  std::vector<std::string> handle_sync(
      const std::vector<std::string>& peer_view);

  // Invoked (outside the agent lock) whenever a room's epoch or version
  // advanced — the ASD wires its forward-cache invalidation here. Set
  // before start().
  std::function<void(const std::string& room)> on_room_changed;

  static std::string encode_entry(const RoomView& v);
  static std::optional<RoomView> decode_entry(std::string_view s);

 private:
  struct Member {
    RoomView view;
    std::uint64_t last_advance_round = 0;  // local round of last heartbeat advance
  };

  void arm_locked();
  void run_round(std::uint64_t gen);
  void round();
  void register_with_relay(daemon::AceClient& client);
  std::vector<std::string> encode_view_locked() const;
  // Merge one incoming entry; appends the room to `changed` when its
  // epoch/version advanced (cache-invalidation signal).
  void merge_entry_locked(const RoomView& incoming,
                          std::vector<std::string>& changed);

  daemon::Environment& env_;
  const std::string self_room_;
  const FederationOptions options_;

  obs::Counter* obs_rounds_;
  obs::Counter* obs_syncs_;
  obs::Counter* obs_sync_failures_;
  obs::Counter* obs_merges_;
  obs::Counter* obs_suspicions_;
  obs::Counter* obs_evictions_;
  obs::Gauge* obs_live_rooms_;

  mutable std::mutex mu_;
  std::shared_ptr<daemon::AceClient> client_;
  RoomView self_;
  std::unordered_map<std::string, Member> members_;
  std::uint64_t incarnation_ = 0;  // survives restarts of this object
  std::uint64_t round_ = 0;        // local round number, resets per epoch
  util::Rng rng_;  // touched only on the round chain (serialized)

  std::uint64_t tick_gen_ = 0;
  net::Reactor::TimerId timer_ = 0;
  net::TaskGuard guard_;
};

// Sends `cmd` to a room's ASD: directly, or tunneled through `relayForward`
// when the target advertises a relay. Error replies (outer or tunneled)
// come back as util errors either way, so callers handle a relayed room
// exactly like a direct one.
util::Result<cmdlang::CmdLine> call_room(daemon::AceClient& client,
                                         const RoomView& target,
                                         const cmdlang::CmdLine& cmd,
                                         std::chrono::milliseconds timeout);

}  // namespace ace::services
