#include "services/tracking.hpp"

#include "services/asd.hpp"

namespace ace::services {

using cmdlang::CmdLine;
using cmdlang::CommandSpec;
using cmdlang::integer_arg;
using cmdlang::string_arg;
using cmdlang::Word;
using cmdlang::word_arg;
using daemon::CallerInfo;

namespace {
daemon::DaemonConfig tracker_defaults(daemon::DaemonConfig config) {
  if (config.service_class.empty())
    config.service_class = "Service/Monitor/Tracker";
  return config;
}
}  // namespace

TrackerDaemon::TrackerDaemon(daemon::Environment& env,
                             daemon::DaemonHost& host,
                             daemon::DaemonConfig config,
                             TrackerOptions options)
    : ServiceDaemon(env, host, tracker_defaults(std::move(config))),
      options_(options) {
  register_command(
      CommandSpec("trackWatchAll",
                  "subscribe to all identification devices in the ACE"),
      [this](const CmdLine&, const CallerInfo&) {
        auto n = watch_all_devices();
        if (!n.ok())
          return cmdlang::make_error(n.error().code, n.error().message);
        CmdLine reply = cmdlang::make_ok();
        reply.arg("devices", n.value());
        return reply;
      });

  register_command(
      CommandSpec("trackNotify", "notification sink for identified events")
          .arg(string_arg("source"))
          .arg(word_arg("command"))
          .arg(string_arg("detail")),
      [this](const CmdLine& cmd, const CallerInfo&) {
        auto detail = cmdlang::Parser::parse(cmd.get_text("detail"));
        if (!detail.ok() || detail->name() != "identified")
          return cmdlang::make_ok();  // ignore other events
        std::string user = detail->get_text("user");
        if (user.empty()) return cmdlang::make_ok();
        Sighting s;
        s.room = detail->get_text("room");
        s.station = detail->get_text("station");
        s.device = detail->get_text("device");
        s.at = std::chrono::steady_clock::now();
        std::scoped_lock lock(mu_);
        auto& h = history_[user];
        h.push_back(std::move(s));
        while (h.size() > options_.max_history_per_user) h.pop_front();
        return cmdlang::make_ok();
      });

  register_command(
      CommandSpec("trackWhereIs", "last known location of a user")
          .arg(word_arg("user")),
      [this](const CmdLine& cmd, const CallerInfo&) {
        std::scoped_lock lock(mu_);
        auto it = history_.find(cmd.get_text("user"));
        if (it == history_.end() || it->second.empty())
          return cmdlang::make_error(util::Errc::not_found,
                                     "user never sighted");
        const Sighting& s = it->second.back();
        CmdLine reply = cmdlang::make_ok();
        reply.arg("room", Word{s.room});
        reply.arg("station", s.station);
        reply.arg("sightings", static_cast<std::int64_t>(it->second.size()));
        return reply;
      });

  register_command(
      CommandSpec("trackHistory", "movement history of a user")
          .arg(word_arg("user"))
          .arg(integer_arg("limit").optional_arg().range(1, 1000)),
      [this](const CmdLine& cmd, const CallerInfo&) {
        std::size_t limit =
            static_cast<std::size_t>(cmd.get_integer("limit", 20));
        std::vector<std::string> rows;
        {
          std::scoped_lock lock(mu_);
          auto it = history_.find(cmd.get_text("user"));
          if (it != history_.end()) {
            for (auto rit = it->second.rbegin();
                 rit != it->second.rend() && rows.size() < limit; ++rit)
              rows.push_back(rit->room + "|" + rit->station + "|" +
                             rit->device);
          }
        }
        CmdLine reply = cmdlang::make_ok();
        reply.arg("entries", cmdlang::string_vector(std::move(rows)));
        return reply;
      });

  register_command(
      CommandSpec("trackPresent", "users last sighted in a room")
          .arg(word_arg("room")),
      [this](const CmdLine& cmd, const CallerInfo&) {
        std::string room = cmd.get_text("room");
        std::vector<std::string> users;
        {
          std::scoped_lock lock(mu_);
          for (const auto& [user, h] : history_)
            if (!h.empty() && h.back().room == room) users.push_back(user);
        }
        CmdLine reply = cmdlang::make_ok();
        reply.arg("users", cmdlang::string_vector(std::move(users)));
        return reply;
      });
}

util::Result<std::int64_t> TrackerDaemon::watch_all_devices() {
  auto devices = AsdClient(control_client(), env().asd_address).query("*", "Service/Device/Identification*", "*");
  if (!devices.ok()) return devices.error();
  std::int64_t subscribed = 0;
  for (const ServiceLocation& loc : devices.value()) {
    CmdLine sub("addNotification");
    sub.arg("command", Word{"identified"});
    sub.arg("service", address().to_string());
    sub.arg("method", Word{"trackNotify"});
    auto r = control_client().call(loc.address, sub, daemon::kCallOk);
    if (r.ok()) ++subscribed;
  }
  return subscribed;
}

std::optional<TrackerDaemon::Sighting> TrackerDaemon::last_sighting(
    const std::string& user) const {
  std::scoped_lock lock(mu_);
  auto it = history_.find(user);
  if (it == history_.end() || it->second.empty()) return std::nullopt;
  return it->second.back();
}

std::size_t TrackerDaemon::tracked_users() const {
  std::scoped_lock lock(mu_);
  return history_.size();
}

}  // namespace ace::services
