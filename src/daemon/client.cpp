#include "daemon/client.hpp"

namespace ace::daemon {

namespace {
// Argument understood by every ServiceDaemon: suppresses the reply frame so
// fire-and-forget sends do not desynchronise the request/reply channel.
constexpr const char* kNoReplyArg = "_noreply";
}  // namespace

AceClient::AceClient(Environment& env, net::Host& from_host,
                     crypto::Identity identity)
    : env_(env), host_(from_host), identity_(std::move(identity)) {}

util::Result<std::shared_ptr<AceClient::ChannelEntry>> AceClient::entry_for(
    const net::Address& to) {
  std::scoped_lock lock(mu_);
  auto& slot = channels_[to];
  if (!slot) slot = std::make_shared<ChannelEntry>();
  return slot;
}

// Establishes the channel if needed. Caller must hold entry->call_mu.
util::Status AceClient::ensure_channel_locked(ChannelEntry& entry,
                                              const net::Address& to) {
  if (entry.channel && !entry.channel->closed())
    return util::Status::ok_status();
  auto conn = host_.connect(to, env_.default_timeout);
  if (!conn.ok()) return conn.error();
  auto ch = crypto::SecureChannel::connect(std::move(conn.value()), identity_,
                                           env_.ca_key(), env_.default_timeout,
                                           env_.channel_options());
  if (!ch.ok()) return ch.error();
  entry.channel =
      std::make_shared<crypto::SecureChannel>(std::move(ch.value()));
  return util::Status::ok_status();
}

util::Result<cmdlang::CmdLine> AceClient::call(const net::Address& to,
                                               const cmdlang::CmdLine& cmd) {
  return call(to, cmd, env_.default_timeout);
}

util::Result<cmdlang::CmdLine> AceClient::call(
    const net::Address& to, const cmdlang::CmdLine& cmd,
    std::chrono::milliseconds timeout) {
  std::string wire = cmd.to_string();
  for (int attempt = 0; attempt < 2; ++attempt) {
    auto entry = entry_for(to);
    if (!entry.ok()) return entry.error();
    std::scoped_lock call_lock((*entry)->call_mu);
    if (auto s = ensure_channel_locked(**entry, to); !s.ok())
      return s.error();
    auto channel = (*entry)->channel;
    auto send = channel->send(util::to_bytes(wire));
    if (!send.ok()) {
      channel->close();
      continue;  // stale cached channel: reconnect once
    }
    auto reply = channel->recv(timeout);
    if (!reply) {
      channel->close();
      if (attempt == 0) continue;
      return util::Error{util::Errc::timeout,
                         "no reply from " + to.to_string() + " for '" +
                             cmd.name() + "'"};
    }
    return cmdlang::Parser::parse(util::to_string(*reply));
  }
  return util::Error{util::Errc::unavailable,
                     "cannot reach " + to.to_string()};
}

util::Result<cmdlang::CmdLine> AceClient::call_ok(const net::Address& to,
                                                  const cmdlang::CmdLine& cmd) {
  auto reply = call(to, cmd);
  if (!reply.ok()) return reply;
  if (cmdlang::is_error(reply.value()))
    return cmdlang::reply_error(reply.value());
  return reply;
}

util::Status AceClient::send_only(const net::Address& to,
                                  const cmdlang::CmdLine& cmd) {
  cmdlang::CmdLine marked = cmd;
  marked.arg(kNoReplyArg, 1);
  auto entry = entry_for(to);
  if (!entry.ok()) return entry.error();
  std::scoped_lock call_lock((*entry)->call_mu);
  if (auto s = ensure_channel_locked(**entry, to); !s.ok()) return s;
  auto s = (*entry)->channel->send(util::to_bytes(marked.to_string()));
  if (!s.ok()) (*entry)->channel->close();
  return s;
}

void AceClient::drop_connection(const net::Address& to) {
  std::shared_ptr<ChannelEntry> entry;
  {
    std::scoped_lock lock(mu_);
    auto it = channels_.find(to);
    if (it == channels_.end()) return;
    entry = it->second;
    channels_.erase(it);
  }
  std::scoped_lock call_lock(entry->call_mu);
  if (entry->channel) entry->channel->close();
}

void AceClient::close_all() {
  std::map<net::Address, std::shared_ptr<ChannelEntry>> entries;
  {
    std::scoped_lock lock(mu_);
    entries.swap(channels_);
  }
  for (auto& [addr, entry] : entries) {
    std::scoped_lock call_lock(entry->call_mu);
    if (entry->channel) entry->channel->close();
  }
}

}  // namespace ace::daemon
