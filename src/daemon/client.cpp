#include "daemon/client.hpp"

#include <algorithm>

#include "daemon/wire.hpp"

namespace ace::daemon {

namespace {

// Transport-level failure: the destination was unreachable or the exchange
// died under us. These retry (with backoff) and feed the circuit breaker;
// anything else is a caller/protocol problem that retrying cannot fix.
bool transport_errc(util::Errc code) {
  return code == util::Errc::closed || code == util::Errc::io_error ||
         code == util::Errc::timeout || code == util::Errc::unavailable ||
         code == util::Errc::refused;
}

// Decorrelates the jitter streams of clients that share a process.
std::uint64_t next_jitter_seed() {
  static std::atomic<std::uint64_t> counter{0x51ed2701u};
  return counter.fetch_add(0x9e3779b97f4a7c15ULL, std::memory_order_relaxed);
}

}  // namespace

void AceClient::complete(PendingCall& slot, util::Result<cmdlang::CmdLine> r) {
  std::scoped_lock lk(slot.mu);
  if (!slot.result) slot.result.emplace(std::move(r));
  slot.cv.notify_all();
}

AceClient::AceClient(Environment& env, net::Host& from_host,
                     crypto::Identity identity)
    : env_(env),
      host_(from_host),
      identity_(std::move(identity)),
      jitter_rng_(next_jitter_seed()),
      calls_(&env.metrics().counter("client.calls")),
      reconnects_(&env.metrics().counter("client.reconnects")),
      retries_(&env.metrics().counter("client.retries")),
      timeouts_(&env.metrics().counter("client.timeouts")),
      errors_(&env.metrics().counter("client.errors")),
      breaker_trips_(&env.metrics().counter("client.breaker_trips")),
      breaker_rejected_(&env.metrics().counter("client.breaker_rejected")),
      breaker_closes_(&env.metrics().counter("client.breaker_closes")),
      inflight_(&env.metrics().gauge("client.inflight")),
      breaker_open_(&env.metrics().gauge("client.breaker_open")) {}

AceClient::~AceClient() {
  // Unarm the idle sweeper first: its tasks capture `this` raw, so revoke
  // waits out any sweep already running before members start dying.
  net::Reactor::TimerId timer;
  {
    std::scoped_lock lock(policy_mu_);
    timer = std::exchange(sweep_timer_, 0);
  }
  if (timer) env_.reactor().cancel(timer);
  sweep_guard_.revoke();
  close_all();
}

void AceClient::set_policy(ClientPolicy policy) {
  std::scoped_lock lock(policy_mu_);
  const bool was_armed = policy_.idle_channel_ttl.count() > 0;
  policy_ = policy;
  protocol_offer_.store(policy.protocol_offer, std::memory_order_relaxed);
  const bool arm = policy.idle_channel_ttl.count() > 0;
  if (arm && sweep_timer_ == 0) {
    sweep_timer_ = env_.reactor().post_after(
        policy.idle_channel_ttl,
        sweep_guard_.wrap([this] { sweep_idle_channels(); }),
        /*blocking=*/true);
  } else if (!arm && was_armed) {
    auto timer = std::exchange(sweep_timer_, 0);
    if (timer) env_.reactor().cancel(timer);
  }
}

ClientPolicy AceClient::policy() const {
  std::scoped_lock lock(policy_mu_);
  return policy_;
}

void AceClient::sweep_idle_channels() {
  const auto ttl = policy().idle_channel_ttl;
  if (ttl.count() <= 0) return;  // policy changed under the timer
  const auto now = std::chrono::steady_clock::now();
  std::vector<std::pair<net::Address, std::shared_ptr<ChannelEntry>>> stale;
  {
    std::scoped_lock lock(mu_);
    for (auto it = channels_.begin(); it != channels_.end();) {
      auto& [addr, entry] = *it;
      bool idle;
      {
        std::scoped_lock lk(entry->mu);
        idle = entry->pending.empty() && now - entry->last_used > ttl;
      }
      if (idle) {
        stale.emplace_back(addr, entry);
        it = channels_.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (auto& [addr, entry] : stale) shutdown_entry(entry);
  if (!stale.empty())
    env_.metrics().counter("client.idle_closed").inc(stale.size());
  // Re-arm (repeating chain). Checked against a concurrent set_policy
  // disarm: only re-arm while a timer id is expected to be live.
  std::scoped_lock lock(policy_mu_);
  if (policy_.idle_channel_ttl.count() > 0)
    sweep_timer_ = env_.reactor().post_after(
        policy_.idle_channel_ttl,
        sweep_guard_.wrap([this] { sweep_idle_channels(); }),
        /*blocking=*/true);
  else
    sweep_timer_ = 0;
}

std::shared_ptr<AceClient::ChannelEntry> AceClient::entry_for(
    const net::Address& to) {
  std::scoped_lock lock(mu_);
  auto& slot = channels_[to];
  if (!slot) slot = std::make_shared<ChannelEntry>();
  return slot;
}

// Establishes the channel if needed. Caller must hold entry->mu.
util::Status AceClient::ensure_channel_locked(
    const std::shared_ptr<ChannelEntry>& entry, const net::Address& to) {
  // A shut-down entry is already unlinked from channels_; refusing to
  // reconnect here sends the caller back through entry_for (the error is
  // retryable), which hands out a fresh entry.
  if (entry->closed)
    return {util::Errc::closed, "connection to " + to.to_string() + " dropped"};
  if (entry->channel && !entry->channel->closed())
    return util::Status::ok_status();
  // Replacing a dead channel orphans whatever was still pending on it.
  // (Its demux pump is left to self-terminate: the dead channel delivers
  // the pump's final callback, which sees a non-matching entry->channel
  // and does nothing. Stopping it here would deadlock — stop() waits for
  // the handler, and the handler takes entry->mu, which we hold.)
  if (!entry->pending.empty())
    fail_pending_locked(*entry, util::Error{util::Errc::closed,
                                            "channel to " + to.to_string() +
                                                " died mid-call"});
  auto conn = host_.connect(to, env_.default_timeout);
  if (!conn.ok()) return conn.error();
  auto options = env_.channel_options();
  if (auto offer = protocol_offer_.load(std::memory_order_relaxed); offer != 0)
    options.protocol = offer;
  auto ch = crypto::SecureChannel::connect(std::move(conn.value()), identity_,
                                           env_.ca_key(), env_.default_timeout,
                                           options);
  if (!ch.ok()) return ch.error();
  entry->channel =
      std::make_shared<crypto::SecureChannel>(std::move(ch.value()));
  // v2 replies are demultiplexed by a reactor pump on the new channel; a
  // v1 channel's unframed replies are consumed synchronously by
  // exchange_v1, so it must NOT have a pump competing for them.
  if (entry->channel->negotiated_version() >= wire::kProtocolV2) {
    auto channel = entry->channel;
    entry->demux = channel->on_frame(
        env_.reactor(),
        [this, entry, channel](std::optional<net::Frame> frame) {
          handle_reply(entry, channel, std::move(frame));
        });
  }
  return util::Status::ok_status();
}

// Demux: routes reply frames off one channel generation to their call-id's
// completion slot, and fails that generation's in-flight calls when the
// channel dies. Replaces the per-destination reader thread; runs on a
// reactor core worker.
void AceClient::handle_reply(
    const std::shared_ptr<ChannelEntry>& entry,
    const std::shared_ptr<crypto::SecureChannel>& channel,
    std::optional<net::Frame> frame) {
  if (!frame) {
    // Channel closed and drained (terminal: the pump stops itself). Only
    // fail pending calls still belonging to this generation — a reconnect
    // may already have swapped a live channel in.
    std::scoped_lock lk(entry->mu);
    if (entry->channel == channel && !entry->pending.empty())
      fail_pending_locked(
          *entry, util::Error{util::Errc::closed, "channel died mid-call"});
    return;
  }
  auto decoded = wire::decode_frame(*frame);
  if (!decoded) return;  // malformed reply frame: drop
  std::shared_ptr<PendingCall> slot;
  {
    std::scoped_lock lk(entry->mu);
    auto it = entry->pending.find(decoded->call_id);
    if (it != entry->pending.end()) {
      slot = std::move(it->second);
      entry->pending.erase(it);
      inflight_->add(-1);
    }
  }
  if (!slot) return;  // late reply for a withdrawn call: drop
  complete(*slot, cmdlang::Parser::parse(decoded->body));
}

// Caller must hold entry.mu.
void AceClient::fail_pending_locked(ChannelEntry& entry,
                                    const util::Error& error) {
  for (auto& [id, slot] : entry.pending) complete(*slot, error);
  inflight_->add(-static_cast<std::int64_t>(entry.pending.size()));
  entry.pending.clear();
}

util::Result<cmdlang::CmdLine> AceClient::call(const net::Address& to,
                                               const cmdlang::CmdLine& cmd,
                                               const CallOptions& options) {
  obs::Span span(env_.metrics(), "client", "call");
  calls_->inc();
  const auto timeout = options.timeout.value_or(env_.default_timeout);
  const int attempts = options.retries < 0 ? 1 : options.retries + 1;
  const std::string wire_text = cmd.to_string();
  for (int attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) {
      reconnects_->inc();
      retries_->inc();
      backoff_sleep(options, attempt);
    }
    auto entry = entry_for(to);
    bool probe = false;
    if (auto admitted = breaker_admit(*entry, to, probe); !admitted.ok()) {
      span.fail();
      errors_->inc();
      return admitted.error();
    }

    std::shared_ptr<crypto::SecureChannel> channel;
    std::shared_ptr<PendingCall> slot;
    std::uint64_t call_id = 0;
    std::optional<util::Error> connect_error;
    {
      std::scoped_lock lk(entry->mu);
      entry->last_used = std::chrono::steady_clock::now();
      if (auto s = ensure_channel_locked(entry, to); !s.ok()) {
        connect_error = s.error();
      } else {
        channel = entry->channel;
        if (channel->negotiated_version() >= wire::kProtocolV2) {
          call_id = entry->next_call_id++;
          slot = std::make_shared<PendingCall>();
          entry->pending.emplace(call_id, slot);
          inflight_->add(1);
        }
      }
    }
    auto reply =
        connect_error
            ? util::Result<cmdlang::CmdLine>(*connect_error)
        : slot ? exchange_v2(*entry, channel, call_id, slot, wire_text,
                             timeout, cmd.name(), to)
               : exchange_v1(*entry, channel, wire_text, timeout, cmd.name(),
                             to);
    if (!reply.ok()) {
      const auto code = reply.error().code;
      const bool retryable = transport_errc(code);
      // Only transport faults feed the breaker; if this failure opened it,
      // stop burning the remaining retries against a known-dead peer.
      const bool open_now =
          retryable && breaker_record_failure(*entry, probe);
      if (retryable && !open_now && attempt + 1 < attempts) continue;
      span.fail();
      if (code == util::Errc::timeout) {
        timeouts_->inc();
        return reply;
      }
      errors_->inc();
      if (code == util::Errc::closed ||
          code == util::Errc::io_error)  // exhausted reconnect attempts
        return util::Error{util::Errc::unavailable,
                           "cannot reach " + to.to_string()};
      return reply;
    }
    breaker_record_success(*entry, probe);
    if (options.require_ok && cmdlang::is_error(reply.value())) {
      span.fail();
      errors_->inc();
      return cmdlang::reply_error(reply.value());
    }
    return reply;
  }
  span.fail();
  errors_->inc();
  return util::Error{util::Errc::unavailable,
                     "cannot reach " + to.to_string()};
}

util::Status AceClient::breaker_admit(ChannelEntry& entry,
                                      const net::Address& to, bool& probe) {
  std::scoped_lock lk(entry.mu);
  if (!entry.breaker_open) return util::Status::ok_status();
  const auto now = std::chrono::steady_clock::now();
  if (now < entry.open_until || entry.probe_inflight) {
    breaker_rejected_->inc();
    return {util::Errc::unavailable,
            "circuit breaker open for " + to.to_string()};
  }
  // Cooldown over: this call becomes the single half-open probe.
  entry.probe_inflight = true;
  probe = true;
  return util::Status::ok_status();
}

bool AceClient::breaker_record_failure(ChannelEntry& entry, bool probe) {
  const BreakerPolicy breaker = policy().breaker;
  std::scoped_lock lk(entry.mu);
  ++entry.consecutive_failures;
  if (probe) entry.probe_inflight = false;
  const auto now = std::chrono::steady_clock::now();
  if (entry.breaker_open) {
    // Failed half-open probe (or a straggler admitted before the trip):
    // re-arm the cooldown.
    entry.open_until = now + breaker.cooldown;
    return true;
  }
  if (breaker.failure_threshold > 0 &&
      entry.consecutive_failures >= breaker.failure_threshold) {
    entry.breaker_open = true;
    entry.open_until = now + breaker.cooldown;
    breaker_trips_->inc();
    breaker_open_->add(1);
    return true;
  }
  return false;
}

void AceClient::breaker_record_success(ChannelEntry& entry, bool probe) {
  std::scoped_lock lk(entry.mu);
  if (probe) entry.probe_inflight = false;
  entry.consecutive_failures = 0;
  if (entry.breaker_open) {
    entry.breaker_open = false;
    breaker_closes_->inc();
    breaker_open_->add(-1);
  }
}

void AceClient::backoff_sleep(const CallOptions& options, int attempt) {
  std::chrono::milliseconds base{}, cap{};
  {
    std::scoped_lock lock(policy_mu_);
    base = options.backoff.value_or(policy_.backoff);
    cap = options.backoff_cap.value_or(policy_.backoff_cap);
  }
  if (base.count() <= 0) return;
  const int exponent = std::min(attempt - 1, 16);
  auto delay = base * (std::int64_t{1} << exponent);
  if (cap.count() > 0 && delay > cap) delay = cap;
  double jitter;
  {
    std::scoped_lock lk(jitter_mu_);
    jitter = 0.5 + jitter_rng_.next_double();  // uniform [0.5, 1.5)
  }
  std::this_thread::sleep_for(
      std::chrono::duration<double, std::milli>(
          static_cast<double>(delay.count()) * jitter));
}

// v1 peer: the channel carries bare command text with no demux header, so
// the whole round trip is serialized under call_mu exactly as before v2.
util::Result<cmdlang::CmdLine> AceClient::exchange_v1(
    ChannelEntry& entry, const std::shared_ptr<crypto::SecureChannel>& ch,
    const std::string& wire_text, std::chrono::milliseconds timeout,
    const std::string& verb, const net::Address& to) {
  std::scoped_lock call_lock(entry.call_mu);
  if (auto s = ch->send(util::to_bytes(wire_text)); !s.ok()) {
    ch->close();
    return util::Error{util::Errc::closed,
                       "stale channel to " + to.to_string()};
  }
  auto reply = ch->recv(timeout);
  if (!reply) {
    // No way to tell a late reply from the next call's reply without
    // call-ids, so the channel cannot be reused after a timeout.
    ch->close();
    return util::Error{util::Errc::timeout, "no reply from " + to.to_string() +
                                                " for '" + verb + "'"};
  }
  return cmdlang::Parser::parse(*reply);
}

// v2 peer: send the framed request without holding any entry-wide lock
// across the round trip, then park on the completion slot until the demux
// reader resolves it (or the deadline passes).
util::Result<cmdlang::CmdLine> AceClient::exchange_v2(
    ChannelEntry& entry, const std::shared_ptr<crypto::SecureChannel>& ch,
    std::uint64_t call_id, const std::shared_ptr<PendingCall>& slot,
    const std::string& wire_text, std::chrono::milliseconds timeout,
    const std::string& verb, const net::Address& to) {
  if (auto s = ch->send(wire::encode_frame(call_id, 0, wire_text)); !s.ok()) {
    ch->close();
    std::scoped_lock lk(entry.mu);
    if (entry.pending.erase(call_id) > 0) inflight_->add(-1);
    return util::Error{util::Errc::closed,
                       "stale channel to " + to.to_string()};
  }
  {
    std::unique_lock lk(slot->mu);
    if (slot->cv.wait_for(lk, timeout, [&] { return slot->result.has_value(); }))
      return std::move(*slot->result);
  }
  // Deadline passed: withdraw the slot so a late reply is dropped by the
  // reader. The channel stays open — unlike v1, call-ids make a late reply
  // harmless, and other calls are still in flight on it.
  {
    std::scoped_lock lk(entry.mu);
    if (entry.pending.erase(call_id) > 0) inflight_->add(-1);
  }
  {
    std::scoped_lock lk(slot->mu);
    if (slot->result)  // reply landed while we were withdrawing
      return std::move(*slot->result);
  }
  return util::Error{util::Errc::timeout, "no reply from " + to.to_string() +
                                              " for '" + verb + "'"};
}

util::Status AceClient::send_only(const net::Address& to,
                                  const cmdlang::CmdLine& cmd) {
  auto entry = entry_for(to);
  std::shared_ptr<crypto::SecureChannel> channel;
  {
    std::scoped_lock lk(entry->mu);
    entry->last_used = std::chrono::steady_clock::now();
    if (auto s = ensure_channel_locked(entry, to); !s.ok()) {
      errors_->inc();
      return s;
    }
    channel = entry->channel;
  }
  util::Status s = util::Status::ok_status();
  if (channel->negotiated_version() >= wire::kProtocolV2) {
    // The noreply marker is a frame flag under v2: no CmdLine copy, and the
    // call-id is unused because no reply will ever reference it.
    s = channel->send(wire::encode_frame(0, wire::kFlagNoReply,
                                         cmd.to_string()));
  } else {
    cmdlang::CmdLine marked = cmd;
    marked.arg(wire::kNoReplyArg, 1);
    std::scoped_lock call_lock(entry->call_mu);
    s = channel->send(util::to_bytes(marked.to_string()));
  }
  if (!s.ok()) {
    channel->close();
    errors_->inc();
  }
  return s;
}

// Closes the entry's channel, fails its in-flight calls, and stops its
// demux pump. The entry must already be unlinked from channels_. The
// Subscription is moved out under entry.mu and stopped only after the lock
// is released: stop() waits for an in-flight handler, and the handler
// takes entry.mu.
void AceClient::shutdown_entry(const std::shared_ptr<ChannelEntry>& entry) {
  net::Subscription demux;
  {
    std::scoped_lock lk(entry->mu);
    entry->closed = true;
    if (entry->channel) entry->channel->close();
    entry->channel.reset();
    fail_pending_locked(
        *entry, util::Error{util::Errc::closed, "connection dropped"});
    if (entry->breaker_open) {  // keep the open-breaker gauge honest
      entry->breaker_open = false;
      breaker_open_->add(-1);
    }
    demux = std::move(entry->demux);
  }
  demux.stop();
}

void AceClient::drop_connection(const net::Address& to) {
  std::shared_ptr<ChannelEntry> entry;
  {
    std::scoped_lock lock(mu_);
    auto it = channels_.find(to);
    if (it == channels_.end()) return;
    entry = it->second;
    channels_.erase(it);
  }
  shutdown_entry(entry);
}

void AceClient::close_all() {
  std::map<net::Address, std::shared_ptr<ChannelEntry>> entries;
  {
    std::scoped_lock lock(mu_);
    entries.swap(channels_);
  }
  for (auto& [addr, entry] : entries) shutdown_entry(entry);
}

}  // namespace ace::daemon
