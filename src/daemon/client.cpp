#include "daemon/client.hpp"

namespace ace::daemon {

namespace {
// Argument understood by every ServiceDaemon: suppresses the reply frame so
// fire-and-forget sends do not desynchronise the request/reply channel.
constexpr const char* kNoReplyArg = "_noreply";
}  // namespace

AceClient::AceClient(Environment& env, net::Host& from_host,
                     crypto::Identity identity)
    : env_(env),
      host_(from_host),
      identity_(std::move(identity)),
      calls_(&env.metrics().counter("client.calls")),
      reconnects_(&env.metrics().counter("client.reconnects")),
      timeouts_(&env.metrics().counter("client.timeouts")),
      errors_(&env.metrics().counter("client.errors")) {}

util::Result<std::shared_ptr<AceClient::ChannelEntry>> AceClient::entry_for(
    const net::Address& to) {
  std::scoped_lock lock(mu_);
  auto& slot = channels_[to];
  if (!slot) slot = std::make_shared<ChannelEntry>();
  return slot;
}

// Establishes the channel if needed. Caller must hold entry->call_mu.
util::Status AceClient::ensure_channel_locked(ChannelEntry& entry,
                                              const net::Address& to) {
  if (entry.channel && !entry.channel->closed())
    return util::Status::ok_status();
  auto conn = host_.connect(to, env_.default_timeout);
  if (!conn.ok()) return conn.error();
  auto ch = crypto::SecureChannel::connect(std::move(conn.value()), identity_,
                                           env_.ca_key(), env_.default_timeout,
                                           env_.channel_options());
  if (!ch.ok()) return ch.error();
  entry.channel =
      std::make_shared<crypto::SecureChannel>(std::move(ch.value()));
  return util::Status::ok_status();
}

util::Result<cmdlang::CmdLine> AceClient::call(const net::Address& to,
                                               const cmdlang::CmdLine& cmd,
                                               const CallOptions& options) {
  obs::Span span(env_.metrics(), "client", "call");
  calls_->inc();
  const auto timeout = options.timeout.value_or(env_.default_timeout);
  const int attempts = options.retries < 0 ? 1 : options.retries + 1;
  std::string wire = cmd.to_string();
  for (int attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) reconnects_->inc();
    auto entry = entry_for(to);
    if (!entry.ok()) {
      span.fail();
      errors_->inc();
      return entry.error();
    }
    std::scoped_lock call_lock((*entry)->call_mu);
    if (auto s = ensure_channel_locked(**entry, to); !s.ok()) {
      span.fail();
      errors_->inc();
      return s.error();
    }
    auto channel = (*entry)->channel;
    auto send = channel->send(util::to_bytes(wire));
    if (!send.ok()) {
      channel->close();
      continue;  // stale cached channel: reconnect
    }
    auto reply = channel->recv(timeout);
    if (!reply) {
      channel->close();
      if (attempt + 1 < attempts) continue;
      span.fail();
      timeouts_->inc();
      return util::Error{util::Errc::timeout,
                         "no reply from " + to.to_string() + " for '" +
                             cmd.name() + "'"};
    }
    auto parsed = cmdlang::Parser::parse(util::to_string(*reply));
    if (!parsed.ok()) {
      span.fail();
      errors_->inc();
      return parsed;
    }
    if (options.require_ok && cmdlang::is_error(parsed.value())) {
      span.fail();
      errors_->inc();
      return cmdlang::reply_error(parsed.value());
    }
    return parsed;
  }
  span.fail();
  errors_->inc();
  return util::Error{util::Errc::unavailable,
                     "cannot reach " + to.to_string()};
}

util::Status AceClient::send_only(const net::Address& to,
                                  const cmdlang::CmdLine& cmd) {
  cmdlang::CmdLine marked = cmd;
  marked.arg(kNoReplyArg, 1);
  auto entry = entry_for(to);
  if (!entry.ok()) return entry.error();
  std::scoped_lock call_lock((*entry)->call_mu);
  if (auto s = ensure_channel_locked(**entry, to); !s.ok()) return s;
  auto s = (*entry)->channel->send(util::to_bytes(marked.to_string()));
  if (!s.ok()) (*entry)->channel->close();
  return s;
}

void AceClient::drop_connection(const net::Address& to) {
  std::shared_ptr<ChannelEntry> entry;
  {
    std::scoped_lock lock(mu_);
    auto it = channels_.find(to);
    if (it == channels_.end()) return;
    entry = it->second;
    channels_.erase(it);
  }
  std::scoped_lock call_lock(entry->call_mu);
  if (entry->channel) entry->channel->close();
}

void AceClient::close_all() {
  std::map<net::Address, std::shared_ptr<ChannelEntry>> entries;
  {
    std::scoped_lock lock(mu_);
    entries.swap(channels_);
  }
  for (auto& [addr, entry] : entries) {
    std::scoped_lock call_lock(entry->call_mu);
    if (entry->channel) entry->channel->close();
  }
}

}  // namespace ace::daemon
