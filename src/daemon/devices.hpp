// The device branch of the ACE service daemon hierarchy (paper §2.3 Fig 6):
//
//   Service -> Device -> PTZCamera -> {VCC3, VCC4}
//                     -> Projector -> {Epson7350}
//
// "child nodes inherit methods, characteristics, and actions from the
//  parent nodes" — expressed here with C++ inheritance: DeviceDaemon adds
// power control to the base Service commands; PtzCameraDaemon adds
// pan/tilt/zoom; model subclasses only adjust their motion-envelope specs.
// Devices are simulated hardware: each daemon drives a small state machine
// standing in for the serial-controlled unit the paper's JNI wrappers spoke
// to (see DESIGN.md substitutions).
#pragma once

#include <mutex>

#include "daemon/daemon.hpp"

namespace ace::daemon {

// Adds deviceOn / deviceOff / deviceStatus to the base Service commands.
class DeviceDaemon : public ServiceDaemon {
 public:
  DeviceDaemon(Environment& env, DaemonHost& host, DaemonConfig config);

  bool powered() const;

 protected:
  // Subclass hook invoked on power transitions.
  virtual void on_power(bool on) { (void)on; }

  // Guards all simulated device state in this hierarchy.
  mutable std::mutex device_mu_;
  bool powered_ = false;
};

// Motion and optics envelope of a concrete camera model.
struct PtzModelSpec {
  std::string model;        // "VCC3" / "VCC4"
  double pan_min = -90.0;   // degrees
  double pan_max = 90.0;
  double tilt_min = -30.0;
  double tilt_max = 30.0;
  double zoom_min = 1.0;
  double zoom_max = 10.0;
  double degrees_per_second = 90.0;  // slew rate (affects move latency)
  std::vector<std::int64_t> frame_rates{5, 15, 30};
  std::vector<std::string> resolutions{"320x240", "640x480"};
};

// PTZ camera (§1.2's control GUI drives exactly these parameters: x/y/z
// position, resolution, frame rate, zoom, on/off).
class PtzCameraDaemon : public DeviceDaemon {
 public:
  PtzCameraDaemon(Environment& env, DaemonHost& host, DaemonConfig config,
                  PtzModelSpec spec);

  struct PtzState {
    double pan = 0.0;
    double tilt = 0.0;
    double zoom = 1.0;
    std::int64_t frame_rate = 15;
    std::string resolution = "640x480";
  };
  PtzState ptz_state() const;
  const PtzModelSpec& model() const { return spec_; }

  // True while the simulated head is still slewing to its last target
  // (the model's degrees_per_second bounds how fast it moves; ptzGet
  // reports moving=yes until the ETA passes).
  bool moving() const;

 private:
  // Called with device_mu_ held: start a slew to (pan, tilt).
  void begin_slew_locked(double pan, double tilt);

  PtzModelSpec spec_;
  PtzState state_;
  std::chrono::steady_clock::time_point slew_done_{};
};

// Canon VCC3: narrower envelope, slower slew.
PtzModelSpec vcc3_spec();
// Canon VCC4: wider envelope, faster slew, higher zoom.
PtzModelSpec vcc4_spec();

struct ProjectorModelSpec {
  std::string model;  // "Epson7350"
  std::vector<std::string> inputs{"vga", "video", "network"};
  int max_brightness = 100;
};

class ProjectorDaemon : public DeviceDaemon {
 public:
  ProjectorDaemon(Environment& env, DaemonHost& host, DaemonConfig config,
                  ProjectorModelSpec spec);

  struct ProjectorState {
    std::string input = "vga";
    int brightness = 80;
    std::string source_service;  // e.g. workspace or camera being displayed
    bool picture_in_picture = false;
    std::string pip_source;
  };
  ProjectorState projector_state() const;

 private:
  ProjectorModelSpec spec_;
  ProjectorState state_;
};

ProjectorModelSpec epson7350_spec();

}  // namespace ace::daemon
