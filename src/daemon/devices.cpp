#include "daemon/devices.hpp"

#include <algorithm>
#include <cmath>

namespace ace::daemon {

using cmdlang::CmdLine;
using cmdlang::CommandSpec;
using cmdlang::Word;

namespace {
DaemonConfig device_defaults(DaemonConfig config) {
  if (config.service_class.empty()) config.service_class = "Service/Device";
  return config;
}
DaemonConfig camera_defaults(DaemonConfig config, const PtzModelSpec& spec) {
  if (config.service_class.empty())
    config.service_class = "Service/Device/PTZCamera/" + spec.model;
  return config;
}
DaemonConfig projector_defaults(DaemonConfig config,
                                const ProjectorModelSpec& spec) {
  if (config.service_class.empty())
    config.service_class = "Service/Device/Projector/" + spec.model;
  return config;
}
}  // namespace

DeviceDaemon::DeviceDaemon(Environment& env, DaemonHost& host,
                           DaemonConfig config)
    : ServiceDaemon(env, host, device_defaults(std::move(config))) {
  register_command(
      CommandSpec("deviceOn", "power the device on"),
      [this](const CmdLine&, const CallerInfo&) {
        {
          std::scoped_lock lock(device_mu_);
          powered_ = true;
        }
        on_power(true);
        return cmdlang::make_ok();
      });
  register_command(
      CommandSpec("deviceOff", "power the device off"),
      [this](const CmdLine&, const CallerInfo&) {
        {
          std::scoped_lock lock(device_mu_);
          powered_ = false;
        }
        on_power(false);
        return cmdlang::make_ok();
      });
  register_command(
      CommandSpec("deviceStatus", "report power state"),
      [this](const CmdLine&, const CallerInfo&) {
        CmdLine reply = cmdlang::make_ok();
        std::scoped_lock lock(device_mu_);
        reply.arg("powered", Word{powered_ ? "on" : "off"});
        return reply;
      });
}

bool DeviceDaemon::powered() const {
  std::scoped_lock lock(device_mu_);
  return powered_;
}

// ----------------------------------------------------------------- PTZ camera

PtzCameraDaemon::PtzCameraDaemon(Environment& env, DaemonHost& host,
                                 DaemonConfig config, PtzModelSpec spec)
    : DeviceDaemon(env, host, camera_defaults(std::move(config), spec)),
      spec_(std::move(spec)) {
  using cmdlang::integer_arg;
  using cmdlang::real_arg;
  using cmdlang::string_arg;

  register_command(
      CommandSpec("ptzMove", "slew the camera to pan/tilt/zoom")
          .arg(real_arg("pan").range_real(spec_.pan_min, spec_.pan_max))
          .arg(real_arg("tilt").range_real(spec_.tilt_min, spec_.tilt_max))
          .arg(real_arg("zoom")
                   .range_real(spec_.zoom_min, spec_.zoom_max)
                   .optional_arg()),
      [this](const CmdLine& cmd, const CallerInfo&) {
        std::scoped_lock lock(device_mu_);
        if (!powered_)
          return cmdlang::make_error(util::Errc::invalid, "camera is off");
        begin_slew_locked(cmd.get_real("pan"), cmd.get_real("tilt"));
        if (cmd.has("zoom")) state_.zoom = cmd.get_real("zoom");
        return cmdlang::make_ok();
      });

  register_command(
      CommandSpec("ptzGet", "report current pan/tilt/zoom"),
      [this](const CmdLine&, const CallerInfo&) {
        CmdLine reply = cmdlang::make_ok();
        std::scoped_lock lock(device_mu_);
        reply.arg("pan", state_.pan);
        reply.arg("tilt", state_.tilt);
        reply.arg("zoom", state_.zoom);
        reply.arg("frame_rate", state_.frame_rate);
        reply.arg("resolution", state_.resolution);
        reply.arg("model", Word{spec_.model});
        reply.arg("moving",
                  Word{std::chrono::steady_clock::now() < slew_done_
                           ? "yes"
                           : "no"});
        return reply;
      });

  register_command(
      CommandSpec("ptzSetCapture", "set capture resolution and frame rate")
          .arg(integer_arg("frame_rate").optional_arg())
          .arg(string_arg("resolution").optional_arg()),
      [this](const CmdLine& cmd, const CallerInfo&) {
        std::scoped_lock lock(device_mu_);
        if (cmd.has("frame_rate")) {
          std::int64_t rate = cmd.get_integer("frame_rate");
          if (std::find(spec_.frame_rates.begin(), spec_.frame_rates.end(),
                        rate) == spec_.frame_rates.end())
            return cmdlang::make_error(util::Errc::invalid,
                                       "unsupported frame rate");
          state_.frame_rate = rate;
        }
        if (cmd.has("resolution")) {
          std::string res = cmd.get_text("resolution");
          if (std::find(spec_.resolutions.begin(), spec_.resolutions.end(),
                        res) == spec_.resolutions.end())
            return cmdlang::make_error(util::Errc::invalid,
                                       "unsupported resolution");
          state_.resolution = res;
        }
        return cmdlang::make_ok();
      });

  // Scenario 2 support: point the camera at a named feature of the room
  // (e.g. the door when someone is identified there).
  register_command(
      CommandSpec("ptzPointAt", "point at a named room location")
          .arg(real_arg("x"))
          .arg(real_arg("y"))
          .arg(real_arg("z").optional_arg()),
      [this](const CmdLine& cmd, const CallerInfo&) {
        std::scoped_lock lock(device_mu_);
        if (!powered_)
          return cmdlang::make_error(util::Errc::invalid, "camera is off");
        // Simple geometric model: camera at origin facing +y.
        double x = cmd.get_real("x");
        double y = cmd.get_real("y");
        double pan = std::atan2(x, y) * 180.0 / 3.14159265358979323846;
        pan = std::clamp(pan, spec_.pan_min, spec_.pan_max);
        begin_slew_locked(pan, 0.0);
        return cmdlang::make_ok();
      });
}

void PtzCameraDaemon::begin_slew_locked(double pan, double tilt) {
  // The head slews at the model's rate; completion time is bounded by the
  // larger of the two axis movements.
  double degrees = std::max(std::abs(pan - state_.pan),
                            std::abs(tilt - state_.tilt));
  auto duration = std::chrono::duration<double>(
      degrees / std::max(spec_.degrees_per_second, 1.0));
  slew_done_ = std::chrono::steady_clock::now() +
               std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                   duration);
  state_.pan = pan;
  state_.tilt = tilt;
}

bool PtzCameraDaemon::moving() const {
  std::scoped_lock lock(device_mu_);
  return std::chrono::steady_clock::now() < slew_done_;
}

PtzCameraDaemon::PtzState PtzCameraDaemon::ptz_state() const {
  std::scoped_lock lock(device_mu_);
  return state_;
}

PtzModelSpec vcc3_spec() {
  PtzModelSpec s;
  s.model = "VCC3";
  s.pan_min = -90.0;
  s.pan_max = 90.0;
  s.tilt_min = -25.0;
  s.tilt_max = 25.0;
  s.zoom_max = 10.0;
  s.degrees_per_second = 70.0;
  s.frame_rates = {5, 15, 30};
  s.resolutions = {"320x240", "640x480"};
  return s;
}

PtzModelSpec vcc4_spec() {
  PtzModelSpec s;
  s.model = "VCC4";
  s.pan_min = -100.0;
  s.pan_max = 100.0;
  s.tilt_min = -30.0;
  s.tilt_max = 90.0;
  s.zoom_max = 16.0;
  s.degrees_per_second = 300.0;
  s.frame_rates = {5, 15, 30};
  s.resolutions = {"320x240", "640x480", "704x480"};
  return s;
}

// ------------------------------------------------------------------ projector

ProjectorDaemon::ProjectorDaemon(Environment& env, DaemonHost& host,
                                 DaemonConfig config, ProjectorModelSpec spec)
    : DeviceDaemon(env, host, projector_defaults(std::move(config), spec)),
      spec_(std::move(spec)) {
  using cmdlang::integer_arg;
  using cmdlang::string_arg;
  using cmdlang::word_arg;

  register_command(
      CommandSpec("projSetInput", "select the input source")
          .arg(word_arg("input").choices(spec_.inputs)),
      [this](const CmdLine& cmd, const CallerInfo&) {
        std::scoped_lock lock(device_mu_);
        if (!powered_)
          return cmdlang::make_error(util::Errc::invalid, "projector is off");
        state_.input = cmd.get_text("input");
        return cmdlang::make_ok();
      });

  register_command(
      CommandSpec("projSetBrightness", "set lamp brightness")
          .arg(integer_arg("brightness").range(0, spec_.max_brightness)),
      [this](const CmdLine& cmd, const CallerInfo&) {
        std::scoped_lock lock(device_mu_);
        state_.brightness = static_cast<int>(cmd.get_integer("brightness"));
        return cmdlang::make_ok();
      });

  // Scenario 5: "He uses it to turn the projector on and to output the
  // workspace to the screen ... he selects the camera output to stream to
  // the projector as a picture in picture output."
  register_command(
      CommandSpec("projDisplay", "display a service's output")
          .arg(string_arg("source")),
      [this](const CmdLine& cmd, const CallerInfo&) {
        std::scoped_lock lock(device_mu_);
        if (!powered_)
          return cmdlang::make_error(util::Errc::invalid, "projector is off");
        state_.source_service = cmd.get_text("source");
        return cmdlang::make_ok();
      });

  register_command(
      CommandSpec("projPictureInPicture", "overlay a second source")
          .arg(string_arg("source"))
          .arg(word_arg("enable").choices({"on", "off"})),
      [this](const CmdLine& cmd, const CallerInfo&) {
        std::scoped_lock lock(device_mu_);
        if (!powered_)
          return cmdlang::make_error(util::Errc::invalid, "projector is off");
        state_.picture_in_picture = cmd.get_text("enable") == "on";
        state_.pip_source =
            state_.picture_in_picture ? cmd.get_text("source") : "";
        return cmdlang::make_ok();
      });

  register_command(
      CommandSpec("projGet", "report projector state"),
      [this](const CmdLine&, const CallerInfo&) {
        CmdLine reply = cmdlang::make_ok();
        std::scoped_lock lock(device_mu_);
        reply.arg("model", Word{spec_.model});
        reply.arg("input", state_.input);
        reply.arg("brightness", static_cast<std::int64_t>(state_.brightness));
        reply.arg("source", state_.source_service);
        reply.arg("pip", Word{state_.picture_in_picture ? "on" : "off"});
        reply.arg("pip_source", state_.pip_source);
        return reply;
      });
}

ProjectorDaemon::ProjectorState ProjectorDaemon::projector_state() const {
  std::scoped_lock lock(device_mu_);
  return state_;
}

ProjectorModelSpec epson7350_spec() {
  ProjectorModelSpec s;
  s.model = "Epson7350";
  s.inputs = {"vga", "video", "network"};
  s.max_brightness = 100;
  return s;
}

}  // namespace ace::daemon
