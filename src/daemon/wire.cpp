#include "daemon/wire.hpp"

namespace ace::daemon::wire {

util::Bytes encode_frame(std::uint64_t call_id, std::uint8_t flags,
                         std::string_view body) {
  util::ByteWriter w;
  w.varint(call_id);
  w.u8(flags);
  w.raw(reinterpret_cast<const std::uint8_t*>(body.data()), body.size());
  return w.take();
}

std::optional<Frame> decode_frame(const util::Bytes& frame) {
  util::ByteReader r(frame);
  Frame f;
  auto id = r.varint();
  auto flags = r.u8();
  if (!id || !flags) return std::nullopt;
  f.call_id = *id;
  f.flags = *flags;
  std::size_t header = frame.size() - r.remaining();
  f.body = std::string_view(
      reinterpret_cast<const char*>(frame.data()) + header, r.remaining());
  return f;
}

}  // namespace ace::daemon::wire
