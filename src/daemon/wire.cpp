#include "daemon/wire.hpp"

namespace ace::daemon::wire {

util::Bytes encode_frame(std::uint64_t call_id, std::uint8_t flags,
                         std::string_view body) {
  util::ByteWriter w;
  w.varint(call_id);
  w.u8(flags);
  w.raw(reinterpret_cast<const std::uint8_t*>(body.data()), body.size());
  return w.take();
}

std::optional<Frame> decode_frame(const util::Bytes& frame) {
  util::ByteReader r(frame);
  Frame f;
  auto id = r.varint();
  auto flags = r.u8();
  if (!id || !flags) return std::nullopt;
  f.call_id = *id;
  f.flags = *flags;
  std::size_t header = frame.size() - r.remaining();
  f.body = std::string_view(
      reinterpret_cast<const char*>(frame.data()) + header, r.remaining());
  return f;
}

std::string pack_batch(const std::vector<std::string>& records) {
  std::size_t total = 0;
  for (const auto& r : records) total += r.size() + 24;
  std::string out;
  out.reserve(total);
  for (const auto& r : records) {
    out += std::to_string(r.size());
    out += ':';
    out += r;
    out += ',';
  }
  return out;
}

std::optional<std::vector<std::string>> unpack_batch(std::string_view packed) {
  std::vector<std::string> records;
  std::size_t pos = 0;
  while (pos < packed.size()) {
    std::size_t len = 0;
    std::size_t digits = 0;
    while (pos < packed.size() && packed[pos] >= '0' && packed[pos] <= '9') {
      len = len * 10 + static_cast<std::size_t>(packed[pos] - '0');
      ++pos;
      if (++digits > 12) return std::nullopt;  // implausible length
    }
    if (digits == 0 || pos >= packed.size() || packed[pos] != ':')
      return std::nullopt;
    ++pos;  // ':'
    if (packed.size() - pos < len + 1) return std::nullopt;
    records.emplace_back(packed.substr(pos, len));
    pos += len;
    if (packed[pos] != ',') return std::nullopt;
    ++pos;
  }
  return records;
}

}  // namespace ace::daemon::wire
