// Deployment-wide shared context for one ACE.
//
// Holds the simulated network, the certificate authority, the KeyNote key
// store and policy roots, and the well-known addresses the paper assumes
// ("the location of which is known to all ACE daemons" — §2.4 for the ASD;
// likewise the Room Database, Network Logger, and Authorization Database).
//
// Configuration is completed before daemons start; afterwards the
// environment is treated as immutable shared state (thread-safe to read).
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "crypto/certificate.hpp"
#include "crypto/channel.hpp"
#include "keynote/assertion.hpp"
#include "net/network.hpp"
#include "obs/metrics.hpp"

namespace ace::daemon {

// Well-known ports, mirroring the paper's fixed-socket convention.
inline constexpr std::uint16_t kAsdPort = 5000;
inline constexpr std::uint16_t kRoomDbPort = 5001;
inline constexpr std::uint16_t kNetLoggerPort = 5002;
inline constexpr std::uint16_t kAuthDbPort = 5003;

class Environment {
 public:
  explicit Environment(std::uint64_t seed = 42);

  net::Network& network() { return network_; }

  // The deployment's event loop: daemons, clients and lease coordinators
  // all multiplex onto this one reactor's worker pools, which is what
  // keeps process thread count O(pool) rather than O(connections).
  net::Reactor& reactor() { return reactor_; }

  // Deployment-wide metrics/span registry. The network, secure channels,
  // clients and daemons all record here; any daemon's `metrics;` command
  // returns a snapshot of it.
  obs::MetricsRegistry& metrics() { return metrics_; }
  const obs::MetricsRegistry& metrics() const { return metrics_; }

  crypto::CertificateAuthority& ca() { return ca_; }
  const util::Bytes& ca_key() const { return ca_.verification_key(); }

  keynote::KeyStore& keys() { return keys_; }
  const keynote::KeyStore& keys() const { return keys_; }

  // Root POLICY assertions trusted by every daemon that enforces
  // authorization. Install before starting daemons.
  void add_policy(keynote::Assertion policy);
  const std::vector<keynote::Assertion>& policies() const { return policies_; }

  // Registers a principal (user or service) with both the KeyNote key
  // store and, implicitly, anything needing its signing secret.
  // Returns the secret so tests can sign credentials with it.
  util::Bytes register_principal(const std::string& key_id);

  crypto::ChannelOptions& channel_options() { return channel_options_; }
  const crypto::ChannelOptions& channel_options() const {
    return channel_options_;
  }

  // Issues an identity certificate for a daemon or client.
  crypto::Identity issue_identity(const std::string& subject) {
    return ca_.issue(subject);
  }

  // Well-known infrastructure addresses. Empty host = not deployed.
  net::Address asd_address;
  net::Address room_db_address;
  net::Address net_logger_address;
  net::Address auth_db_address;

  std::chrono::milliseconds default_timeout{2000};

  std::uint64_t next_seed() { return seed_rng_.next(); }

 private:
  obs::MetricsRegistry metrics_;  // must outlive (so precede) network_
  net::Network network_;
  // Declared after network_ so it is destroyed first: reactor stop() joins
  // the workers while the queues they pump still exist.
  net::Reactor reactor_{&metrics_};
  crypto::CertificateAuthority ca_;
  keynote::KeyStore keys_;
  std::vector<keynote::Assertion> policies_;
  crypto::ChannelOptions channel_options_;
  util::Rng seed_rng_;
};

}  // namespace ace::daemon
