#include "daemon/lease.hpp"

#include <algorithm>
#include <utility>
#include <vector>

#include "daemon/daemon.hpp"
#include "daemon/host.hpp"
#include "util/log.hpp"
#include "util/strings.hpp"

using namespace std::chrono_literals;

namespace ace::daemon {

LeaseCoordinator::LeaseCoordinator(Environment& env, DaemonHost& host)
    : env_(env),
      host_(host),
      client_(std::make_unique<AceClient>(
          env, host.net_host(), env.issue_identity("lease/" + host.name()))),
      obs_batches_(&env.metrics().counter("daemon.lease.batches")),
      obs_renewed_(&env.metrics().counter("daemon.lease.renewed")),
      obs_lost_(&env.metrics().counter("daemon.lease.lost")) {}

LeaseCoordinator::~LeaseCoordinator() {
  net::Reactor::TimerId timer = 0;
  {
    std::scoped_lock lock(mu_);
    ++tick_gen_;  // any tick already dispatched becomes a no-op
    timer = std::exchange(timer_, 0);
  }
  if (timer != 0) env_.reactor().cancel(timer);
  guard_.revoke();  // waits out a tick running right now
  client_->close_all();
}

std::chrono::milliseconds LeaseCoordinator::interval_locked() const {
  auto interval = std::chrono::milliseconds(500);
  for (const auto& [name, d] : enrolled_)
    interval = std::min(interval, d->config().lease_renew);
  return interval;
}

void LeaseCoordinator::enroll(ServiceDaemon& daemon) {
  std::scoped_lock lock(mu_);
  const bool was_empty = enrolled_.empty();
  enrolled_[daemon.config().name] = &daemon;
  if (timer_ != 0) {
    // Re-arm so a tighter lease_renew takes effect immediately.
    env_.reactor().cancel(std::exchange(timer_, 0));
    arm_locked();
  } else if (was_empty) {
    arm_locked();
  }
  // timer_ == 0 with a non-empty roster means a tick is mid-flight; it
  // re-arms itself with the updated roster when it finishes.
}

void LeaseCoordinator::withdraw(const std::string& name) {
  // tick_mu_ first: once acquired, no tick is mid-flight and none will see
  // the withdrawn daemon in its roster snapshot.
  std::scoped_lock tick_lock(tick_mu_);
  std::scoped_lock lock(mu_);
  enrolled_.erase(name);
}

std::size_t LeaseCoordinator::enrolled_count() const {
  std::scoped_lock lock(mu_);
  return enrolled_.size();
}

void LeaseCoordinator::arm_locked() {
  const std::uint64_t gen = ++tick_gen_;
  timer_ = env_.reactor().post_after(
      interval_locked(), guard_.wrap([this, gen] { run_tick(gen); }),
      /*blocking=*/true);
}

void LeaseCoordinator::run_tick(std::uint64_t gen) {
  {
    std::scoped_lock lock(mu_);
    if (gen != tick_gen_) return;  // superseded by enroll() or destruction
    timer_ = 0;  // mid-flight: enroll() must not cancel/re-arm under us
  }
  tick();
  std::scoped_lock lock(mu_);
  if (gen != tick_gen_) return;
  if (!enrolled_.empty()) arm_locked();
}

void LeaseCoordinator::tick() {
  std::scoped_lock tick_lock(tick_mu_);
  std::vector<std::string> names;
  std::vector<ServiceDaemon*> daemons;
  {
    std::scoped_lock lock(mu_);
    names.reserve(enrolled_.size());
    for (const auto& [name, d] : enrolled_) {
      names.push_back(name);
      daemons.push_back(d);
    }
  }
  if (names.empty() || env_.asd_address.host.empty()) return;

  // Every resident lease in one RPC: the whole point of the coordinator.
  cmdlang::CmdLine cmd("renewBatch");
  cmd.arg("names", cmdlang::string_vector(names));
  auto reply = client_->call(env_.asd_address, cmd,
                             CallOptions{.timeout = 500ms, .require_ok = true});
  if (!reply.ok()) {
    // Unreachable or pre-v2 directory: nothing renewed this interval. The
    // leases simply run down, which is the correct §2.4 failure signal.
    util::log_warn("lease/" + host_.name())
        << "batched renewal failed: " << reply.error().to_string();
    return;
  }
  obs_batches_->inc();

  auto vec = reply->get_vector("statuses");
  if (!vec) return;
  for (const auto& elem : vec->elements) {
    if (!elem.is_string() && !elem.is_word()) continue;
    auto parts = util::split(elem.as_text(), '|');
    if (parts.size() < 2) continue;
    if (parts[1] == "ok") {
      obs_renewed_->inc();
      continue;
    }
    // `not_found`: the directory holds no lease for this name — it crashed
    // and came back empty. Only a fresh registration (Fig 9 step 3) heals
    // the entry; the owning daemon performs it itself.
    obs_lost_->inc();
    for (std::size_t i = 0; i < names.size(); ++i) {
      if (names[i] == parts[0]) {
        daemons[i]->handle_lease_lost();
        break;
      }
    }
  }
}

}  // namespace ace::daemon
