#include "daemon/host.hpp"

#include "daemon/daemon.hpp"
#include "daemon/lease.hpp"

namespace ace::daemon {

DaemonHost::DaemonHost(Environment& env, const std::string& name,
                       HostSpec spec)
    : env_(env), name_(name), spec_(spec) {
  net_host_ = &env.network().add_host(name);
}

DaemonHost::~DaemonHost() { stop_all(); }

ResourceSnapshot DaemonHost::resources() const {
  std::scoped_lock lock(mu_);
  ResourceSnapshot snap;
  snap.bogomips = spec_.bogomips;
  snap.mem_total_kb = spec_.mem_total_kb;
  snap.disk_total_kb = spec_.disk_total_kb;
  snap.disk_free_kb = spec_.disk_total_kb;  // disk model kept static
  snap.net_load = net_load_;
  snap.cpu_load = base_load_;
  std::uint64_t mem_used = 0;
  for (const ProcessInfo& p : process_table_) {
    if (!p.running) continue;
    snap.cpu_load += p.cpu_demand;
    mem_used += p.mem_kb;
    snap.process_count++;
  }
  snap.mem_free_kb =
      mem_used >= spec_.mem_total_kb ? 0 : spec_.mem_total_kb - mem_used;
  return snap;
}

void DaemonHost::set_net_load(double load) {
  std::scoped_lock lock(mu_);
  net_load_ = load;
}

void DaemonHost::set_base_load(double load) {
  std::scoped_lock lock(mu_);
  base_load_ = load;
}

int DaemonHost::launch_process(const std::string& command, double cpu_demand,
                               std::uint64_t mem_kb) {
  std::scoped_lock lock(mu_);
  ProcessInfo p;
  p.pid = next_pid_++;
  p.command = command;
  p.cpu_demand = cpu_demand;
  p.mem_kb = mem_kb;
  p.running = true;
  p.started = std::chrono::steady_clock::now();
  process_table_.push_back(p);
  return p.pid;
}

bool DaemonHost::kill_process(int pid) {
  std::scoped_lock lock(mu_);
  for (ProcessInfo& p : process_table_) {
    if (p.pid == pid && p.running) {
      p.running = false;
      return true;
    }
  }
  return false;
}

bool DaemonHost::process_running(int pid) const {
  std::scoped_lock lock(mu_);
  for (const ProcessInfo& p : process_table_)
    if (p.pid == pid) return p.running;
  return false;
}

std::vector<ProcessInfo> DaemonHost::processes() const {
  std::scoped_lock lock(mu_);
  return process_table_;
}

util::Status DaemonHost::start_all() {
  std::vector<ServiceDaemon*> to_start;
  {
    std::scoped_lock lock(mu_);
    for (auto& d : daemons_) to_start.push_back(d.get());
  }
  for (ServiceDaemon* d : to_start) {
    if (d->running()) continue;
    if (auto s = d->start(); !s.ok()) return s;
  }
  return util::Status::ok_status();
}

void DaemonHost::stop_all() {
  std::vector<ServiceDaemon*> to_stop;
  {
    std::scoped_lock lock(mu_);
    for (auto& d : daemons_) to_stop.push_back(d.get());
  }
  // Stop in reverse start order so dependents go first.
  for (auto it = to_stop.rbegin(); it != to_stop.rend(); ++it) (*it)->stop();
}

LeaseCoordinator& DaemonHost::leases() {
  std::scoped_lock lock(mu_);
  if (!leases_) leases_ = std::make_unique<LeaseCoordinator>(env_, *this);
  return *leases_;
}

void DaemonHost::leases_withdraw(const std::string& name) {
  LeaseCoordinator* leases = nullptr;
  {
    std::scoped_lock lock(mu_);
    leases = leases_.get();
  }
  if (leases) leases->withdraw(name);
}

ServiceDaemon* DaemonHost::find_daemon(const std::string& name) {
  std::scoped_lock lock(mu_);
  for (auto& d : daemons_)
    if (d->config().name == name) return d.get();
  return nullptr;
}

void DaemonHost::fail() {
  net_host_->set_down(true);
  std::vector<ServiceDaemon*> to_crash;
  {
    std::scoped_lock lock(mu_);
    for (auto& d : daemons_) to_crash.push_back(d.get());
    for (ProcessInfo& p : process_table_) p.running = false;
  }
  for (ServiceDaemon* d : to_crash) d->crash();
}

void DaemonHost::restore() { net_host_->set_down(false); }

}  // namespace ace::daemon
