#include "daemon/environment.hpp"

namespace ace::daemon {

Environment::Environment(std::uint64_t seed)
    : network_(seed, &metrics_),
      ca_(seed ^ 0xacec0de),
      seed_rng_(seed ^ 0x5eed) {
  channel_options_.metrics = &metrics_;
}

void Environment::add_policy(keynote::Assertion policy) {
  policies_.push_back(std::move(policy));
}

util::Bytes Environment::register_principal(const std::string& key_id) {
  util::Bytes secret(32);
  for (auto& b : secret) b = static_cast<std::uint8_t>(seed_rng_.next());
  keys_.register_principal(key_id, secret);
  return secret;
}

}  // namespace ace::daemon
