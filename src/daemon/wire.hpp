// Command-channel framing (protocol v2).
//
// v1 frames are the bare serialized command string; one request must wait
// for its reply before the next can be sent, and fire-and-forget sends mark
// themselves with a `_noreply` argument inside the command.
//
// v2 prefixes every frame with a demultiplexing header so many calls can be
// in flight on one channel at once and replies can arrive in any order:
//
//   varint call_id | u8 flags | command text (rest of frame)
//
// The call-id is chosen by the requester and echoed verbatim on the reply;
// flags bit 0 (kFlagNoReply) suppresses the reply frame, replacing the v1
// `_noreply` argument. The version in use on a channel is negotiated at the
// secure-channel handshake (SecureChannel::negotiated_version()).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "util/bytes.hpp"

namespace ace::daemon::wire {

inline constexpr std::uint8_t kProtocolV1 = 1;
inline constexpr std::uint8_t kProtocolV2 = 2;

inline constexpr std::uint8_t kFlagNoReply = 0x01;

// v1 transport marker: argument understood by every ServiceDaemon that
// suppresses the reply frame (superseded by kFlagNoReply under v2).
inline constexpr const char* kNoReplyArg = "_noreply";

// Builds a v2 frame around the serialized command text.
util::Bytes encode_frame(std::uint64_t call_id, std::uint8_t flags,
                         std::string_view body);

// A decoded v2 frame. `body` is a view into the buffer handed to
// decode_frame — valid only while that buffer lives, by design: the parser
// consumes it in place without another copy.
struct Frame {
  std::uint64_t call_id = 0;
  std::uint8_t flags = 0;
  std::string_view body;
};

std::optional<Frame> decode_frame(const util::Bytes& frame);

// Batch payload packing: concatenates opaque records into one string-arg
// payload using netstring framing (`<decimal length>:<bytes>,`), so a
// group-committed replication round trip carries many records in a single
// v2 frame without per-record quoting/escaping overhead. Records may
// contain any bytes; nesting is fine (a record can itself be a packed
// batch of fields).
std::string pack_batch(const std::vector<std::string>& records);
std::optional<std::vector<std::string>> unpack_batch(std::string_view packed);

}  // namespace ace::daemon::wire
