// AceClient — the client side of the ACE command protocol (paper Fig 5):
// builds an ACECmdLine, serializes it to a string, sends it over a secure
// channel, and parses the reply command.
//
// Connections are cached per destination address and transparently
// re-established on failure, which is also the hook the mobile-socket
// extension (paper Ch 9) builds on: when a service instance dies, callers
// re-resolve through the ASD and resume against a replacement instance.
//
// Since wire protocol v2 the cached channel is *pipelined*: every request
// frame carries a call-id (see daemon/wire.hpp), senders hold only a brief
// bookkeeping lock, and a per-destination demux — a reactor pump on the
// channel, not a thread — routes reply frames to per-call completion
// slots. N threads calling the same daemon share one secure channel with N
// requests in flight instead of N serialized round trips, and a process
// full of clients costs no reader threads at all. Peers that negotiated v1
// at the handshake fall back to the historical exchange: one outstanding
// call per destination, serialized by a per-entry mutex held across the
// round trip.
//
// All request/reply traffic funnels through the single
// call(to, cmd, CallOptions) entry point, so call latency, reconnects,
// timeouts and retry policy are instrumented in exactly one place.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>

#include "cmdlang/parser.hpp"
#include "cmdlang/value.hpp"
#include "crypto/channel.hpp"
#include "daemon/environment.hpp"
#include "obs/metrics.hpp"
#include "util/rng.hpp"

namespace ace::daemon {

// Per-call knobs for AceClient::call.
struct CallOptions {
  // Reply deadline; defaults to the environment's default_timeout.
  std::optional<std::chrono::milliseconds> timeout{};
  // Treat an `error ...;` reply as a util::Error instead of a result.
  bool require_ok = false;
  // Extra attempts after a stale-channel send failure, a mid-flight channel
  // death, a reply timeout, or a failed connect (reconnecting if the
  // channel is gone). 1 preserves the historical behaviour of one
  // transparent reconnect.
  int retries = 1;
  // Per-call overrides of ClientPolicy::backoff/backoff_cap (see there for
  // semantics); unset = use the client's policy.
  std::optional<std::chrono::milliseconds> backoff{};
  std::optional<std::chrono::milliseconds> backoff_cap{};
};

// Shorthand for the common "call and insist on an ok reply" pattern.
inline constexpr CallOptions kCallOk{.timeout = std::nullopt,
                                     .require_ok = true,
                                     .retries = 1};

// Per-destination circuit breaker (closed -> open -> half-open -> closed).
// After `failure_threshold` consecutive transport-level failures the
// destination's breaker opens: calls fail fast with Errc::unavailable for
// `cooldown`, after which exactly one probe call is let through. A probe
// success closes the breaker (and resets the failure count); a probe
// failure re-opens it for another cooldown. Application-level `error ...;`
// replies never trip it — only transport faults do.
struct BreakerPolicy {
  int failure_threshold = 4;
  std::chrono::milliseconds cooldown{250};
};

// Everything tunable about a client, applied as one unit via
// AceClient::set_policy (replacing the old scattered per-knob setters).
struct ClientPolicy {
  // Protocol version offered on channels opened after the change; 0 =
  // offer the environment's configured version. (Testing and the bench_rpc
  // pipelining ablation: 1 forces the serialized v1 exchange even against
  // a v2 daemon.)
  std::uint8_t protocol_offer = 0;
  // Per-destination circuit breaker (see BreakerPolicy).
  BreakerPolicy breaker{};
  // Base delay inserted before retry k: backoff * 2^(k-1), scaled by a
  // uniform [0.5, 1.5) jitter and capped at backoff_cap, so concurrent
  // callers hammering a dead destination spread out instead of busy-
  // spinning in lockstep. 0 disables the delay. CallOptions may override
  // both per call.
  std::chrono::milliseconds backoff{10};
  std::chrono::milliseconds backoff_cap{500};
  // Close cached channels that have sat idle (no traffic, nothing in
  // flight) this long, freeing their demux state; a later call
  // transparently reconnects. 0 (default) keeps channels forever.
  std::chrono::milliseconds idle_channel_ttl{0};
};

class AceClient {
 public:
  // `from_host` is the machine the client runs on; `identity` authenticates
  // it to peers (services check the certificate subject as the principal).
  AceClient(Environment& env, net::Host& from_host, crypto::Identity identity);
  ~AceClient();  // closes every channel and stops their demux pumps

  AceClient(const AceClient&) = delete;
  AceClient& operator=(const AceClient&) = delete;

  // Sends `cmd` to `to` and waits for the reply command. Reuses a cached
  // channel when available, retrying up to options.retries times on a
  // stale channel, a channel death mid-flight, or a reply timeout. With
  // options.require_ok, an `error ...;` reply comes back as a util::Error.
  // Thread-safe; concurrent calls to the same destination pipeline on one
  // channel when the peer speaks protocol v2.
  util::Result<cmdlang::CmdLine> call(const net::Address& to,
                                      const cmdlang::CmdLine& cmd,
                                      const CallOptions& options = {});

  // Fire-and-forget: sends without waiting for the reply. Under v2 the
  // noreply marker is a frame flag; v1 peers get the `_noreply` argument.
  util::Status send_only(const net::Address& to, const cmdlang::CmdLine& cmd);

  void drop_connection(const net::Address& to);
  void close_all();

  // Replaces the whole client policy atomically. Thread-safe; affects
  // channels opened and retries begun after the call. Arms (or disarms)
  // the idle-channel sweeper when idle_channel_ttl changes.
  void set_policy(ClientPolicy policy);
  ClientPolicy policy() const;

  BreakerPolicy breaker_policy() const { return policy().breaker; }

  const std::string& principal() const {
    return identity_.certificate.subject;
  }

  // The environment this client was built against (metrics, logging).
  Environment& env() { return env_; }

 private:
  // One in-flight v2 call awaiting its reply from the demux reader.
  struct PendingCall {
    std::mutex mu;
    std::condition_variable cv;
    std::optional<util::Result<cmdlang::CmdLine>> result;
  };

  // One cached channel per destination. `mu` guards every field and is
  // only ever held for brief bookkeeping (never across a round trip).
  // `call_mu` survives solely for v1 peers, whose unframed replies cannot
  // interleave: it serializes the whole send->recv exchange as before.
  // Lock order: call_mu -> mu -> PendingCall::mu, later locks optional.
  struct ChannelEntry {
    std::mutex mu;
    std::shared_ptr<crypto::SecureChannel> channel;
    std::uint64_t next_call_id = 1;
    std::map<std::uint64_t, std::shared_ptr<PendingCall>> pending;
    bool closed = false;  // entry was shut down; never reconnect through it
    std::chrono::steady_clock::time_point last_used{};
    // Circuit-breaker state (guarded by `mu`; see BreakerPolicy).
    int consecutive_failures = 0;
    bool breaker_open = false;
    bool probe_inflight = false;  // the single half-open probe is out
    std::chrono::steady_clock::time_point open_until{};
    std::mutex call_mu;
    // Reply demux for the *current* v2 channel: a reactor pump attached at
    // connect time. A replaced channel's old pump self-terminates (the
    // dead channel delivers its final callback) without being stopped
    // under entry.mu, which its own handler also takes.
    net::Subscription demux;
  };

  // Resolves a finished call into its completion slot and wakes the waiter.
  // First writer wins; a second resolution (e.g. a reply racing a timeout
  // withdrawal) is dropped.
  static void complete(PendingCall& slot, util::Result<cmdlang::CmdLine> r);

  std::shared_ptr<ChannelEntry> entry_for(const net::Address& to);
  util::Status ensure_channel_locked(const std::shared_ptr<ChannelEntry>& entry,
                                     const net::Address& to);
  // Demux pump handler: routes one reply frame (or the channel's death)
  // for the given channel generation. Runs on a reactor core worker.
  void handle_reply(const std::shared_ptr<ChannelEntry>& entry,
                    const std::shared_ptr<crypto::SecureChannel>& channel,
                    std::optional<net::Frame> frame);
  // Idle-channel sweeper (policy().idle_channel_ttl > 0): a repeating
  // reactor timer that shuts down destinations with no traffic and no
  // calls in flight.
  void sweep_idle_channels();
  // Breaker hooks around one call attempt. admit fails fast with
  // Errc::unavailable while the destination's breaker is open (setting
  // `probe` when this attempt is the half-open probe); record_failure
  // returns true when the breaker is open afterwards, telling the retry
  // loop to stop hammering.
  util::Status breaker_admit(ChannelEntry& entry, const net::Address& to,
                             bool& probe);
  bool breaker_record_failure(ChannelEntry& entry, bool probe);
  void breaker_record_success(ChannelEntry& entry, bool probe);
  // Jittered exponential delay before retry attempt `attempt` (>= 1).
  void backoff_sleep(const CallOptions& options, int attempt);
  void fail_pending_locked(ChannelEntry& entry, const util::Error& error);
  void shutdown_entry(const std::shared_ptr<ChannelEntry>& entry);
  util::Result<cmdlang::CmdLine> exchange_v1(
      ChannelEntry& entry, const std::shared_ptr<crypto::SecureChannel>& ch,
      const std::string& wire_text, std::chrono::milliseconds timeout,
      const std::string& verb, const net::Address& to);
  util::Result<cmdlang::CmdLine> exchange_v2(
      ChannelEntry& entry, const std::shared_ptr<crypto::SecureChannel>& ch,
      std::uint64_t call_id, const std::shared_ptr<PendingCall>& slot,
      const std::string& wire_text, std::chrono::milliseconds timeout,
      const std::string& verb, const net::Address& to);

  Environment& env_;
  net::Host& host_;
  crypto::Identity identity_;
  // The policy proper lives behind policy_mu_; protocol_offer is mirrored
  // into an atomic so the connect path reads it lock-free.
  mutable std::mutex policy_mu_;
  ClientPolicy policy_;
  std::atomic<std::uint8_t> protocol_offer_{0};
  // Idle-sweeper timer chain state (guarded by policy_mu_). The TaskGuard
  // revokes in-flight sweep tasks at destruction, since they capture
  // `this` raw.
  net::TaskGuard sweep_guard_;
  net::Reactor::TimerId sweep_timer_ = 0;
  std::mutex mu_;
  std::map<net::Address, std::shared_ptr<ChannelEntry>> channels_;
  std::mutex jitter_mu_;
  util::Rng jitter_rng_;

  // Cached obs cells (deployment registry, `client.*` names).
  obs::Counter* calls_;
  obs::Counter* reconnects_;
  obs::Counter* retries_;
  obs::Counter* timeouts_;
  obs::Counter* errors_;
  obs::Counter* breaker_trips_;
  obs::Counter* breaker_rejected_;
  obs::Counter* breaker_closes_;
  obs::Gauge* inflight_;
  obs::Gauge* breaker_open_;  // destinations currently open
};

}  // namespace ace::daemon
