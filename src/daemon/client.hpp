// AceClient — the client side of the ACE command protocol (paper Fig 5):
// builds an ACECmdLine, serializes it to a string, sends it over a secure
// channel, and parses the reply command.
//
// Connections are cached per destination address and transparently
// re-established on failure, which is also the hook the mobile-socket
// extension (paper Ch 9) builds on: when a service instance dies, callers
// re-resolve through the ASD and resume against a replacement instance.
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "cmdlang/parser.hpp"
#include "cmdlang/value.hpp"
#include "crypto/channel.hpp"
#include "daemon/environment.hpp"

namespace ace::daemon {

class AceClient {
 public:
  // `from_host` is the machine the client runs on; `identity` authenticates
  // it to peers (services check the certificate subject as the principal).
  AceClient(Environment& env, net::Host& from_host, crypto::Identity identity);

  AceClient(const AceClient&) = delete;
  AceClient& operator=(const AceClient&) = delete;
  AceClient(AceClient&&) = default;

  // Sends `cmd` to `to` and waits for the reply command. Reuses a cached
  // channel when available; one reconnect attempt on a stale channel.
  util::Result<cmdlang::CmdLine> call(const net::Address& to,
                                      const cmdlang::CmdLine& cmd);
  util::Result<cmdlang::CmdLine> call(const net::Address& to,
                                      const cmdlang::CmdLine& cmd,
                                      std::chrono::milliseconds timeout);

  // Like call(), but treats an `error ...;` reply as a util::Error.
  util::Result<cmdlang::CmdLine> call_ok(const net::Address& to,
                                         const cmdlang::CmdLine& cmd);

  // Fire-and-forget: sends without waiting for the reply (the reply frame
  // is drained on the next call on this channel). Used for low-value
  // notifications and logging.
  util::Status send_only(const net::Address& to, const cmdlang::CmdLine& cmd);

  void drop_connection(const net::Address& to);
  void close_all();

  const std::string& principal() const {
    return identity_.certificate.subject;
  }

 private:
  // One cached channel per destination; `call_mu` serializes request/reply
  // pairs so concurrent calls to the same destination cannot interleave
  // frames on the shared channel.
  struct ChannelEntry {
    std::mutex call_mu;
    std::shared_ptr<crypto::SecureChannel> channel;
  };

  util::Result<std::shared_ptr<ChannelEntry>> entry_for(
      const net::Address& to);
  util::Status ensure_channel_locked(ChannelEntry& entry,
                                     const net::Address& to);

  Environment& env_;
  net::Host& host_;
  crypto::Identity identity_;
  std::mutex mu_;
  std::map<net::Address, std::shared_ptr<ChannelEntry>> channels_;
};

}  // namespace ace::daemon
