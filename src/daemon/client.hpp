// AceClient — the client side of the ACE command protocol (paper Fig 5):
// builds an ACECmdLine, serializes it to a string, sends it over a secure
// channel, and parses the reply command.
//
// Connections are cached per destination address and transparently
// re-established on failure, which is also the hook the mobile-socket
// extension (paper Ch 9) builds on: when a service instance dies, callers
// re-resolve through the ASD and resume against a replacement instance.
//
// All request/reply traffic funnels through the single
// call(to, cmd, CallOptions) entry point, so call latency, reconnects and
// timeouts are instrumented (and future retry policy lives) in exactly one
// place. The historical call(to, cmd, timeout) / call_ok(to, cmd) overloads
// survive one release as deprecated forwarders.
#pragma once

#include <chrono>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>

#include "cmdlang/parser.hpp"
#include "cmdlang/value.hpp"
#include "crypto/channel.hpp"
#include "daemon/environment.hpp"
#include "obs/metrics.hpp"

namespace ace::daemon {

// Per-call knobs for AceClient::call.
struct CallOptions {
  // Reply deadline; defaults to the environment's default_timeout.
  std::optional<std::chrono::milliseconds> timeout{};
  // Treat an `error ...;` reply as a util::Error instead of a result.
  bool require_ok = false;
  // Extra attempts after a stale-channel send failure or a reply timeout
  // (each retry reconnects). 1 preserves the historical behaviour of one
  // transparent reconnect.
  int retries = 1;
};

// Shorthand for the common "call and insist on an ok reply" pattern.
inline constexpr CallOptions kCallOk{.timeout = std::nullopt,
                                     .require_ok = true,
                                     .retries = 1};

class AceClient {
 public:
  // `from_host` is the machine the client runs on; `identity` authenticates
  // it to peers (services check the certificate subject as the principal).
  AceClient(Environment& env, net::Host& from_host, crypto::Identity identity);

  AceClient(const AceClient&) = delete;
  AceClient& operator=(const AceClient&) = delete;
  AceClient(AceClient&&) = default;

  // Sends `cmd` to `to` and waits for the reply command. Reuses a cached
  // channel when available, reconnecting up to options.retries times on a
  // stale channel or reply timeout. With options.require_ok, an `error ...;`
  // reply comes back as a util::Error.
  util::Result<cmdlang::CmdLine> call(const net::Address& to,
                                      const cmdlang::CmdLine& cmd,
                                      const CallOptions& options = {});

  // Deprecated forwarders (kept for one PR; migrate to CallOptions).
  [[deprecated("use call(to, cmd, CallOptions{.timeout = ...})")]]
  util::Result<cmdlang::CmdLine> call(const net::Address& to,
                                      const cmdlang::CmdLine& cmd,
                                      std::chrono::milliseconds timeout) {
    return call(to, cmd, CallOptions{.timeout = timeout});
  }
  [[deprecated("use call(to, cmd, kCallOk)")]]
  util::Result<cmdlang::CmdLine> call_ok(const net::Address& to,
                                         const cmdlang::CmdLine& cmd) {
    return call(to, cmd, kCallOk);
  }

  // Fire-and-forget: sends without waiting for the reply (the reply frame
  // is drained on the next call on this channel). Used for low-value
  // notifications and logging.
  util::Status send_only(const net::Address& to, const cmdlang::CmdLine& cmd);

  void drop_connection(const net::Address& to);
  void close_all();

  const std::string& principal() const {
    return identity_.certificate.subject;
  }

 private:
  // One cached channel per destination; `call_mu` serializes request/reply
  // pairs so concurrent calls to the same destination cannot interleave
  // frames on the shared channel.
  struct ChannelEntry {
    std::mutex call_mu;
    std::shared_ptr<crypto::SecureChannel> channel;
  };

  util::Result<std::shared_ptr<ChannelEntry>> entry_for(
      const net::Address& to);
  util::Status ensure_channel_locked(ChannelEntry& entry,
                                     const net::Address& to);

  Environment& env_;
  net::Host& host_;
  crypto::Identity identity_;
  std::mutex mu_;
  std::map<net::Address, std::shared_ptr<ChannelEntry>> channels_;

  // Cached obs cells (deployment registry, `client.*` names).
  obs::Counter* calls_;
  obs::Counter* reconnects_;
  obs::Counter* timeouts_;
  obs::Counter* errors_;
};

}  // namespace ace::daemon
