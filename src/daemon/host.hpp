// DaemonHost — a simulated Unix machine in an ACE (paper §2.1: "each
// machine/computing system in an ACE may have one or more ACE service
// daemons running within it").
//
// The host carries:
//  * a net::Host (its network presence),
//  * a resource model (CPU capacity in bogomips, memory, disk, and the load
//    induced by running processes) — the data the HRM reports (§4.1),
//  * a process table of HAL-launched applications (§4.3),
//  * its resident service daemons, with boot-time start-all (§2.6 Fig 9:
//    "Upon booting, the Unix machine 'bar' automatically launches the ACE
//    service 'foo'").
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "daemon/environment.hpp"

namespace ace::daemon {

class LeaseCoordinator;
class ServiceDaemon;

struct HostSpec {
  double bogomips = 1000.0;  // CPU capacity (paper reports speed in bogomips)
  std::uint64_t mem_total_kb = 512 * 1024;
  std::uint64_t disk_total_kb = 8 * 1024 * 1024;
};

struct ProcessInfo {
  int pid = 0;
  std::string command;
  double cpu_demand = 0.0;  // fraction of one CPU
  std::uint64_t mem_kb = 0;
  bool running = false;
  std::chrono::steady_clock::time_point started;
};

// Snapshot reported by the Host Resource Monitor (§4.1): "host CPU load,
// CPU speed (in bogomips), network traffic load, total and available
// memory, and disk storage capabilities and size".
struct ResourceSnapshot {
  double cpu_load = 0.0;  // 0..N (sum of process demands)
  double bogomips = 0.0;
  std::uint64_t mem_total_kb = 0;
  std::uint64_t mem_free_kb = 0;
  std::uint64_t disk_total_kb = 0;
  std::uint64_t disk_free_kb = 0;
  double net_load = 0.0;  // abstract 0..1
  int process_count = 0;
};

class DaemonHost {
 public:
  DaemonHost(Environment& env, const std::string& name, HostSpec spec = {});
  ~DaemonHost();

  DaemonHost(const DaemonHost&) = delete;
  DaemonHost& operator=(const DaemonHost&) = delete;

  const std::string& name() const { return name_; }
  net::Host& net_host() { return *net_host_; }
  Environment& env() { return env_; }
  const HostSpec& spec() const { return spec_; }

  // --- resource model -----------------------------------------------------
  ResourceSnapshot resources() const;
  void set_net_load(double load);
  // Extra load not tied to a process (background noise for experiments).
  void set_base_load(double load);

  // --- process table (HAL substrate) ---------------------------------------
  int launch_process(const std::string& command, double cpu_demand,
                     std::uint64_t mem_kb);
  bool kill_process(int pid);
  bool process_running(int pid) const;
  std::vector<ProcessInfo> processes() const;

  // --- daemons --------------------------------------------------------------
  // Constructs a daemon owned by this host and returns a reference to it.
  template <typename D, typename... Args>
  D& add_daemon(Args&&... args) {
    auto daemon = std::make_unique<D>(env_, *this, std::forward<Args>(args)...);
    D& ref = *daemon;
    {
      std::scoped_lock lock(mu_);
      daemons_.push_back(std::move(daemon));
    }
    return ref;
  }

  // Boots the machine: starts every resident daemon in registration order.
  util::Status start_all();
  void stop_all();
  ServiceDaemon* find_daemon(const std::string& name);

  // The host's batched lease renewer (lease.hpp), created on first use —
  // daemons with config.batch_renew enroll here instead of running their
  // own lease thread. leases_withdraw() is the removal path that does NOT
  // conjure a coordinator into existence just to leave it.
  LeaseCoordinator& leases();
  void leases_withdraw(const std::string& name);

  // Host failure: drops off the network and crashes all daemons; restore()
  // brings the network interface back (daemons must be restarted).
  void fail();
  void restore();
  bool failed() const { return net_host_->down(); }

 private:
  Environment& env_;
  std::string name_;
  HostSpec spec_;
  net::Host* net_host_;

  mutable std::mutex mu_;
  std::vector<ProcessInfo> process_table_;
  int next_pid_ = 100;
  double net_load_ = 0.0;
  double base_load_ = 0.0;
  // Declared before daemons_: daemon destructors call stop(), which
  // withdraws from the coordinator, so it must outlive them.
  std::unique_ptr<LeaseCoordinator> leases_;
  std::vector<std::unique_ptr<ServiceDaemon>> daemons_;
};

}  // namespace ace::daemon
