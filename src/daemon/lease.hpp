// LeaseCoordinator — host-level batched lease renewal.
//
// With per-daemon renewal (DaemonConfig::batch_renew = false, the original
// scheme) every resident service runs its own lease thread and sends its
// own `renew` RPC each period: a host with ten services costs the directory
// ten RPCs per interval. The coordinator replaces those threads with one
// repeating reactor timer per host that renews every resident lease in a
// single `renewBatch` RPC — the renewal traffic a directory sees scales
// with hosts, not with services (E15c measures the ratio), and a deployment
// of many hosts costs no renewal threads at all.
//
// A daemon enrolls after its Fig 9 registration and withdraws on stop() and
// on crash(): a crashed process no longer renews, so its lease lapses and
// the directory detects the death exactly as before (paper §2.4). Per-name
// statuses in the batch reply let one lost lease (directory restarted with
// an empty registry) trigger that daemon's re-registration without
// disturbing its neighbours.
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "daemon/client.hpp"
#include "daemon/environment.hpp"
#include "net/reactor.hpp"

namespace ace::daemon {

class DaemonHost;
class ServiceDaemon;

class LeaseCoordinator {
 public:
  LeaseCoordinator(Environment& env, DaemonHost& host);
  ~LeaseCoordinator();

  LeaseCoordinator(const LeaseCoordinator&) = delete;
  LeaseCoordinator& operator=(const LeaseCoordinator&) = delete;

  // Adds `daemon` to the renewal batch. The renewal interval tightens to
  // the smallest lease_renew among enrolled daemons. Arms the timer chain
  // on first enrollment.
  void enroll(ServiceDaemon& daemon);

  // Removes `name` from the batch. Blocks until any in-flight tick has
  // finished, so after this returns the coordinator will never touch the
  // withdrawn daemon again (its stop()/crash() may proceed to tear down).
  void withdraw(const std::string& name);

  std::size_t enrolled_count() const;

 private:
  // Arms the next tick at interval_locked() from now, bumping the chain
  // generation so any superseded pending tick becomes a no-op. Caller
  // holds mu_.
  void arm_locked();
  // The timer task: one tick, then re-arm (if the roster is non-empty and
  // this chain generation is still current). Runs on the reactor ops pool
  // — the batched RPC blocks.
  void run_tick(std::uint64_t gen);
  void tick();
  std::chrono::milliseconds interval_locked() const;

  Environment& env_;
  DaemonHost& host_;
  std::unique_ptr<AceClient> client_;

  obs::Counter* obs_batches_;   // daemon.lease.batches
  obs::Counter* obs_renewed_;   // daemon.lease.renewed
  obs::Counter* obs_lost_;      // daemon.lease.lost

  // mu_ guards the roster and timer-chain state; tick_mu_ is held across a
  // whole tick (RPC + lost-lease callbacks). Lock order: tick_mu_ before
  // mu_. withdraw() takes both so it cannot interleave with a tick that
  // might still call into the withdrawing daemon.
  mutable std::mutex mu_;
  std::mutex tick_mu_;
  std::map<std::string, ServiceDaemon*> enrolled_;

  // Repeating reactor-timer chain (guarded by mu_). guard_ revokes
  // in-flight tick tasks at destruction — they capture `this` raw.
  net::TaskGuard guard_;
  net::Reactor::TimerId timer_ = 0;
  std::uint64_t tick_gen_ = 0;
};

}  // namespace ace::daemon
