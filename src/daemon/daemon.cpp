#include "daemon/daemon.hpp"

#include <algorithm>

#include "daemon/host.hpp"
#include "daemon/lease.hpp"
#include "daemon/wire.hpp"
#include "keynote/checker.hpp"
#include "util/log.hpp"

namespace ace::daemon {

using namespace std::chrono_literals;
using cmdlang::CmdLine;
using cmdlang::CommandSpec;
using cmdlang::Word;

namespace {

constexpr auto kPollInterval = 50ms;
constexpr int kMaxNotifyFailures = 3;

// Removes the v1 transport-level _noreply marker before semantic
// validation (v2 carries the marker as a frame flag instead).
CmdLine strip_noreply(const CmdLine& cmd, bool* noreply) {
  *noreply = false;
  CmdLine out(cmd.name());
  for (const auto& a : cmd.args()) {
    if (a.name == wire::kNoReplyArg) {
      *noreply = true;
      continue;
    }
    out.arg(a.name, a.value);
  }
  return out;
}

// Replies in the channel's negotiated framing: v2 echoes the request's
// call-id so the client demux can route it; v1 sends the bare text.
void send_reply(crypto::SecureChannel& ch, bool v2, std::uint64_t call_id,
                const CmdLine& reply) {
  if (v2)
    (void)ch.send(wire::encode_frame(call_id, 0, reply.to_string()));
  else
    (void)ch.send(util::to_bytes(reply.to_string()));
}

}  // namespace

cmdlang::CmdLine encode_metrics_reply(const obs::MetricsSnapshot& snapshot) {
  CmdLine reply = cmdlang::make_ok();
  std::vector<std::string> counters, gauges, histograms;
  counters.reserve(snapshot.counters.size());
  for (const auto& c : snapshot.counters)
    counters.push_back(c.name + "=" + std::to_string(c.value));
  gauges.reserve(snapshot.gauges.size());
  for (const auto& g : snapshot.gauges)
    gauges.push_back(g.name + "=" + std::to_string(g.value));
  histograms.reserve(snapshot.histograms.size());
  for (const auto& h : snapshot.histograms) {
    std::string entry = h.name + "|count=" + std::to_string(h.hist.count) +
                        "|sum_us=" + std::to_string(h.hist.sum_us);
    for (std::size_t i = 0; i < obs::Histogram::kBucketBoundsUs.size(); ++i)
      entry += "|le_" + std::to_string(obs::Histogram::kBucketBoundsUs[i]) +
               "=" + std::to_string(h.hist.buckets[i]);
    entry += "|le_inf=" +
             std::to_string(h.hist.buckets[obs::Histogram::kBucketCount - 1]);
    histograms.push_back(std::move(entry));
  }
  reply.arg("counters", cmdlang::string_vector(std::move(counters)));
  reply.arg("gauges", cmdlang::string_vector(std::move(gauges)));
  reply.arg("histograms", cmdlang::string_vector(std::move(histograms)));
  reply.arg("spans", static_cast<std::int64_t>(snapshot.spans_recorded));
  return reply;
}

ServiceDaemon::ServiceDaemon(Environment& env, DaemonHost& host,
                             DaemonConfig config)
    : env_(env),
      host_(host),
      config_(std::move(config)),
      identity_(env.issue_identity("svc/" + config_.name)),
      obs_cmd_executed_(&env.metrics().counter("daemon.cmd.executed")),
      obs_cmd_rejected_(&env.metrics().counter("daemon.cmd.rejected")),
      obs_auth_denied_(&env.metrics().counter("daemon.auth.denied")),
      obs_notify_sent_(&env.metrics().counter("daemon.notify.sent")),
      obs_notify_batches_(&env.metrics().counter("daemon.notify_batches")),
      obs_notify_batched_events_(
          &env.metrics().counter("daemon.notify_batched_events")),
      obs_conn_accepted_(&env.metrics().counter("daemon.conn.accepted")),
      obs_datagrams_(&env.metrics().counter("daemon.data.datagrams")),
      obs_control_depth_(&env.metrics().gauge("daemon.queue.control_depth")),
      obs_notify_depth_(&env.metrics().gauge("daemon.queue.notify_depth")),
      obs_handshake_queued_(&env.metrics().gauge("daemon.handshake.queued")) {
  register_builtin_commands();
}

ServiceDaemon::~ServiceDaemon() { stop(); }

net::Address ServiceDaemon::address() const {
  return net::Address{host_.name(), config_.port};
}

net::Address ServiceDaemon::data_address() const {
  return net::Address{host_.name(), config_.port};
}

ServiceDaemon::Stats ServiceDaemon::stats() const {
  std::scoped_lock lock(stats_mu_);
  return stats_;
}

void ServiceDaemon::register_command(CommandSpec spec, Handler handler) {
  // Every command implicitly tolerates the _noreply transport marker by
  // being validated after the marker is stripped. The per-verb latency
  // histogram is resolved once here so dispatch touches only atomics.
  handlers_[spec.name] = HandlerEntry{
      std::move(handler),
      &env_.metrics().histogram("daemon.cmd." + spec.name + ".latency_us")};
  semantics_.add(std::move(spec));
}

void ServiceDaemon::register_builtin_commands() {
  using cmdlang::integer_arg;
  using cmdlang::string_arg;
  using cmdlang::text_arg;
  using cmdlang::word_arg;

  register_command(
      CommandSpec("ping", "liveness probe"),
      [](const CmdLine&, const CallerInfo&) { return cmdlang::make_ok(); });

  register_command(
      CommandSpec("info", "describe this service daemon"),
      [this](const CmdLine&, const CallerInfo&) {
        CmdLine reply = cmdlang::make_ok();
        reply.arg("name", config_.name);
        reply.arg("class", config_.service_class);
        reply.arg("room", config_.room);
        reply.arg("host", host_.name());
        reply.arg("port", static_cast<std::int64_t>(config_.port));
        reply.arg("commands",
                  cmdlang::word_vector(semantics_.command_names()));
        return reply;
      });

  register_command(
      CommandSpec("help", "describe one command")
          .arg(word_arg("command")),
      [this](const CmdLine& cmd, const CallerInfo&) {
        const cmdlang::CommandSpec* spec =
            semantics_.find(cmd.get_text("command"));
        if (!spec)
          return cmdlang::make_error(util::Errc::not_found,
                                     "no such command");
        CmdLine reply = cmdlang::make_ok();
        reply.arg("command", Word{spec->name});
        reply.arg("help", spec->help);
        std::vector<std::string> args;
        for (const auto& a : spec->args)
          args.push_back(a.name + ":" + cmdlang::arg_type_name(a.type) +
                         (a.required ? "" : "?"));
        reply.arg("args", cmdlang::string_vector(std::move(args)));
        return reply;
      });

  // §2.5: "they issue an 'addNotification' command to the notifying
  // service either at startup or later."
  register_command(
      CommandSpec("addNotification",
                  "notify `service` by invoking `method` whenever `command` "
                  "is executed here")
          .arg(word_arg("command"))
          .arg(string_arg("service"))   // host:port
          .arg(word_arg("method")),
      [this](const CmdLine& cmd, const CallerInfo&) {
        auto addr = net::Address::parse(cmd.get_text("service"));
        if (!addr)
          return cmdlang::make_error(util::Errc::invalid,
                                     "service must be host:port");
        NotificationEntry entry;
        entry.command = cmd.get_text("command");
        entry.service = *addr;
        entry.method = cmd.get_text("method");
        std::scoped_lock lock(notify_mu_);
        for (const auto& e : notifications_) {
          if (e.command == entry.command && e.service == entry.service &&
              e.method == entry.method)
            return cmdlang::make_ok();  // idempotent
        }
        notifications_.push_back(std::move(entry));
        return cmdlang::make_ok();
      });

  register_command(
      CommandSpec("removeNotification", "stop notifying `service`")
          .arg(word_arg("command"))
          .arg(string_arg("service")),
      [this](const CmdLine& cmd, const CallerInfo&) {
        auto addr = net::Address::parse(cmd.get_text("service"));
        if (!addr)
          return cmdlang::make_error(util::Errc::invalid,
                                     "service must be host:port");
        std::string command = cmd.get_text("command");
        std::scoped_lock lock(notify_mu_);
        std::erase_if(notifications_, [&](const NotificationEntry& e) {
          return e.command == command && e.service == *addr;
        });
        return cmdlang::make_ok();
      });

  // Observability scrape point: every daemon inherits `metrics;`, so the
  // ACE shell and tests can pull the deployment's metric snapshot from any
  // service remotely. Thread-safe (registry snapshot), hence concurrent.
  register_command(
      CommandSpec("metrics", "deployment metrics snapshot").concurrent_ok(),
      [this](const CmdLine&, const CallerInfo&) {
        return encode_metrics_reply(env_.metrics().snapshot());
      });

  register_command(
      CommandSpec("listNotifications", "list notification subscriptions"),
      [this](const CmdLine&, const CallerInfo&) {
        CmdLine reply = cmdlang::make_ok();
        std::vector<std::string> entries;
        {
          std::scoped_lock lock(notify_mu_);
          for (const auto& e : notifications_)
            entries.push_back(e.command + ">" + e.service.to_string() + ">" +
                              e.method);
        }
        reply.arg("entries", cmdlang::string_vector(std::move(entries)));
        return reply;
      });

  // Receiver side of coalesced notification fan-out: each element of
  // `events` is one serialized notification command (the exact text a
  // per-event send would have framed), re-dispatched here through the same
  // validation/authorization path as a wire delivery. concurrent_ok is
  // load-bearing, not an optimization: dispatch(serialize=true) holds the
  // non-recursive exec_mu_, so a serialized handler calling execute() on
  // its own elements would self-deadlock.
  register_command(
      CommandSpec("notifyBatch",
                  "deliver a batch of coalesced notification events")
          .arg(string_arg("source"))
          .arg(cmdlang::vector_arg("events", cmdlang::ArgType::vector_string))
          .concurrent_ok(),
      [this](const CmdLine& cmd, const CallerInfo& caller) {
        std::int64_t dispatched = 0, rejected = 0;
        if (auto events = cmd.get_vector("events")) {
          for (const auto& elem : events->elements) {
            auto inner = cmdlang::Parser::parse(elem.as_text());
            if (!inner.ok()) {
              ++rejected;
              continue;
            }
            if (cmdlang::is_ok(execute(inner.value(), caller)))
              ++dispatched;
            else
              ++rejected;
          }
        }
        CmdLine reply = cmdlang::make_ok();
        reply.arg("dispatched", dispatched);
        reply.arg("rejected", rejected);
        return reply;
      });
}

// ------------------------------------------------------------------ startup

util::Status ServiceDaemon::run_startup_sequence() {
  // Fig 9, steps 2-5. Step 1 (launch) is start() itself.
  const net::Address self = address();

  // Step 2: establish location with the Room Database.
  if (config_.register_with_room_db && !env_.room_db_address.host.empty() &&
      env_.room_db_address != self) {
    CmdLine reg("roomAddService");
    reg.arg("room", Word{config_.room});
    reg.arg("name", config_.name);
    reg.arg("host", host_.name());
    reg.arg("port", static_cast<std::int64_t>(config_.port));
    reg.arg("class", config_.service_class);
    auto r = infra_client_->call(env_.room_db_address, reg, kCallOk);
    if (!r.ok())
      util::log_warn(config_.name)
          << "room database registration failed: " << r.error().to_string();
  }

  // Step 3: register with the ASD on its well-known socket.
  if (config_.register_with_asd && !env_.asd_address.host.empty() &&
      env_.asd_address != self) {
    if (auto s = register_with_asd(); !s.ok())
      return util::Error{s.error().code,
                         "ASD registration failed: " + s.error().message};
  }

  // Step 4 happens inside the ASD (registration fires its notifications).

  // Step 5: record the start with the Network Logger.
  net_log("info", "service '" + config_.name + "' started on host '" +
                      host_.name() + "'");
  return util::Status::ok_status();
}

util::Status ServiceDaemon::register_with_asd() {
  CmdLine reg("register");
  reg.arg("name", config_.name);
  reg.arg("host", host_.name());
  reg.arg("port", static_cast<std::int64_t>(config_.port));
  reg.arg("room", Word{config_.room});
  reg.arg("class", config_.service_class);
  reg.arg("lease", static_cast<std::int64_t>(config_.lease.count()));
  auto r = infra_client_->call(env_.asd_address, reg, kCallOk);
  if (!r.ok()) return r.error();
  return util::Status::ok_status();
}

util::Status ServiceDaemon::start() {
  if (running_.load()) return util::Status::ok_status();
  stopping_.store(false);
  // A prior stop()/crash() on this object closed the work queues; a
  // relaunch needs them accepting again (stale leftovers are dropped).
  control_queue_.reopen();
  notify_queue_.reopen();
  {
    std::scoped_lock lock(notify_pending_mu_);
    notify_pending_.clear();
  }

  if (config_.port == 0) config_.port = host_.net_host().ephemeral_port();
  auto listener = host_.net_host().listen(config_.port);
  if (!listener.ok()) return listener.error();
  listener_ = listener.value();

  if (config_.open_data_channel) {
    auto sock = host_.net_host().open_datagram(config_.port);
    if (!sock.ok()) return sock.error();
    data_socket_ = sock.value();
  }

  control_client_ =
      std::make_unique<AceClient>(env_, host_.net_host(), identity_);
  notify_client_ =
      std::make_unique<AceClient>(env_, host_.net_host(), identity_);
  infra_client_ =
      std::make_unique<AceClient>(env_, host_.net_host(), identity_);

  // The serving pumps must be registered before the startup sequence: the
  // ASD may call us back (and the ASD itself must serve while registering
  // nothing). Command execution may block (nested RPCs), so both the
  // control pump and the per-channel strands run on the ops pool; frame
  // decode and accept/handshake stay on the core pool.
  running_.store(true);
  net::Reactor& reactor = env_.reactor();
  accept_sub_ = listener_->on_accept(
      reactor,
      [this](std::optional<net::Connection> conn) {
        handle_accept(std::move(conn));
      });
  control_sub_ = net::attach_queue<WorkItem>(
      reactor, control_queue_,
      [this](std::optional<WorkItem> item) {
        if (!item) return;
        obs_control_depth_->set(
            static_cast<std::int64_t>(control_queue_.size()));
        run_work_item(*item, /*serialize=*/true);
      },
      {.blocking = true});
  notify_sub_ = net::attach_queue<net::Address>(
      reactor, notify_queue_,
      [this](std::optional<net::Address> dest) {
        if (dest) run_notify_dest(*dest);
      },
      {.blocking = true});
  if (data_socket_)
    data_sub_ = data_socket_->on_datagram(
        reactor,
        [this](std::optional<net::Datagram> dg) {
          if (!dg) return;
          {
            std::scoped_lock lock(stats_mu_);
            stats_.datagrams_received++;
          }
          obs_datagrams_->inc();
          on_datagram(*dg);
        },
        {.blocking = true});

  if (auto s = run_startup_sequence(); !s.ok()) {
    stop();
    return s;
  }
  if (auto s = on_start(); !s.ok()) {
    stop();
    return s;
  }

  if (config_.register_with_asd && !env_.asd_address.host.empty() &&
      env_.asd_address != address()) {
    if (config_.batch_renew)
      host_.leases().enroll(*this);
    else
      lease_thread_ =
          std::jthread([this](std::stop_token st) { lease_loop(st); });
  }
  return util::Status::ok_status();
}

void ServiceDaemon::stop() {
  if (!running_.exchange(false)) return;
  stopping_.store(true);

  // Leave the host's renewal batch before anything is torn down — after
  // withdraw() returns, no coordinator tick can call back into us, and a
  // stray renewal cannot resurrect the entry we deregister below.
  if (config_.batch_renew) host_.leases_withdraw(config_.name);

  on_stop();

  // Deregister cleanly (paper §2.4: "Registered services also automatically
  // remove themselves from the ASD registry upon shutdown").
  if (config_.register_with_asd && !env_.asd_address.host.empty() &&
      env_.asd_address != address()) {
    CmdLine dereg("deregister");
    dereg.arg("name", config_.name);
    (void)infra_client_->call(env_.asd_address, dereg,
                              CallOptions{.timeout = 500ms});
  }
  net_log("info", "service '" + config_.name + "' stopped");
  teardown();
}

// Tears down every reactor registration and connection. Order matters:
// stop the accept pump first (no new handshakes), then abort and await
// in-flight handshakes (no new actors), then kill the actors, and only
// then close the daemon-wide queues nothing can push to anymore.
void ServiceDaemon::teardown() {
  lease_thread_ = {};
  if (listener_) listener_->close();
  accept_sub_.stop();

  {
    // Closing a pending connection makes its async handshake fail; each
    // completion erases its registry entry, so an empty registry means no
    // handshake callback is left that could spawn an actor or touch us.
    std::unique_lock lock(pending_mu_);
    for (auto& [id, conn] : pending_handshakes_) conn.close();
    pending_cv_.wait(lock, [this] { return pending_handshakes_.empty(); });
  }

  std::map<std::uint64_t, std::shared_ptr<ChannelActor>> actors;
  {
    std::scoped_lock lock(actors_mu_);
    actors.swap(actors_);
  }
  for (auto& [id, actor] : actors) {
    // Mirror a real socket: when the daemon dies, its connections die with
    // it. Without this, a peer of a crashed daemon sees eternal silence
    // instead of a closed channel and times out every call rather than
    // failing fast and reconnecting after a relaunch.
    actor->channel->close();
    actor->frame_sub.stop();
    actor->work.close();
    actor->work_sub.stop();
  }

  if (data_socket_) data_socket_->close();
  data_sub_.stop();
  control_queue_.close();
  control_sub_.stop();
  notify_queue_.close();
  notify_sub_.stop();
  {
    // Undelivered events die with the daemon, like frames a dead process
    // never wrote. (The pump is stopped, so nothing races this clear.)
    std::scoped_lock lock(notify_pending_mu_);
    notify_pending_.clear();
  }

  if (control_client_) control_client_->close_all();
  if (notify_client_) notify_client_->close_all();
  if (infra_client_) infra_client_->close_all();
  listener_.reset();
  data_socket_.reset();
}

void ServiceDaemon::crash() {
  if (!running_.exchange(false)) return;
  stopping_.store(true);
  // No deregistration, no logging — the ASD must detect this via lease
  // expiry (paper §2.4). A crashed process is no longer resident, so the
  // host's coordinator stops renewing for it and the lease lapses.
  if (config_.batch_renew) host_.leases_withdraw(config_.name);
  teardown();
  // A real crash loses the process's volatile state. Anything re-derivable
  // (subscriptions, cached credentials, subclass soft state) must be
  // re-established by peers after a restart — which is exactly what the
  // self-healing paths (RM watchdog, lease re-registration) exercise.
  {
    std::scoped_lock lock(notify_mu_);
    notifications_.clear();
  }
  {
    std::scoped_lock lock(cred_mu_);
    credential_cache_.clear();
  }
  on_crash();
}

// -------------------------------------------------------------------- actors

void ServiceDaemon::handle_accept(std::optional<net::Connection> conn) {
  if (!conn) return;  // listener closed: the pump self-terminates
  std::uint64_t id;
  {
    std::scoped_lock lock(pending_mu_);
    id = next_pending_id_++;
    // Keep a handle (shared connection state) so teardown() can abort the
    // exchange by closing it under our feet.
    pending_handshakes_.emplace(id, *conn);
    obs_handshake_queued_->set(
        static_cast<std::int64_t>(pending_handshakes_.size()));
  }
  // The DH + certificate exchange is several round trips; as a reactor
  // state machine it costs no thread while waiting, so a slow (or hostile)
  // connector starves nobody and thousands may be in flight at once.
  crypto::SecureChannel::async_accept(
      env_.reactor(), std::move(*conn), identity_, env_.ca_key(),
      env_.default_timeout, env_.channel_options(),
      [this, id](util::Result<crypto::SecureChannel> ch) {
        finish_accept(id, std::move(ch));
      });
}

void ServiceDaemon::finish_accept(std::uint64_t pending_id,
                                  util::Result<crypto::SecureChannel> ch) {
  if (!ch.ok()) {
    if (!stopping_.load())
      util::log_warn(config_.name)
          << "handshake failed: " << ch.error().to_string();
  } else if (stopping_.load()) {
    ch.value().close();  // lost the race with stop(): refuse the channel
  } else {
    {
      std::scoped_lock lock(stats_mu_);
      stats_.connections_accepted++;
    }
    obs_conn_accepted_->inc();
    auto channel =
        std::make_shared<crypto::SecureChannel>(std::move(ch.value()));
    auto actor = std::make_shared<ChannelActor>();
    actor->channel = channel;
    actor->caller.principal = channel->peer_name();
    actor->v2 = channel->negotiated_version() >= wire::kProtocolV2;
    {
      std::scoped_lock lock(actors_mu_);
      actor->id = next_actor_id_++;
      actors_.emplace(actor->id, actor);
    }
    // Strand first, frames second: by the time a frame can enqueue work
    // the work pump exists. Both pumps capture the actor; the captures are
    // released when the pumps hit their terminal state (connection closed,
    // work queue drained), so a dead connection frees its actor.
    actor->work_sub = net::attach_queue<WorkItem>(
        env_.reactor(), actor->work,
        [this, actor](std::optional<WorkItem> item) {
          if (item) run_work_item(*item, /*serialize=*/false);
        },
        {.blocking = true});
    actor->frame_sub = channel->on_frame(
        env_.reactor(), [this, actor](std::optional<net::Frame> frame) {
          handle_frame(actor, std::move(frame));
        });
  }
  std::scoped_lock lock(pending_mu_);
  pending_handshakes_.erase(pending_id);
  obs_handshake_queued_->set(
      static_cast<std::int64_t>(pending_handshakes_.size()));
  if (pending_handshakes_.empty()) pending_cv_.notify_all();
}

// Runs on the core pool: decode and route only, never execute.
void ServiceDaemon::handle_frame(const std::shared_ptr<ChannelActor>& actor,
                                 std::optional<net::Frame> frame) {
  if (!frame) {
    // Connection closed and drained. Close the strand (its pump terminates
    // after the backlog) and forget the actor.
    actor->work.close();
    std::scoped_lock lock(actors_mu_);
    actors_.erase(actor->id);
    return;
  }
  std::uint64_t call_id = 0;
  bool flag_noreply = false;
  std::string_view body;
  if (actor->v2) {
    auto decoded = wire::decode_frame(*frame);
    if (!decoded) {  // truncated demux header: no id to reply to
      std::scoped_lock lock(stats_mu_);
      stats_.commands_rejected++;
      return;
    }
    call_id = decoded->call_id;
    flag_noreply = (decoded->flags & wire::kFlagNoReply) != 0;
    body = decoded->body;
  } else {
    body = util::to_string_view(*frame);
  }
  auto parsed = cmdlang::Parser::parse(body);
  if (!parsed.ok()) {
    {
      std::scoped_lock lock(stats_mu_);
      stats_.commands_rejected++;
    }
    if (!flag_noreply)
      send_reply(*actor->channel, actor->v2, call_id,
                 cmdlang::make_error(parsed.error().code,
                                     parsed.error().message));
    return;
  }
  WorkItem item;
  item.cmd = strip_noreply(parsed.value(), &item.noreply);
  item.noreply = item.noreply || flag_noreply;
  item.caller = actor->caller;
  item.channel = actor->channel;
  item.call_id = call_id;
  item.v2 = actor->v2;

  // Concurrent commands (thread-safe handlers) run on this connection's
  // own strand, so they cannot convoy behind a busy control queue —
  // essential for peer-to-peer hot paths like store replication. Order
  // within one connection is still the arrival order.
  const cmdlang::CommandSpec* spec = semantics_.find(item.cmd.name());
  if (spec && spec->concurrent) {
    actor->work.push(std::move(item));
    return;
  }
  if (!control_queue_.push(std::move(item))) return;  // shutting down
  obs_control_depth_->set(static_cast<std::int64_t>(control_queue_.size()));
}

// Runs on the ops pool (command handlers may block on nested RPCs).
void ServiceDaemon::run_work_item(const WorkItem& item, bool serialize) {
  CmdLine reply = dispatch(item.cmd, item.caller, serialize);
  if (item.channel && !item.noreply)
    send_reply(*item.channel, item.v2, item.call_id, reply);
}

CmdLine ServiceDaemon::execute(const CmdLine& cmd, const CallerInfo& caller) {
  // Mirror the network path: commands declared concurrent_ok run without
  // the exec_mu_ serialization, so in-process callers (tests, benches,
  // composition) see the same concurrency the wire sees.
  const cmdlang::CommandSpec* spec = semantics_.find(cmd.name());
  return dispatch(cmd, caller, /*serialize=*/!(spec && spec->concurrent));
}

CmdLine ServiceDaemon::dispatch(const CmdLine& cmd, const CallerInfo& caller,
                                bool serialize) {
  obs::Span span(env_.metrics(), "daemon", "cmd");
  const auto started = std::chrono::steady_clock::now();
  if (auto s = semantics_.validate(cmd); !s.ok()) {
    span.fail();
    obs_cmd_rejected_->inc();
    std::scoped_lock lock(stats_mu_);
    stats_.commands_rejected++;
    return cmdlang::make_error(s.error().code, s.error().message);
  }
  if (auto s = authorize(cmd, caller); !s.ok()) {
    span.fail();
    obs_auth_denied_->inc();
    {
      std::scoped_lock lock(stats_mu_);
      stats_.authorizations_denied++;
    }
    // §4.14's intrusion example: failed authorization attempts are
    // reported to the Network Logger so repeated offenders raise alerts.
    net_log("security", "authorization denied for principal '" +
                            (caller.principal.empty() ? "anonymous"
                                                      : caller.principal) +
                            "' on command '" + cmd.name() + "'");
    return cmdlang::make_error(s.error().code, s.error().message);
  }
  HandlerEntry& handler = handlers_.at(cmd.name());
  CmdLine reply;
  if (serialize) {
    std::scoped_lock lock(exec_mu_);
    reply = handler.fn(cmd, caller);
  } else {
    reply = handler.fn(cmd, caller);  // handler declared thread-safe
  }
  handler.latency->observe(std::chrono::steady_clock::now() - started);
  obs_cmd_executed_->inc();
  span.set_ok(cmdlang::is_ok(reply));
  {
    std::scoped_lock lock(stats_mu_);
    stats_.commands_executed++;
  }
  if (cmdlang::is_ok(reply)) fire_notifications(cmd);
  return reply;
}

util::Status ServiceDaemon::authorize(const CmdLine& cmd,
                                      const CallerInfo& caller) {
  if (!config_.enforce_authorization) return util::Status::ok_status();

  std::string principal =
      caller.principal.empty() ? "anonymous" : caller.principal;

  // Fig 10 step 2-4: fetch the caller's credentials from the
  // Authorization Database (with a short-lived cache).
  std::vector<keynote::Assertion> credentials;
  bool cached = false;
  {
    std::scoped_lock lock(cred_mu_);
    auto it = credential_cache_.find(principal);
    if (it != credential_cache_.end() &&
        std::chrono::steady_clock::now() - it->second.fetched <
            config_.credential_cache_ttl) {
      credentials = it->second.credentials;
      cached = true;
    }
  }
  if (!cached && !env_.auth_db_address.host.empty() &&
      env_.auth_db_address != address()) {
    CmdLine fetch("getCredentials");
    fetch.arg("principal", principal);
    auto reply = control_client_->call(env_.auth_db_address, fetch, kCallOk);
    if (reply.ok()) {
      if (auto vec = reply->get_vector("credentials")) {
        for (const auto& elem : vec->elements) {
          if (!elem.is_string() && !elem.is_word()) continue;
          auto a = keynote::Assertion::parse(elem.as_text());
          if (a.ok()) credentials.push_back(std::move(a.value()));
        }
      }
      std::scoped_lock lock(cred_mu_);
      credential_cache_[principal] = {credentials,
                                      std::chrono::steady_clock::now()};
    }
  }

  // Fig 10 step 5-6: hand everything to KeyNote.
  keynote::ComplianceQuery query;
  query.requester = principal;
  query.action = {
      {"app_domain", "ace"},
      {"service", config_.name},
      {"service_class", config_.service_class},
      {"room", config_.room},
      {"command", cmd.name()},
      {"principal", principal},
  };
  query.policies = env_.policies();
  query.credentials = std::move(credentials);
  auto result = keynote::ComplianceChecker::check(query, &env_.keys());
  if (!result.ok()) return result.error();
  if (!result->authorized) {
    return util::Error{util::Errc::auth_error,
                       "principal '" + principal +
                           "' is not authorized for command '" + cmd.name() +
                           "' on service '" + config_.name + "'"};
  }
  return util::Status::ok_status();
}

void ServiceDaemon::fire_notifications(const CmdLine& cmd) {
  std::scoped_lock lock(notify_mu_);
  for (const NotificationEntry& e : notifications_) {
    if (e.command != cmd.name()) continue;
    NotifyJob job;
    job.method = e.method;
    job.command = cmd.name();
    job.detail = cmd.to_string();
    bool first = false;
    {
      std::scoped_lock plock(notify_pending_mu_);
      auto& pending = notify_pending_[e.service];
      first = pending.empty();
      pending.push_back(std::move(job));
    }
    // Token per destination, not per event: a destination already in the
    // queue will pick up this job when its token drains. (If the pump is
    // mid-drain and has already swapped the backlog out, `pending` is a
    // fresh empty vector and `first` re-arms the token — no lost events.)
    if (first) {
      notify_queue_.push(e.service);
      obs_notify_depth_->set(static_cast<std::int64_t>(notify_queue_.size()));
    }
  }
}

// Drops a subscriber whose host keeps refusing deliveries. Matches every
// entry for (dest, command) — the same subscriber may listen with several
// methods, and they all rode the failed frame.
void ServiceDaemon::record_notify_failure(const net::Address& dest,
                                          const std::string& command) {
  std::scoped_lock lock(notify_mu_);
  for (auto& e : notifications_) {
    if (e.service == dest && e.command == command &&
        ++e.failures >= kMaxNotifyFailures) {
      std::erase_if(notifications_, [&](const NotificationEntry& x) {
        return x.service == dest && x.command == command;
      });
      break;
    }
  }
}

// Runs on the ops pool (send_only may block on connection establishment).
// Its own pump — not the control pump — so notification fan-out between
// two daemons that notify each other cannot deadlock. Drains the whole
// backlog for one destination: a single event goes out in the original
// per-event shape; a pile-up is coalesced into one notifyBatch frame
// (unless batch_notify is off — the E21d ablation).
void ServiceDaemon::run_notify_dest(const net::Address& dest) {
  std::vector<NotifyJob> jobs;
  {
    std::scoped_lock lock(notify_pending_mu_);
    auto it = notify_pending_.find(dest);
    if (it != notify_pending_.end()) {
      jobs = std::move(it->second);
      notify_pending_.erase(it);
    }
  }
  obs_notify_depth_->set(static_cast<std::int64_t>(notify_queue_.size()));
  if (jobs.empty()) return;

  if (jobs.size() == 1 || !config_.batch_notify) {
    for (const NotifyJob& job : jobs) {
      CmdLine notify(job.method);
      notify.arg("source", config_.name);
      notify.arg("command", Word{job.command});
      notify.arg("detail", job.detail);
      auto s = notify_client_->send_only(dest, notify);
      obs_notify_sent_->inc();
      {
        std::scoped_lock lock(stats_mu_);
        stats_.notifications_sent++;
      }
      if (!s.ok()) record_notify_failure(dest, job.command);
    }
    return;
  }

  std::vector<std::string> events;
  events.reserve(jobs.size());
  for (const NotifyJob& job : jobs) {
    CmdLine notify(job.method);
    notify.arg("source", config_.name);
    notify.arg("command", Word{job.command});
    notify.arg("detail", job.detail);
    events.push_back(notify.to_string());
  }
  CmdLine batch("notifyBatch");
  batch.arg("source", config_.name);
  batch.arg("events", cmdlang::string_vector(std::move(events)));
  auto s = notify_client_->send_only(dest, batch);
  obs_notify_batches_->inc();
  obs_notify_batched_events_->inc(jobs.size());
  obs_notify_sent_->inc(jobs.size());
  {
    std::scoped_lock lock(stats_mu_);
    stats_.notifications_sent += jobs.size();
  }
  if (!s.ok()) {
    // The frame carried every command; charge each distinct one once.
    std::vector<std::string> seen;
    for (const NotifyJob& job : jobs) {
      if (std::find(seen.begin(), seen.end(), job.command) != seen.end())
        continue;
      seen.push_back(job.command);
      record_notify_failure(dest, job.command);
    }
  }
}

void ServiceDaemon::lease_loop(std::stop_token st) {
  while (!st.stop_requested()) {
    // Sleep in poll-sized slices so shutdown stays prompt.
    auto remaining = config_.lease_renew;
    while (remaining.count() > 0 && !st.stop_requested()) {
      auto slice = std::min<std::chrono::milliseconds>(
          remaining, std::chrono::duration_cast<std::chrono::milliseconds>(
                         kPollInterval));
      std::this_thread::sleep_for(slice);
      remaining -= slice;
    }
    if (st.stop_requested()) return;
    CmdLine renew("renew");
    renew.arg("name", config_.name);
    auto r = infra_client_->call(
        env_.asd_address, renew,
        CallOptions{.timeout = 500ms, .require_ok = true});
    if (r.ok()) continue;
    util::log_warn(config_.name)
        << "lease renewal failed: " << r.error().to_string();
    // `not_found` means the ASD has no lease for us — it crashed and came
    // back with an empty registry. Renewing harder cannot fix that; only a
    // fresh registration (Fig 9 step 3) heals the directory entry.
    if (r.error().code == util::Errc::not_found) {
      if (register_with_asd().ok()) {
        env_.metrics().counter("daemon.lease.reregistered").inc();
        net_log("info", "service '" + config_.name +
                            "' re-registered after ASD state loss");
      }
    }
  }
}

void ServiceDaemon::handle_lease_lost() {
  // Called from the host's LeaseCoordinator when a batched renewal came
  // back `not_found` — same healing as the per-daemon loop above.
  if (!running_.load() || stopping_.load()) return;
  if (register_with_asd().ok()) {
    env_.metrics().counter("daemon.lease.reregistered").inc();
    net_log("info", "service '" + config_.name +
                        "' re-registered after ASD state loss");
  }
}

util::Status ServiceDaemon::send_datagram(const net::Address& to,
                                          util::SharedBytes payload) {
  if (!data_socket_)
    return {util::Errc::invalid, "daemon has no data channel"};
  return data_socket_->send_to(to, std::move(payload));
}

util::Status ServiceDaemon::send_datagrams(std::span<const net::Address> to,
                                           const util::SharedBytes& payload) {
  if (!data_socket_)
    return {util::Errc::invalid, "daemon has no data channel"};
  return data_socket_->send_many(to, payload);
}

void ServiceDaemon::net_log(const std::string& level,
                            const std::string& message) {
  if (!config_.log_to_net_logger || env_.net_logger_address.host.empty())
    return;
  if (env_.net_logger_address == address()) return;
  if (!infra_client_) return;
  CmdLine log("log");
  log.arg("source", config_.name);
  log.arg("level", Word{level});
  log.arg("message", message);
  (void)infra_client_->send_only(env_.net_logger_address, log);
}

}  // namespace ace::daemon
