// The ACE service daemon (paper §2.1): the building block of every ACE
// service. Reproduces the paper's design:
//
//  * thread structure (§2.1.1), reinterpreted for scale: the paper gives
//    each daemon an accept thread, a command thread per connection, a
//    control thread and a data thread. We keep the same roles but run them
//    as reactor actors on the Environment's shared net::Reactor: accepted
//    connections become per-channel state machines (frame decode on the
//    core pool, command execution on per-channel strands of the elastic
//    ops pool), the control "thread" is a serialized queue pump, and
//    notification fan-out gets its own pump so two daemons notifying each
//    other cannot deadlock. Semantics are unchanged — per-connection
//    command order, one serialized control stream, concurrent_ok commands
//    running in parallel — but thread count is O(reactor pool), not
//    O(connections). See docs/net.md.
//  * command language integration (§2.2): incoming strings are parsed and
//    validated against this daemon's SemanticRegistry before execution.
//  * service hierarchy (§2.3): subclasses inherit the base "Service"
//    commands and add their own (see devices.hpp and src/services/).
//  * notifications (§2.5): addNotification/removeNotification plus fan-out
//    after successful command execution.
//  * startup (§2.6, Fig 9): Room Database -> ASD registration (with lease)
//    -> Network Logger, then periodic lease renewal.
//  * security (§3): per-connection secure-channel handshake; optional
//    per-command KeyNote authorization against the Authorization Database.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "cmdlang/semantics.hpp"
#include "cmdlang/value.hpp"
#include "daemon/client.hpp"
#include "daemon/environment.hpp"
#include "net/network.hpp"
#include "obs/metrics.hpp"
#include "util/queue.hpp"

namespace ace::daemon {

class DaemonHost;

// Renders a metrics snapshot as the reply of the inherited `metrics;`
// command: `ok counters={...} gauges={...} histograms={...} spans=N;` with
// one `name=value` string per counter/gauge and one
// `name|count=..|sum_us=..|le_<bound>=..|..|le_inf=..` string per
// histogram. Shared by the daemon builtin and by tools that re-encode
// scraped snapshots.
cmdlang::CmdLine encode_metrics_reply(const obs::MetricsSnapshot& snapshot);

struct DaemonConfig {
  std::string name;           // unique service instance name, e.g. "asd"
  std::string service_class;  // hierarchy path, e.g. "Service/Device/PTZCamera/VCC3"
  std::string room;           // room this service lives in, e.g. "hawk"
  std::uint16_t port = 0;     // 0 = allocate an ephemeral port

  std::chrono::milliseconds lease{2000};        // requested ASD lease time
  std::chrono::milliseconds lease_renew{500};   // renewal period

  bool register_with_asd = true;
  bool register_with_room_db = true;
  bool log_to_net_logger = true;

  // true: this daemon's lease rides the host's LeaseCoordinator — one
  // `renewBatch` RPC per host per interval. false: the original scheme, a
  // dedicated lease thread and one `renew` RPC per service per interval
  // (kept for the E15c renewal-traffic ablation).
  bool batch_renew = true;

  // true: notification fan-out coalesces every event queued for the same
  // destination into one `notifyBatch` RPC (the renewBatch trick applied
  // to the notify pump — one wire frame per subscriber host per drain, not
  // per event). false restores per-event sends (the E21d ablation).
  bool batch_notify = true;

  // When true, every command is checked through KeyNote (Fig 10) before
  // execution, with credentials fetched from the Authorization Database.
  bool enforce_authorization = false;
  std::chrono::milliseconds credential_cache_ttl{5000};

  // When true, the daemon opens a datagram socket on its port and runs the
  // data thread (for streaming services).
  bool open_data_channel = false;
};

// Who issued the command (from the secure channel's peer certificate).
struct CallerInfo {
  std::string principal;  // certificate subject; empty on plaintext channels
  net::Address address;
};

class ServiceDaemon {
 public:
  using Handler = std::function<cmdlang::CmdLine(const cmdlang::CmdLine&,
                                                 const CallerInfo&)>;

  struct Stats {
    std::uint64_t connections_accepted = 0;
    std::uint64_t commands_executed = 0;
    std::uint64_t commands_rejected = 0;   // parse/semantic failures
    std::uint64_t authorizations_denied = 0;
    std::uint64_t notifications_sent = 0;
    std::uint64_t datagrams_received = 0;
  };

  ServiceDaemon(Environment& env, DaemonHost& host, DaemonConfig config);
  virtual ~ServiceDaemon();

  ServiceDaemon(const ServiceDaemon&) = delete;
  ServiceDaemon& operator=(const ServiceDaemon&) = delete;

  // Runs the Fig 9 startup sequence and spawns the daemon threads.
  util::Status start();

  // Graceful shutdown: deregisters from the ASD, logs, joins all threads.
  void stop();

  // Simulated failure: tears everything down abruptly *without*
  // deregistering, so the ASD only learns of the death via lease expiry.
  // Volatile in-memory state dies with the "process": notification
  // subscriptions and cached credentials are wiped here, and subclasses
  // drop their own soft state in on_crash(). A later start() on the same
  // object models relaunching the binary on the same machine.
  void crash();

  bool running() const { return running_.load(); }
  const DaemonConfig& config() const { return config_; }
  net::Address address() const;
  net::Address data_address() const;
  Stats stats() const;
  const cmdlang::SemanticRegistry& semantics() const { return semantics_; }

  // Executes a command locally (same validation/authorization path as a
  // network command). Used by tests and in-process composition.
  cmdlang::CmdLine execute(const cmdlang::CmdLine& cmd,
                           const CallerInfo& caller);

 protected:
  // Subclass API -----------------------------------------------------------
  void register_command(cmdlang::CommandSpec spec, Handler handler);

  Environment& env() { return env_; }
  DaemonHost& host() { return host_; }

  // Client for use from command handlers (control thread).
  AceClient& control_client() { return *control_client_; }

  // Called after infrastructure registration, before the daemon is
  // considered started. Subclasses register with peer services here.
  virtual util::Status on_start() { return util::Status::ok_status(); }
  virtual void on_stop() {}

  // Called at the end of crash(), after every thread is torn down: drop
  // whatever in-memory state a real process death would lose. The base
  // class has already cleared subscriptions and credential caches.
  virtual void on_crash() {}

  // Data-thread hook: called for each datagram received on the data
  // channel (requires config.open_data_channel).
  virtual void on_datagram(const net::Datagram& datagram) { (void)datagram; }

  // Sends a datagram from this daemon's data socket. The payload is a
  // shared view: pass `util::Bytes` (wrapped once) or an existing
  // `util::SharedBytes` (no copy at all).
  util::Status send_datagram(const net::Address& to,
                             util::SharedBytes payload);

  // Scatter-gather fan-out: one payload to every address in `to` through a
  // single network-core trip, all destinations sharing one buffer.
  util::Status send_datagrams(std::span<const net::Address> to,
                              const util::SharedBytes& payload);

  // Fans out a notification as if `event` had been executed as a command
  // (paper §2.5). Used by sensor daemons whose interesting events are
  // results (e.g. "identified user=john") rather than the triggering
  // command itself. Safe to call from command handlers.
  void emit_notification(const cmdlang::CmdLine& event) {
    fire_notifications(event);
  }

  // Appends to the ACE Network Logger (fire-and-forget).
  void net_log(const std::string& level, const std::string& message);

  const crypto::Identity& identity() const { return identity_; }

 private:
  // The host's LeaseCoordinator renews this daemon's lease and reports a
  // lost one (directory restarted empty) via handle_lease_lost().
  friend class LeaseCoordinator;
  void handle_lease_lost();

  struct NotificationEntry {
    std::string command;  // command being listened for
    net::Address service; // who to notify
    std::string method;   // command to invoke on the notified service
    int failures = 0;
  };

  struct NotifyJob {
    std::string method;
    std::string command;  // the command that fired
    std::string detail;   // serialized original command
  };

  struct WorkItem {
    cmdlang::CmdLine cmd;
    CallerInfo caller;
    std::shared_ptr<crypto::SecureChannel> channel;  // null for local execute
    bool noreply = false;
    std::uint64_t call_id = 0;  // echoed on the reply frame (protocol v2)
    bool v2 = false;            // frame the reply with the demux header
  };

  // One accepted connection as a reactor actor. Inbound frames are decoded
  // on the core pool (handle_frame); concurrent_ok commands run on `work`,
  // a per-channel strand pumped on the ops pool (per-connection order,
  // cross-connection parallelism); serialized commands go to the daemon's
  // control queue. Dropped from `actors_` when the connection dies.
  struct ChannelActor {
    std::uint64_t id = 0;
    std::shared_ptr<crypto::SecureChannel> channel;
    CallerInfo caller;
    bool v2 = false;
    util::MessageQueue<WorkItem> work;
    net::Subscription frame_sub;
    net::Subscription work_sub;
  };

  void handle_accept(std::optional<net::Connection> conn);
  void finish_accept(std::uint64_t pending_id,
                     util::Result<crypto::SecureChannel> ch);
  void handle_frame(const std::shared_ptr<ChannelActor>& actor,
                    std::optional<net::Frame> frame);
  void run_work_item(const WorkItem& item, bool serialize);
  void run_notify_dest(const net::Address& dest);
  void record_notify_failure(const net::Address& dest,
                             const std::string& command);
  void lease_loop(std::stop_token st);
  void teardown();

  cmdlang::CmdLine dispatch(const cmdlang::CmdLine& cmd,
                            const CallerInfo& caller, bool serialize = true);
  util::Status authorize(const cmdlang::CmdLine& cmd,
                         const CallerInfo& caller);
  void fire_notifications(const cmdlang::CmdLine& cmd);
  void register_builtin_commands();
  util::Status run_startup_sequence();
  util::Status register_with_asd();

  Environment& env_;
  DaemonHost& host_;
  DaemonConfig config_;
  crypto::Identity identity_;

  cmdlang::SemanticRegistry semantics_;
  struct HandlerEntry {
    Handler fn;
    obs::Histogram* latency = nullptr;  // daemon.cmd.<verb>.latency_us
  };
  std::map<std::string, HandlerEntry> handlers_;

  std::shared_ptr<net::Listener> listener_;
  std::shared_ptr<net::DatagramSocket> data_socket_;

  std::unique_ptr<AceClient> control_client_;
  std::unique_ptr<AceClient> notify_client_;
  std::unique_ptr<AceClient> infra_client_;  // lease renewal + registration

  // Notify pump: the queue carries destination *tokens*, the events
  // themselves accumulate per destination in notify_pending_. A token is
  // pushed only on a destination's empty→non-empty transition, so however
  // many events pile up between drains, each destination is visited once
  // and its whole backlog rides one notifyBatch frame (config_.batch_notify
  // permitting).
  util::MessageQueue<net::Address> notify_queue_;
  std::mutex notify_pending_mu_;
  std::map<net::Address, std::vector<NotifyJob>> notify_pending_;
  util::MessageQueue<WorkItem> control_queue_;
  std::mutex exec_mu_;  // serializes dispatch (control pump + local execute)

  // Raw accepted connections whose async handshake is in flight, keyed by
  // a ticket id. stop() closes them all and waits for the registry to
  // drain (each async completion erases its entry), so no handshake
  // callback can outlive the daemon.
  std::mutex pending_mu_;
  std::condition_variable pending_cv_;
  std::map<std::uint64_t, net::Connection> pending_handshakes_;
  std::uint64_t next_pending_id_ = 1;

  std::mutex actors_mu_;
  std::map<std::uint64_t, std::shared_ptr<ChannelActor>> actors_;
  std::uint64_t next_actor_id_ = 1;

  mutable std::mutex notify_mu_;
  std::vector<NotificationEntry> notifications_;

  mutable std::mutex cred_mu_;
  struct CachedCredentials {
    std::vector<keynote::Assertion> credentials;
    std::chrono::steady_clock::time_point fetched;
  };
  std::map<std::string, CachedCredentials> credential_cache_;

  mutable std::mutex stats_mu_;
  Stats stats_;

  // Cached obs cells (deployment registry, `daemon.*` names).
  obs::Counter* obs_cmd_executed_;
  obs::Counter* obs_cmd_rejected_;
  obs::Counter* obs_auth_denied_;
  obs::Counter* obs_notify_sent_;
  obs::Counter* obs_notify_batches_;         // daemon.notify_batches
  obs::Counter* obs_notify_batched_events_;  // daemon.notify_batched_events
  obs::Counter* obs_conn_accepted_;
  obs::Counter* obs_datagrams_;
  obs::Gauge* obs_control_depth_;
  obs::Gauge* obs_notify_depth_;
  obs::Gauge* obs_handshake_queued_;

  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};

  // Reactor registrations replacing the accept/handshake/control/notifier/
  // data threads. Per-connection pumps live in ChannelActor.
  net::Subscription accept_sub_;
  net::Subscription control_sub_;
  net::Subscription notify_sub_;
  net::Subscription data_sub_;
  // Dedicated lease thread, kept only for the E15c per-service renewal
  // ablation (batch_renew = false); the default path rides the host's
  // LeaseCoordinator on reactor timers.
  std::jthread lease_thread_;
};

}  // namespace ace::daemon
