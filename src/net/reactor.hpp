// net::Reactor — the event loop at the heart of the fabric.
//
// The paper's §2.1.1 daemon spends threads freely: one per accepted
// connection, one per client destination, one per host for leases. That was
// right for a campus LAN and caps a process at a few thousand endpoints.
// The reactor inverts the structure (the rotor/actor shape syncspirit
// uses): connections become *state machines* driven by readiness callbacks,
// and the process runs O(pool) threads regardless of connection count.
//
// Readiness on the simulated substrate is queue non-emptiness: every
// Connection/Listener/DatagramSocket endpoint is backed by a
// util::MessageQueue, and the queue's signal hook (set_signal) is the
// epoll-edge equivalent. attach_queue() below turns a queue plus a handler
// into a serialized pump: items are delivered one at a time, in order, on a
// reactor worker, with a final handler(std::nullopt) exactly once when the
// queue is closed and drained.
//
// Two worker tiers:
//  * core workers — a small fixed pool for transport work (frame pumps,
//    handshake steps, reply demux). Core tasks must never block; this is
//    what guarantees the fabric keeps moving no matter what services do.
//  * ops workers — an elastic pool (grown on demand, idled away) for
//    service work that may block: command handlers doing nested RPCs
//    (store quorum fan-out, credential fetches), notification fan-out,
//    lease ticks. Blocking here can never starve transport.
//
// Timers: post_after/post_at run a task later; cancel() unarms it. The
// pumps use timers to model link latency (a frame is not readable before
// its deliver_at), replacing the blocking path's sleep_until.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "util/queue.hpp"

namespace ace::net {

class Reactor;

namespace detail {
struct SubCore;
}  // namespace detail

// Handle to one queue pump created by attach_queue(). Dropping the handle
// does NOT stop the pump (the queue keeps it alive); call stop() to detach
// deterministically. stop() waits for an in-flight handler invocation to
// finish — unless called from inside that handler, which is allowed and
// returns immediately (the pump halts once the handler returns).
class Subscription {
 public:
  Subscription() = default;
  explicit Subscription(std::shared_ptr<detail::SubCore> core)
      : core_(std::move(core)) {}

  // True until the pump stopped (explicitly or by delivering its final
  // std::nullopt).
  bool active() const;

  // Halts delivery. Idempotent. After return (from outside the handler) no
  // handler invocation is running or will run.
  void stop();

 private:
  std::shared_ptr<detail::SubCore> core_;
};

// Cancellation guard for free-standing reactor tasks (timer chains that
// capture a raw owner pointer). wrap() makes a task a no-op after revoke();
// revoke() additionally waits for any wrapped task mid-run — except when
// called from inside one — so the owner may be destroyed right after.
class TaskGuard {
 public:
  TaskGuard() : core_(std::make_shared<Core>()) {}

  std::function<void()> wrap(std::function<void()> fn) const;
  void revoke();

 private:
  struct Core {
    std::mutex mu;
    std::condition_variable cv;
    bool revoked = false;
    int running = 0;
    std::thread::id tid{};
  };
  std::shared_ptr<Core> core_;
};

class Reactor {
 public:
  using Task = std::function<void()>;
  using Clock = std::chrono::steady_clock;
  using TimerId = std::uint64_t;

  struct Options {
    // Fixed transport pool. Small on purpose: core tasks never block, so
    // width buys parallelism, not liveness.
    int core_workers = 2;
    // Elastic blocking pool: at least `ops_min` workers while the reactor
    // runs, growing up to `ops_max` when every worker is busy and work is
    // queued, shrinking back after `ops_idle` without work.
    int ops_min = 2;
    int ops_max = 256;
    std::chrono::milliseconds ops_idle{2000};
  };

  struct Stats {
    std::uint64_t tasks_run = 0;
    std::uint64_t blocking_tasks_run = 0;
    std::uint64_t timers_fired = 0;
    std::uint64_t ops_spawned = 0;
    int core_threads = 0;
    int ops_threads = 0;
  };

  // Counters land in `metrics` under `reactor.*` names when a registry is
  // supplied (the Environment wires its own in).
  Reactor() : Reactor(Options{}, nullptr) {}
  explicit Reactor(obs::MetricsRegistry* metrics)
      : Reactor(Options{}, metrics) {}
  explicit Reactor(Options options, obs::MetricsRegistry* metrics = nullptr);
  ~Reactor();

  Reactor(const Reactor&) = delete;
  Reactor& operator=(const Reactor&) = delete;

  // Schedules a task on the core (transport) pool. The task must not
  // block. Dropped silently once the reactor is stopping.
  void post(Task task);

  // Schedules a task on the elastic ops pool; blocking (bounded — e.g. an
  // RPC with a timeout) is allowed there.
  void post_blocking(Task task);

  // Runs `task` at/after the given time on the chosen pool. Returns an id
  // for cancel(); 0 when the reactor is stopping (never fires).
  TimerId post_at(Clock::time_point at, Task task, bool blocking = false);
  TimerId post_after(Clock::duration delay, Task task, bool blocking = false);

  // Unarms a pending timer. False if it already fired (or id is 0/unknown);
  // the task may still be running or queued in that case.
  bool cancel(TimerId id);

  // Stops all pools and the timer thread; queued work is dropped. Called
  // by the destructor; safe to call twice.
  void stop();

  Stats stats() const;

 private:
  struct TimerEntry {
    TimerId id = 0;
    Task task;
    bool blocking = false;
  };
  struct OpsWorker {
    std::jthread thread;
    bool exited = false;
  };

  void core_loop();
  void ops_loop(OpsWorker* self);
  void timer_loop();
  void spawn_ops_locked();
  void reap_ops_locked(std::vector<std::unique_ptr<OpsWorker>>& out);

  Options options_;

  util::MessageQueue<Task> core_queue_;
  std::vector<std::jthread> core_workers_;

  mutable std::mutex ops_mu_;
  std::condition_variable ops_cv_;
  std::deque<Task> ops_queue_;
  int ops_idle_count_ = 0;
  int ops_live_ = 0;
  bool stopping_ = false;
  std::vector<std::unique_ptr<OpsWorker>> ops_workers_;

  std::mutex timer_mu_;
  std::condition_variable timer_cv_;
  bool timer_stop_ = false;
  std::multimap<Clock::time_point, TimerEntry> timers_;
  std::map<TimerId, std::multimap<Clock::time_point, TimerEntry>::iterator>
      timer_index_;
  TimerId next_timer_id_ = 1;
  std::jthread timer_thread_;

  std::atomic<std::uint64_t> tasks_run_{0};
  std::atomic<std::uint64_t> blocking_tasks_run_{0};
  std::atomic<std::uint64_t> timers_fired_{0};
  std::atomic<std::uint64_t> ops_spawned_{0};

  // Optional obs cells (null without a registry).
  obs::Counter* obs_tasks_ = nullptr;
  obs::Counter* obs_blocking_tasks_ = nullptr;
  obs::Counter* obs_timers_ = nullptr;
  obs::Counter* obs_ops_spawned_ = nullptr;
  obs::Gauge* obs_threads_ = nullptr;
};

namespace detail {

// The pump protocol state shared between the queue's signal hook, the
// drain tasks, and the Subscription handle. Ownership: the queue's signal
// closure and any in-flight drain task hold shared_ptrs; `step`/`has_work`
// capture the queue and handler but never the core, so there is no cycle
// (they are cleared at the terminal states to release handler captures).
struct SubCore {
  std::mutex mu;
  std::condition_variable cv;
  bool scheduled = false;    // a drain task is queued/running or a due-timer armed
  bool stopped = false;
  bool in_handler = false;
  std::thread::id handler_thread{};
  Reactor::TimerId due_timer = 0;
  Reactor* reactor = nullptr;
  bool blocking = false;

  struct StepResult {
    enum Kind { kItem, kEmpty, kNotDue, kFinal } kind = kEmpty;
    Reactor::Clock::time_point due{};
  };
  // Pops and dispatches at most one ready item (or the final nullopt).
  std::function<StepResult()> step;
  // True when the queue has items or is closed (i.e. a drain would do
  // something). Used to re-check after an empty drain cleared `scheduled`,
  // closing the push-vs-unschedule race window.
  std::function<bool()> has_work;
};

void pump_signal(const std::shared_ptr<SubCore>& core);
void pump_drain(const std::shared_ptr<SubCore>& core);

}  // namespace detail

// Per-pump delivery options.
struct AttachOptions {
  // Run the handler on the ops pool (it may block) instead of core.
  bool blocking = false;
};

// Turns `queue` + `handler` into a reactor-driven pump. Delivery is
// serialized and in order; handler(std::nullopt) fires exactly once when
// the queue is closed and drained (terminal). `due`, when supplied, gates
// the head item: it is not delivered before due(item) — the async
// equivalent of the blocking path's latency sleep; pass nullptr for
// immediate delivery.
//
// One pump per queue at a time (the queue's signal slot is single-owner).
// The queue must outlive the pump's activity: stop the subscription, or see
// the final delivery, before destroying the queue.
template <typename T>
Subscription attach_queue(
    Reactor& reactor, util::MessageQueue<T>& queue,
    std::function<void(std::optional<T>)> handler,
    AttachOptions options = {},
    std::function<Reactor::Clock::time_point(const T&)> due = nullptr) {
  auto core = std::make_shared<detail::SubCore>();
  core->reactor = &reactor;
  core->blocking = options.blocking;
  core->step = [&queue, handler = std::move(handler), due = std::move(due)]() {
    detail::SubCore::StepResult r;
    std::optional<Reactor::Clock::time_point> head_due;
    auto item = queue.try_pop_when([&](const T& head) {
      if (!due) return true;
      auto at = due(head);
      if (at <= Reactor::Clock::now()) return true;
      head_due = at;
      return false;
    });
    if (item) {
      handler(std::move(*item));
      r.kind = detail::SubCore::StepResult::kItem;
      return r;
    }
    if (head_due) {
      r.kind = detail::SubCore::StepResult::kNotDue;
      r.due = *head_due;
      return r;
    }
    if (queue.closed_and_empty()) {
      handler(std::nullopt);  // terminal: the queue may die after this
      r.kind = detail::SubCore::StepResult::kFinal;
      return r;
    }
    return r;  // kEmpty
  };
  core->has_work = [&queue] { return !queue.empty() || queue.closed(); };
  queue.set_signal([core] { detail::pump_signal(core); });
  detail::pump_signal(core);  // drain anything already queued (or closed)
  return Subscription(core);
}

}  // namespace ace::net
