#include "net/network.hpp"

#include <thread>

namespace ace::net {

using Clock = std::chrono::steady_clock;

std::string Address::to_string() const {
  return host + ":" + std::to_string(port);
}

std::optional<Address> Address::parse(const std::string& s) {
  auto pos = s.rfind(':');
  if (pos == std::string::npos || pos + 1 >= s.size()) return std::nullopt;
  Address a;
  a.host = s.substr(0, pos);
  long port = 0;
  for (std::size_t i = pos + 1; i < s.size(); ++i) {
    char c = s[i];
    if (c < '0' || c > '9') return std::nullopt;
    port = port * 10 + (c - '0');
    if (port > 65535) return std::nullopt;
  }
  a.port = static_cast<std::uint16_t>(port);
  return a;
}

// ---------------------------------------------------------------- Connection

Connection::Connection(std::shared_ptr<detail::ConnState> state, bool is_a,
                       Network* network)
    : state_(std::move(state)), is_a_(is_a), network_(network) {}

util::Status Connection::send(Frame frame) {
  if (!state_) return {util::Errc::invalid, "unconnected"};
  if (state_->closed.load()) return {util::Errc::closed, "connection closed"};
  LinkPolicy policy = network_->link(state_->host_a, state_->host_b);
  if (!policy.up) {
    // A partitioned link resets the connection, like TCP on a dead path.
    close();
    return {util::Errc::io_error, "link partitioned"};
  }
  detail::TimedFrame tf{Clock::now() + policy.latency, std::move(frame)};
  std::size_t bytes = tf.frame.size();
  auto& queue = is_a_ ? state_->to_b : state_->to_a;
  if (!queue.push(std::move(tf)))
    return {util::Errc::closed, "connection closed"};
  network_->count_frame(bytes);
  return util::Status::ok_status();
}

std::optional<Frame> Connection::recv(Duration timeout) {
  if (!state_) return std::nullopt;
  auto deadline = Clock::now() + timeout;
  auto& queue = is_a_ ? state_->to_a : state_->to_b;
  auto tf = queue.pop_until(deadline);
  if (!tf) return std::nullopt;
  // Model link latency: the frame is not visible before its delivery time.
  std::this_thread::sleep_until(tf->deliver_at);
  network_->count_frame_received(tf->frame.size());
  return std::move(tf->frame);
}

Subscription Connection::on_frame(
    Reactor& reactor, std::function<void(std::optional<Frame>)> handler,
    AttachOptions options) {
  if (!state_) return {};
  auto& queue = is_a_ ? state_->to_a : state_->to_b;
  Network* network = network_;
  return attach_queue<detail::TimedFrame>(
      reactor, queue,
      [network, handler = std::move(handler)](
          std::optional<detail::TimedFrame> tf) {
        if (!tf) {
          handler(std::nullopt);
          return;
        }
        network->count_frame_received(tf->frame.size());
        handler(std::move(tf->frame));
      },
      options,
      // Latency gate: a frame is not readable before its delivery time —
      // the pump arms a reactor timer instead of sleeping a thread.
      [](const detail::TimedFrame& tf) { return tf.deliver_at; });
}

void Connection::close() {
  if (!state_) return;
  state_->closed.store(true);
  state_->to_a.close();
  state_->to_b.close();
}

bool Connection::closed() const { return !state_ || state_->closed.load(); }

Address Connection::local_address() const {
  if (!state_) return {};
  return is_a_ ? state_->addr_a : state_->addr_b;
}

Address Connection::peer_address() const {
  if (!state_) return {};
  return is_a_ ? state_->addr_b : state_->addr_a;
}

// ------------------------------------------------------------------ Listener

Listener::Listener(Address address, Network* network)
    : address_(std::move(address)), network_(network) {}

Listener::~Listener() { close(); }

std::optional<Connection> Listener::accept(Duration timeout) {
  return pending_.pop_for(timeout);
}

Subscription Listener::on_accept(
    Reactor& reactor, std::function<void(std::optional<Connection>)> handler,
    AttachOptions options) {
  // No due-gate: connect() already charged the setup latency on the
  // dialing side before the connection reached pending_.
  return attach_queue<Connection>(reactor, pending_, std::move(handler),
                                  options);
}

void Listener::close() {
  bool was_open = open_.exchange(false);
  if (!was_open) return;
  pending_.close();
  network_->unregister_listener(address_);
}

// ------------------------------------------------------------ DatagramSocket

DatagramSocket::DatagramSocket(Address address, Network* network)
    : address_(std::move(address)), network_(network) {}

DatagramSocket::~DatagramSocket() { close(); }

util::Status DatagramSocket::send_to(const Address& to,
                                     util::SharedBytes payload) {
  if (!open_.load()) return {util::Errc::closed, "socket closed"};
  return network_->deliver_datagram(address_, to, std::move(payload));
}

util::Status DatagramSocket::send_many(std::span<const Address> to,
                                       const util::SharedBytes& payload) {
  if (!open_.load()) return {util::Errc::closed, "socket closed"};
  return network_->deliver_datagrams(address_, to, payload);
}

std::optional<Datagram> DatagramSocket::recv(Duration timeout) {
  auto deadline = Clock::now() + timeout;
  auto td = inbox_.pop_until(deadline);
  if (!td) return std::nullopt;
  std::this_thread::sleep_until(td->deliver_at);
  network_->count_datagram_delivered();
  return std::move(td->datagram);
}

Subscription DatagramSocket::on_datagram(
    Reactor& reactor, std::function<void(std::optional<Datagram>)> handler,
    AttachOptions options) {
  Network* network = network_;
  return attach_queue<detail::TimedDatagram>(
      reactor, inbox_,
      [network, handler = std::move(handler)](
          std::optional<detail::TimedDatagram> td) {
        if (!td) {
          handler(std::nullopt);
          return;
        }
        network->count_datagram_delivered();
        handler(std::move(td->datagram));
      },
      options, [](const detail::TimedDatagram& td) { return td.deliver_at; });
}

void DatagramSocket::close() {
  bool was_open = open_.exchange(false);
  if (!was_open) return;
  inbox_.close();
  network_->unregister_datagram(address_);
}

// ---------------------------------------------------------------------- Host

util::Result<std::shared_ptr<Listener>> Host::listen(std::uint16_t port) {
  std::scoped_lock lock(mu_);
  if (listeners_.contains(port))
    return util::Error{util::Errc::conflict, "port in use"};
  auto listener = std::make_shared<Listener>(Address{name_, port}, network_);
  listeners_[port] = listener.get();
  return listener;
}

util::Result<std::shared_ptr<DatagramSocket>> Host::open_datagram(
    std::uint16_t port) {
  std::scoped_lock lock(mu_);
  if (port == 0) {
    port = ephemeral_port_locked();
  } else if (datagram_sockets_.contains(port)) {
    return util::Error{util::Errc::conflict, "port in use"};
  }
  auto socket =
      std::make_shared<DatagramSocket>(Address{name_, port}, network_);
  datagram_sockets_[port] = socket.get();
  return socket;
}

util::Result<Connection> Host::connect(const Address& to, Duration timeout) {
  if (down_.load()) return util::Error{util::Errc::unavailable, "host down"};
  return network_->do_connect(*this, to, timeout);
}

std::uint16_t Host::ephemeral_port() {
  std::scoped_lock lock(mu_);
  return ephemeral_port_locked();
}

std::uint16_t Host::ephemeral_port_locked() {
  constexpr std::uint16_t kEphemeralBase = 40000;
  // Bounded scan: skip ports a listener or datagram socket currently
  // holds, wrapping at the top of the range. Without the skip, a host
  // that cycled through its ~25k ephemeral ports would eventually be
  // handed one of its own bound ports and fail the next bind with
  // Errc::conflict.
  const std::size_t range = 65535u - kEphemeralBase + 1u;
  for (std::size_t scanned = 0; scanned < range; ++scanned) {
    if (next_ephemeral_ < kEphemeralBase) next_ephemeral_ = kEphemeralBase;
    std::uint16_t candidate = next_ephemeral_;
    next_ephemeral_ =
        candidate == 65535 ? kEphemeralBase
                           : static_cast<std::uint16_t>(candidate + 1);
    if (!listeners_.contains(candidate) &&
        !datagram_sockets_.contains(candidate))
      return candidate;
  }
  return next_ephemeral_;  // every port bound: conflict is inevitable
}

// ------------------------------------------------------------------- Network

Network::Network(std::uint64_t seed, obs::MetricsRegistry* metrics)
    : rng_(seed),
      owned_metrics_(metrics ? nullptr
                             : std::make_unique<obs::MetricsRegistry>()),
      metrics_(metrics ? metrics : owned_metrics_.get()) {
  cells_.frames_sent = &metrics_->counter("net.frames_sent");
  cells_.bytes_sent = &metrics_->counter("net.bytes_sent");
  cells_.frames_received = &metrics_->counter("net.frames_received");
  cells_.bytes_received = &metrics_->counter("net.bytes_received");
  cells_.datagrams_sent = &metrics_->counter("net.datagrams_sent");
  cells_.datagrams_delivered = &metrics_->counter("net.datagrams_delivered");
  cells_.datagrams_dropped = &metrics_->counter("net.datagrams_dropped");
  cells_.connects = &metrics_->counter("net.connects");
}

Host& Network::add_host(const std::string& name) {
  std::scoped_lock lock(mu_);
  auto& slot = hosts_[name];
  if (!slot) slot = std::make_unique<Host>(name, this);
  return *slot;
}

Host* Network::find_host(const std::string& name) {
  std::scoped_lock lock(mu_);
  auto it = hosts_.find(name);
  return it == hosts_.end() ? nullptr : it->second.get();
}

void Network::set_default_latency(Duration latency) {
  std::scoped_lock lock(mu_);
  default_latency_ = latency;
}

std::string Network::link_key(const std::string& a, const std::string& b) {
  return a < b ? a + "|" + b : b + "|" + a;
}

void Network::set_link(const std::string& a, const std::string& b,
                       LinkPolicy policy) {
  std::scoped_lock lock(mu_);
  links_[link_key(a, b)] = policy;
}

void Network::set_partitioned(const std::string& a, const std::string& b,
                              bool partitioned) {
  std::scoped_lock lock(mu_);
  auto key = link_key(a, b);
  auto it = links_.find(key);
  if (it == links_.end()) {
    LinkPolicy policy;
    policy.latency = default_latency_;
    policy.up = !partitioned;
    links_[key] = policy;
  } else {
    it->second.up = !partitioned;
  }
}

LinkPolicy Network::link(const std::string& a, const std::string& b) const {
  std::scoped_lock lock(mu_);
  return link_locked(a, b);
}

LinkPolicy Network::link_locked(const std::string& a,
                                const std::string& b) const {
  if (a == b) return LinkPolicy{Duration{0}, 0.0, true};  // loopback
  auto it = links_.find(link_key(a, b));
  if (it != links_.end()) return it->second;
  LinkPolicy policy;
  policy.latency = default_latency_;
  return policy;
}

NetworkStats Network::stats() const {
  NetworkStats s;
  s.frames_sent = cells_.frames_sent->value();
  s.bytes_sent = cells_.bytes_sent->value();
  s.frames_received = cells_.frames_received->value();
  s.bytes_received = cells_.bytes_received->value();
  s.datagrams_sent = cells_.datagrams_sent->value();
  s.datagrams_delivered = cells_.datagrams_delivered->value();
  s.datagrams_dropped = cells_.datagrams_dropped->value();
  s.connects = cells_.connects->value();
  return s;
}

util::Result<Connection> Network::do_connect(Host& from, const Address& to,
                                             Duration timeout) {
  Listener* listener = nullptr;
  LinkPolicy policy = link(from.name(), to.host);
  if (!policy.up)
    return util::Error{util::Errc::io_error, "link partitioned"};
  {
    std::scoped_lock lock(mu_);
    auto host_it = hosts_.find(to.host);
    if (host_it == hosts_.end())
      return util::Error{util::Errc::not_found, "no such host: " + to.host};
    Host& target = *host_it->second;
    if (target.down_.load())
      return util::Error{util::Errc::unavailable, "host down: " + to.host};
    std::scoped_lock host_lock(target.mu_);
    auto lst_it = target.listeners_.find(to.port);
    if (lst_it == target.listeners_.end())
      return util::Error{util::Errc::refused,
                         "connection refused: " + to.to_string()};
    listener = lst_it->second;
  }
  cells_.connects->inc();

  // Model connection-setup latency (one RTT worth of delay, simplified to
  // one link latency each way via the sleep below plus the accept path).
  if (policy.latency.count() > 0) std::this_thread::sleep_for(policy.latency);

  auto state = std::make_shared<detail::ConnState>();
  state->host_a = from.name();
  state->host_b = to.host;
  state->addr_a = Address{from.name(), from.ephemeral_port()};
  state->addr_b = to;
  Connection client(state, /*is_a=*/true, this);
  Connection server(state, /*is_a=*/false, this);
  if (!listener->pending_.push(std::move(server))) {
    return util::Error{util::Errc::refused, "listener closed"};
  }
  (void)timeout;
  return client;
}

util::Status Network::deliver_datagram(const Address& from, const Address& to,
                                       util::SharedBytes payload) {
  std::scoped_lock lock(mu_);
  deliver_datagram_locked(from, to, payload, Clock::now());
  return util::Status::ok_status();
}

util::Status Network::deliver_datagrams(const Address& from,
                                        std::span<const Address> to,
                                        const util::SharedBytes& payload) {
  if (to.empty()) return util::Status::ok_status();
  // One trip through the network core for the whole fan-out: the lock is
  // taken once and every destination enqueues a view of the same buffer.
  std::scoped_lock lock(mu_);
  auto now = Clock::now();
  for (const Address& dest : to)
    deliver_datagram_locked(from, dest, payload, now);
  return util::Status::ok_status();
}

// Caller holds mu_. Best-effort: every failure mode silently drops.
void Network::deliver_datagram_locked(const Address& from, const Address& to,
                                      const util::SharedBytes& payload,
                                      Clock::time_point now) {
  cells_.datagrams_sent->inc();
  cells_.bytes_sent->inc(payload.size());
  LinkPolicy policy = link_locked(from.host, to.host);
  if (!policy.up || rng_.next_bool(policy.datagram_loss)) {
    cells_.datagrams_dropped->inc();
    count_link_drop(from.host, to.host);
    return;
  }
  auto host_it = hosts_.find(to.host);
  if (host_it == hosts_.end() || host_it->second->down_.load()) {
    cells_.datagrams_dropped->inc();
    count_link_drop(from.host, to.host);
    return;
  }
  std::scoped_lock host_lock(host_it->second->mu_);
  auto sock_it = host_it->second->datagram_sockets_.find(to.port);
  if (sock_it == host_it->second->datagram_sockets_.end()) {
    cells_.datagrams_dropped->inc();
    count_link_drop(from.host, to.host);
    return;
  }
  detail::TimedDatagram td{now + policy.latency, Datagram{from, payload}};
  if (!sock_it->second->inbox_.push(std::move(td))) {
    cells_.datagrams_dropped->inc();
    count_link_drop(from.host, to.host);
  }
}

void Network::unregister_listener(const Address& address) {
  std::scoped_lock lock(mu_);
  auto it = hosts_.find(address.host);
  if (it == hosts_.end()) return;
  std::scoped_lock host_lock(it->second->mu_);
  it->second->listeners_.erase(address.port);
}

void Network::unregister_datagram(const Address& address) {
  std::scoped_lock lock(mu_);
  auto it = hosts_.find(address.host);
  if (it == hosts_.end()) return;
  std::scoped_lock host_lock(it->second->mu_);
  it->second->datagram_sockets_.erase(address.port);
}

void Network::count_frame(std::size_t bytes) {
  cells_.frames_sent->inc();
  cells_.bytes_sent->inc(bytes);
}

void Network::count_frame_received(std::size_t bytes) {
  cells_.frames_received->inc();
  cells_.bytes_received->inc(bytes);
}

void Network::count_datagram_delivered() {
  cells_.datagrams_delivered->inc();
}

// Drop attribution per host pair. Caller must hold mu_. The counter cell
// is resolved through the registry once per pair and cached: under a chaos
// loss burst a link can shed thousands of datagrams per second, and paying
// a string-key build plus the registry mutex for every one of them turned
// the drop path into a contention point.
void Network::count_link_drop(const std::string& a, const std::string& b) {
  const std::string& lo = a < b ? a : b;
  const std::string& hi = a < b ? b : a;
  obs::Counter*& cell = drop_cells_[lo][hi];
  if (cell == nullptr)
    cell = &metrics_->counter("net.link_drops." + link_key(a, b));
  cell->inc();
}

}  // namespace ace::net
