// Simulated network substrate.
//
// The paper's ACE testbed ran on a campus LAN of Unix hosts. We reproduce
// that substrate in-process: named hosts with ports, reliable stream
// connections (TCP-like, used for the ACE command channel), and best-effort
// datagram channels (UDP-like, used by daemon data threads for media
// streaming — paper §2.1.1). Per-link latency, datagram loss, partitions and
// host crashes are injectable so experiments can reproduce LAN/WAN placement
// effects and the failure behaviours the architecture is designed around.
//
// Thread-safety: all classes here are safe to use from multiple threads;
// blocking calls always accept timeouts.
//
// Two consumption modes per endpoint (see docs/net.md):
//  * blocking — recv(timeout)/accept(timeout), the original API. Kept as a
//    shim for tests, benches and the media pipeline; costs the caller a
//    parked thread per endpoint.
//  * async — on_frame/on_accept/on_datagram register a callback pump on a
//    net::Reactor; frames are delivered on reactor workers with O(pool)
//    threads total. An endpoint uses one mode at a time: registering a pump
//    claims the endpoint's readiness signal, so don't mix a pump with
//    concurrent blocking recv() calls on the same endpoint.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "net/reactor.hpp"
#include "obs/metrics.hpp"
#include "util/bytes.hpp"
#include "util/queue.hpp"
#include "util/result.hpp"
#include "util/rng.hpp"

namespace ace::net {

using Frame = util::Bytes;
using Duration = std::chrono::microseconds;

struct Address {
  std::string host;
  std::uint16_t port = 0;

  std::string to_string() const;
  static std::optional<Address> parse(const std::string& s);  // "host:port"

  friend bool operator==(const Address&, const Address&) = default;
  friend auto operator<=>(const Address&, const Address&) = default;
};

// Symmetric per-host-pair link behaviour.
struct LinkPolicy {
  Duration latency{0};
  double datagram_loss = 0.0;  // applies to datagrams only; streams are reliable
  bool up = true;
};

// Datagram payloads are ref-counted immutable views (util::SharedBytes):
// a fan-out of one frame to N sinks enqueues N views of one buffer, and
// the payload a receiver sees aliases the very bytes the sender wrapped.
// Frames on stream connections stay owned Bytes (the command channel
// encrypts in place, so sharing would be wrong there).
struct Datagram {
  Address from;
  util::SharedBytes payload;
};

// Snapshot of the network's obs counters (see Network::stats()). Each field
// is read atomically; the set is assembled without pausing traffic, so
// counters that move together (e.g. frames/bytes) may be skewed by at most
// the in-flight operations of the instant the snapshot was taken.
struct NetworkStats {
  std::uint64_t frames_sent = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t frames_received = 0;
  std::uint64_t bytes_received = 0;
  std::uint64_t datagrams_sent = 0;
  std::uint64_t datagrams_delivered = 0;
  std::uint64_t datagrams_dropped = 0;
  std::uint64_t connects = 0;
};

class Network;
class Host;

namespace detail {
struct TimedFrame {
  std::chrono::steady_clock::time_point deliver_at;
  Frame frame;
};

// Shared state of one established stream connection.
struct ConnState {
  util::MessageQueue<TimedFrame> to_a;  // frames travelling towards side A
  util::MessageQueue<TimedFrame> to_b;
  std::atomic<bool> closed{false};
  std::string host_a, host_b;
  Address addr_a, addr_b;
};

struct TimedDatagram {
  std::chrono::steady_clock::time_point deliver_at;
  Datagram datagram;
};
}  // namespace detail

// One endpoint of an established bidirectional stream connection.
class Connection {
 public:
  Connection() = default;
  Connection(std::shared_ptr<detail::ConnState> state, bool is_a,
             Network* network);

  bool valid() const { return state_ != nullptr; }

  // Sends one frame. Fails with Errc::closed if either side closed, or
  // Errc::io_error if the link is partitioned (connection is then dropped,
  // like a TCP reset).
  util::Status send(Frame frame);

  // Receives the next frame; std::nullopt on timeout or once the
  // connection is closed and drained. Blocking shim — prefer on_frame for
  // anything that scales with connection count.
  std::optional<Frame> recv(Duration timeout);

  // Async surface: delivers every inbound frame to `handler` on a reactor
  // worker, serialized and in order, honouring link latency. A final
  // handler(std::nullopt) fires exactly once when the connection is closed
  // and drained. One registration per endpoint; re-registering replaces
  // the previous pump (stop it first for a deterministic handoff).
  Subscription on_frame(Reactor& reactor,
                        std::function<void(std::optional<Frame>)> handler,
                        AttachOptions options = {});

  void close();
  bool closed() const;

  Address local_address() const;
  Address peer_address() const;

 private:
  std::shared_ptr<detail::ConnState> state_;
  bool is_a_ = false;
  Network* network_ = nullptr;
};

// A passive listening socket; accept() yields connections.
class Listener {
 public:
  Listener(Address address, Network* network);
  ~Listener();

  std::optional<Connection> accept(Duration timeout);

  // Async accept: each inbound connection lands in `handler` on a reactor
  // worker; handler(std::nullopt) fires once when the listener closes.
  Subscription on_accept(
      Reactor& reactor,
      std::function<void(std::optional<Connection>)> handler,
      AttachOptions options = {});

  void close();
  const Address& address() const { return address_; }

 private:
  friend class Network;
  Address address_;
  Network* network_;
  util::MessageQueue<Connection> pending_;
  std::atomic<bool> open_{true};
};

// Best-effort datagram endpoint (the daemon data channel).
class DatagramSocket {
 public:
  DatagramSocket(Address address, Network* network);
  ~DatagramSocket();

  // Sends one datagram. SharedBytes is implicitly constructible from
  // Bytes, so `send_to(to, writer.take())` still works — the buffer is
  // wrapped once and never copied again on its way to the receiver.
  util::Status send_to(const Address& to, util::SharedBytes payload);

  // Scatter-gather batch: one payload to many destinations in a single
  // trip through the network core (one lock acquisition, N enqueued views
  // of the same buffer — the zero-copy fan-out primitive). Per-destination
  // loss/partition policy still applies individually.
  util::Status send_many(std::span<const Address> to,
                         const util::SharedBytes& payload);

  std::optional<Datagram> recv(Duration timeout);

  // Async receive: datagrams delivered on a reactor worker (in order,
  // honouring link latency); handler(std::nullopt) once on close.
  Subscription on_datagram(
      Reactor& reactor, std::function<void(std::optional<Datagram>)> handler,
      AttachOptions options = {});

  void close();
  const Address& address() const { return address_; }

 private:
  friend class Network;
  Address address_;
  Network* network_;
  util::MessageQueue<detail::TimedDatagram> inbox_;
  std::atomic<bool> open_{true};
};

// A simulated machine. Owns its port space. Crashing a host (set_down)
// refuses new connections and silently drops its datagrams, matching the
// fail-stop behaviour the ACE lease mechanism (paper §2.4) must detect.
class Host {
 public:
  Host(std::string name, Network* network)
      : name_(std::move(name)), network_(network) {}

  const std::string& name() const { return name_; }

  // Binds a listener; Errc::conflict if the port is taken.
  util::Result<std::shared_ptr<Listener>> listen(std::uint16_t port);

  // Binds a datagram socket; port 0 picks an ephemeral port.
  util::Result<std::shared_ptr<DatagramSocket>> open_datagram(
      std::uint16_t port = 0);

  // Actively connects to a listener elsewhere in the network.
  util::Result<Connection> connect(const Address& to, Duration timeout);

  void set_down(bool down) { down_.store(down); }
  bool down() const { return down_.load(); }

  // Picks a free ephemeral port: skips ports currently bound by listeners
  // or datagram sockets, wrapping back to the bottom of the ephemeral
  // range (40000) at the top. Before this skip, a long-lived host that
  // wrapped its counter could be handed a port its own listener still held
  // and fail a later bind with a baffling Errc::conflict.
  std::uint16_t ephemeral_port();

 private:
  friend class Network;
  std::uint16_t ephemeral_port_locked();  // caller holds mu_
  std::string name_;
  Network* network_;
  std::atomic<bool> down_{false};
  std::mutex mu_;
  std::map<std::uint16_t, Listener*> listeners_;
  std::map<std::uint16_t, DatagramSocket*> datagram_sockets_;
  std::uint16_t next_ephemeral_ = 40000;
};

class Network {
 public:
  // Counters land in `metrics` under `net.*` names; when none is supplied
  // the network owns a private registry (standalone/test use). A deployed
  // network shares its Environment's registry so daemons' `metrics;`
  // snapshots include the substrate.
  explicit Network(std::uint64_t seed = 1,
                   obs::MetricsRegistry* metrics = nullptr);

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  Host& add_host(const std::string& name);
  Host* find_host(const std::string& name);

  // Default latency applied to every pair without an explicit policy.
  void set_default_latency(Duration latency);
  // Sets a symmetric policy between two hosts.
  void set_link(const std::string& a, const std::string& b, LinkPolicy policy);
  void set_partitioned(const std::string& a, const std::string& b,
                       bool partitioned);
  LinkPolicy link(const std::string& a, const std::string& b) const;

  // Consistent-at-a-point snapshot of the `net.*` obs counters.
  NetworkStats stats() const;

  obs::MetricsRegistry& metrics() { return *metrics_; }

 private:
  friend class Host;
  friend class Connection;
  friend class Listener;
  friend class DatagramSocket;

  util::Result<Connection> do_connect(Host& from, const Address& to,
                                      Duration timeout);
  util::Status deliver_datagram(const Address& from, const Address& to,
                                util::SharedBytes payload);
  util::Status deliver_datagrams(const Address& from,
                                 std::span<const Address> to,
                                 const util::SharedBytes& payload);
  // Single-destination core; caller holds mu_.
  void deliver_datagram_locked(const Address& from, const Address& to,
                               const util::SharedBytes& payload,
                               std::chrono::steady_clock::time_point now);
  LinkPolicy link_locked(const std::string& a, const std::string& b) const;
  void unregister_listener(const Address& address);
  void unregister_datagram(const Address& address);
  void count_frame(std::size_t bytes);
  void count_frame_received(std::size_t bytes);
  void count_datagram_delivered();
  void count_link_drop(const std::string& a, const std::string& b);

  static std::string link_key(const std::string& a, const std::string& b);

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Host>> hosts_;
  std::map<std::string, LinkPolicy> links_;
  // Cached per-host-pair drop counters, [lesser][greater] (guarded by mu_;
  // see count_link_drop).
  std::map<std::string, std::map<std::string, obs::Counter*>> drop_cells_;
  Duration default_latency_{0};
  util::Rng rng_;

  std::unique_ptr<obs::MetricsRegistry> owned_metrics_;
  obs::MetricsRegistry* metrics_;
  // Cached cells: the hot paths touch only these atomics, no registry map.
  struct {
    obs::Counter* frames_sent;
    obs::Counter* bytes_sent;
    obs::Counter* frames_received;
    obs::Counter* bytes_received;
    obs::Counter* datagrams_sent;
    obs::Counter* datagrams_delivered;
    obs::Counter* datagrams_dropped;
    obs::Counter* connects;
  } cells_{};
};

}  // namespace ace::net
