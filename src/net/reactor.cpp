#include "net/reactor.hpp"

#include <utility>

namespace ace::net {

// ------------------------------------------------------------------- Reactor

Reactor::Reactor(Options options, obs::MetricsRegistry* metrics)
    : options_(options) {
  if (options_.core_workers < 1) options_.core_workers = 1;
  if (options_.ops_min < 1) options_.ops_min = 1;
  if (options_.ops_max < options_.ops_min) options_.ops_max = options_.ops_min;
  if (metrics) {
    obs_tasks_ = &metrics->counter("reactor.tasks");
    obs_blocking_tasks_ = &metrics->counter("reactor.blocking_tasks");
    obs_timers_ = &metrics->counter("reactor.timers_fired");
    obs_ops_spawned_ = &metrics->counter("reactor.ops_spawned");
    obs_threads_ = &metrics->gauge("reactor.threads");
  }
  core_workers_.reserve(static_cast<std::size_t>(options_.core_workers));
  for (int i = 0; i < options_.core_workers; ++i)
    core_workers_.emplace_back([this] { core_loop(); });
  {
    std::scoped_lock lock(ops_mu_);
    for (int i = 0; i < options_.ops_min; ++i) spawn_ops_locked();
  }
  timer_thread_ = std::jthread([this] { timer_loop(); });
  if (obs_threads_)
    obs_threads_->set(options_.core_workers + options_.ops_min + 1);
}

Reactor::~Reactor() { stop(); }

void Reactor::stop() {
  core_queue_.close();  // core workers drain what's queued, then exit
  {
    std::scoped_lock lock(timer_mu_);
    timer_stop_ = true;
    timers_.clear();
    timer_index_.clear();
  }
  timer_cv_.notify_all();
  timer_thread_ = {};

  std::vector<std::unique_ptr<OpsWorker>> workers;
  {
    std::scoped_lock lock(ops_mu_);
    stopping_ = true;
    ops_queue_.clear();
    workers.swap(ops_workers_);
  }
  ops_cv_.notify_all();
  workers.clear();  // joins
  core_workers_.clear();
  if (obs_threads_) obs_threads_->set(0);
}

void Reactor::post(Task task) {
  // push fails only when stopping: late transport work is dropped, which
  // is safe because every pump checks its stopped flag before touching
  // anything.
  (void)core_queue_.push(std::move(task));
}

void Reactor::post_blocking(Task task) {
  {
    std::scoped_lock lock(ops_mu_);
    if (stopping_) return;
    ops_queue_.push_back(std::move(task));
    // Every worker busy and room to grow: widen the pool so a burst of
    // blocking handlers does not convoy behind one slow RPC.
    if (ops_idle_count_ == 0 && ops_live_ < options_.ops_max)
      spawn_ops_locked();
  }
  ops_cv_.notify_one();
}

Reactor::TimerId Reactor::post_at(Clock::time_point at, Task task,
                                  bool blocking) {
  bool wake_timer = false;
  TimerId id = 0;
  {
    std::scoped_lock lock(timer_mu_);
    if (timer_stop_) return 0;
    id = next_timer_id_++;
    wake_timer = timers_.empty() || at < timers_.begin()->first;
    auto it = timers_.emplace(at, TimerEntry{id, std::move(task), blocking});
    timer_index_[id] = it;
  }
  if (wake_timer) timer_cv_.notify_all();
  return id;
}

Reactor::TimerId Reactor::post_after(Clock::duration delay, Task task,
                                     bool blocking) {
  return post_at(Clock::now() + delay, std::move(task), blocking);
}

bool Reactor::cancel(TimerId id) {
  if (id == 0) return false;
  std::scoped_lock lock(timer_mu_);
  auto it = timer_index_.find(id);
  if (it == timer_index_.end()) return false;
  timers_.erase(it->second);
  timer_index_.erase(it);
  return true;
}

Reactor::Stats Reactor::stats() const {
  Stats s;
  s.tasks_run = tasks_run_.load(std::memory_order_relaxed);
  s.blocking_tasks_run = blocking_tasks_run_.load(std::memory_order_relaxed);
  s.timers_fired = timers_fired_.load(std::memory_order_relaxed);
  s.ops_spawned = ops_spawned_.load(std::memory_order_relaxed);
  s.core_threads = static_cast<int>(core_workers_.size());
  {
    std::scoped_lock lock(ops_mu_);
    s.ops_threads = ops_live_;
  }
  return s;
}

void Reactor::core_loop() {
  while (auto task = core_queue_.pop()) {
    (*task)();
    tasks_run_.fetch_add(1, std::memory_order_relaxed);
    if (obs_tasks_) obs_tasks_->inc();
  }
}

void Reactor::spawn_ops_locked() {
  // Opportunistically reap workers that idled out, so a long-lived reactor
  // doesn't accumulate dead jthreads. Joining happens outside the lock.
  std::vector<std::unique_ptr<OpsWorker>> dead;
  reap_ops_locked(dead);
  auto worker = std::make_unique<OpsWorker>();
  OpsWorker* raw = worker.get();
  ops_workers_.push_back(std::move(worker));
  ++ops_live_;
  ops_spawned_.fetch_add(1, std::memory_order_relaxed);
  if (obs_ops_spawned_) obs_ops_spawned_->inc();
  if (obs_threads_)
    obs_threads_->set(static_cast<int>(core_workers_.size()) + ops_live_ + 1);
  raw->thread = std::jthread([this, raw] { ops_loop(raw); });
  // `dead` joins here as the vector unwinds — those threads have already
  // returned (exited is set on their way out), so this does not stall the
  // caller meaningfully.
}

void Reactor::reap_ops_locked(std::vector<std::unique_ptr<OpsWorker>>& out) {
  std::erase_if(ops_workers_, [&](std::unique_ptr<OpsWorker>& w) {
    if (!w->exited) return false;
    out.push_back(std::move(w));
    return true;
  });
}

void Reactor::ops_loop(OpsWorker* self) {
  std::unique_lock lock(ops_mu_);
  for (;;) {
    while (ops_queue_.empty()) {
      if (stopping_) {
        self->exited = true;
        --ops_live_;
        return;
      }
      ++ops_idle_count_;
      bool got_work = ops_cv_.wait_for(lock, options_.ops_idle, [&] {
        return !ops_queue_.empty() || stopping_;
      });
      --ops_idle_count_;
      if (!got_work && ops_live_ > options_.ops_min) {
        // Idled out above the floor: retire. The spawner reaps us later.
        self->exited = true;
        --ops_live_;
        if (obs_threads_)
          obs_threads_->set(static_cast<int>(core_workers_.size()) +
                            ops_live_ + 1);
        return;
      }
    }
    Task task = std::move(ops_queue_.front());
    ops_queue_.pop_front();
    lock.unlock();
    task();
    blocking_tasks_run_.fetch_add(1, std::memory_order_relaxed);
    if (obs_blocking_tasks_) obs_blocking_tasks_->inc();
    lock.lock();
  }
}

void Reactor::timer_loop() {
  std::unique_lock lock(timer_mu_);
  while (!timer_stop_) {
    if (timers_.empty()) {
      timer_cv_.wait(lock, [&] { return timer_stop_ || !timers_.empty(); });
      continue;
    }
    const auto next = timers_.begin()->first;
    if (Clock::now() < next) {
      timer_cv_.wait_until(lock, next);
      continue;
    }
    TimerEntry entry = std::move(timers_.begin()->second);
    timer_index_.erase(entry.id);
    timers_.erase(timers_.begin());
    lock.unlock();
    timers_fired_.fetch_add(1, std::memory_order_relaxed);
    if (obs_timers_) obs_timers_->inc();
    if (entry.blocking)
      post_blocking(std::move(entry.task));
    else
      post(std::move(entry.task));
    lock.lock();
  }
}

// -------------------------------------------------------------- Subscription

namespace detail {

// Queue signal hook: ensure exactly one drain is scheduled.
void pump_signal(const std::shared_ptr<SubCore>& core) {
  {
    std::scoped_lock lock(core->mu);
    if (core->stopped || core->scheduled) return;
    core->scheduled = true;
  }
  auto drain = [core] { pump_drain(core); };
  if (core->blocking)
    core->reactor->post_blocking(std::move(drain));
  else
    core->reactor->post(std::move(drain));
}

void pump_drain(const std::shared_ptr<SubCore>& core) {
  for (;;) {
    {
      std::scoped_lock lock(core->mu);
      if (core->stopped) {
        core->scheduled = false;
        core->step = nullptr;  // release handler captures (breaks cycles)
        core->has_work = nullptr;
        return;
      }
      core->in_handler = true;
      core->handler_thread = std::this_thread::get_id();
    }
    SubCore::StepResult r = core->step();
    std::unique_lock lock(core->mu);
    core->in_handler = false;
    core->cv.notify_all();
    if (core->stopped || r.kind == SubCore::StepResult::kFinal) {
      core->stopped = true;
      core->scheduled = false;
      core->step = nullptr;
      core->has_work = nullptr;
      return;
    }
    switch (r.kind) {
      case SubCore::StepResult::kItem:
        break;  // keep draining
      case SubCore::StepResult::kEmpty: {
        core->scheduled = false;
        // A push may have raced our empty observation and found
        // scheduled still true (its signal no-oped). Re-check with the
        // flag cleared and reclaim the pump if so.
        if (!core->has_work()) return;
        core->scheduled = true;
        break;
      }
      case SubCore::StepResult::kNotDue: {
        // Head not deliverable yet (link latency): keep `scheduled`
        // armed and come back at its due time.
        core->due_timer = core->reactor->post_at(
            r.due,
            [core] {
              {
                std::scoped_lock lk(core->mu);
                core->due_timer = 0;
                if (core->stopped) {
                  core->scheduled = false;
                  return;
                }
              }
              auto drain = [core] { pump_drain(core); };
              if (core->blocking)
                core->reactor->post_blocking(std::move(drain));
              else
                core->reactor->post(std::move(drain));
            },
            /*blocking=*/false);
        if (core->due_timer == 0) {  // reactor stopping: pump is done
          core->stopped = true;
          core->scheduled = false;
          core->step = nullptr;
          core->has_work = nullptr;
        }
        return;
      }
      default:
        return;
    }
  }
}

}  // namespace detail

bool Subscription::active() const {
  if (!core_) return false;
  std::scoped_lock lock(core_->mu);
  return !core_->stopped;
}

void Subscription::stop() {
  if (!core_) return;
  Reactor::TimerId timer = 0;
  {
    std::unique_lock lock(core_->mu);
    core_->stopped = true;
    timer = std::exchange(core_->due_timer, 0);
    // Wait out an in-flight handler — unless we *are* the handler (a
    // callback stopping its own pump), which must not deadlock on itself.
    core_->cv.wait(lock, [&] {
      return !core_->in_handler ||
             core_->handler_thread == std::this_thread::get_id();
    });
    if (!core_->in_handler) {
      // Safe to release captures now; a queued stale drain will see
      // `stopped` before touching them.
      core_->step = nullptr;
      core_->has_work = nullptr;
    }
    // else: the drain loop we are inside releases them on its way out.
  }
  if (timer != 0 && core_->reactor) core_->reactor->cancel(timer);
}

// ----------------------------------------------------------------- TaskGuard

std::function<void()> TaskGuard::wrap(std::function<void()> fn) const {
  return [core = core_, fn = std::move(fn)] {
    {
      std::scoped_lock lock(core->mu);
      if (core->revoked) return;
      ++core->running;
      core->tid = std::this_thread::get_id();
    }
    fn();
    {
      std::scoped_lock lock(core->mu);
      --core->running;
    }
    core->cv.notify_all();
  };
}

void TaskGuard::revoke() {
  std::unique_lock lock(core_->mu);
  core_->revoked = true;
  core_->cv.wait(lock, [&] {
    return core_->running == 0 || core_->tid == std::this_thread::get_id();
  });
}

}  // namespace ace::net
