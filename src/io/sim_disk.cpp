#include "io/sim_disk.hpp"

#include <algorithm>

namespace ace::io {

SimDisk::SimDisk(std::uint64_t seed) : rng_(seed) {}

util::Status SimDisk::append(const std::string& name, util::BytesView data) {
  std::scoped_lock lock(mu_);
  File& f = files_[name];
  f.pending.insert(f.pending.end(), data.begin(), data.end());
  ++stats_.appends;
  stats_.append_bytes += data.size();
  return util::Status::ok_status();
}

util::Result<util::Bytes> SimDisk::read(const std::string& name) const {
  std::scoped_lock lock(mu_);
  auto it = files_.find(name);
  if (it == files_.end())
    return {util::Errc::not_found, "no such file: " + name};
  util::Bytes out = it->second.durable;
  out.insert(out.end(), it->second.pending.begin(), it->second.pending.end());
  return out;
}

util::Result<std::size_t> SimDisk::size(const std::string& name) const {
  std::scoped_lock lock(mu_);
  auto it = files_.find(name);
  if (it == files_.end())
    return {util::Errc::not_found, "no such file: " + name};
  return it->second.durable.size() + it->second.pending.size();
}

util::Result<std::size_t> SimDisk::durable_size(const std::string& name) const {
  std::scoped_lock lock(mu_);
  auto it = files_.find(name);
  if (it == files_.end())
    return {util::Errc::not_found, "no such file: " + name};
  return it->second.durable.size();
}

bool SimDisk::exists(const std::string& name) const {
  std::scoped_lock lock(mu_);
  return files_.count(name) != 0;
}

util::Status SimDisk::fsync(const std::string& name) {
  std::scoped_lock lock(mu_);
  auto it = files_.find(name);
  if (it == files_.end())
    return {util::Errc::not_found, "no such file: " + name};
  ++stats_.fsyncs;
  if (fsync_drops_left_ != 0) {
    if (fsync_drops_left_ > 0) --fsync_drops_left_;
    ++stats_.fsyncs_dropped;
    return util::Status::ok_status();  // lying disk: reports ok, keeps tail
  }
  File& f = it->second;
  f.durable.insert(f.durable.end(), f.pending.begin(), f.pending.end());
  f.pending.clear();
  return util::Status::ok_status();
}

util::Status SimDisk::rename(const std::string& from, const std::string& to) {
  std::scoped_lock lock(mu_);
  auto it = files_.find(from);
  if (it == files_.end())
    return {util::Errc::not_found, "no such file: " + from};
  File f = std::move(it->second);
  // Atomic rename implies the data made it to the platter first.
  f.durable.insert(f.durable.end(), f.pending.begin(), f.pending.end());
  f.pending.clear();
  files_.erase(it);
  files_[to] = std::move(f);
  ++stats_.renames;
  return util::Status::ok_status();
}

util::Status SimDisk::remove(const std::string& name) {
  std::scoped_lock lock(mu_);
  if (files_.erase(name) == 0)
    return {util::Errc::not_found, "no such file: " + name};
  return util::Status::ok_status();
}

util::Status SimDisk::truncate(const std::string& name, std::size_t size) {
  std::scoped_lock lock(mu_);
  auto it = files_.find(name);
  if (it == files_.end())
    return {util::Errc::not_found, "no such file: " + name};
  File& f = it->second;
  f.pending.clear();
  if (size < f.durable.size()) f.durable.resize(size);
  return util::Status::ok_status();
}

std::vector<std::string> SimDisk::list(const std::string& prefix) const {
  std::scoped_lock lock(mu_);
  std::vector<std::string> out;
  for (const auto& [name, f] : files_)
    if (name.rfind(prefix, 0) == 0) out.push_back(name);
  return out;
}

void SimDisk::arm_torn_tail() {
  std::scoped_lock lock(mu_);
  torn_tail_armed_ = true;
}

void SimDisk::arm_fsync_drop(int count) {
  std::scoped_lock lock(mu_);
  fsync_drops_left_ = count;
}

bool SimDisk::inject_bit_rot(const std::string& name_prefix) {
  std::scoped_lock lock(mu_);
  std::vector<File*> candidates;
  for (auto& [name, f] : files_)
    if (name.rfind(name_prefix, 0) == 0 && !f.durable.empty())
      candidates.push_back(&f);
  if (candidates.empty()) return false;
  File* f = candidates[rng_.next_below(candidates.size())];
  std::size_t bit = rng_.next_below(f->durable.size() * 8);
  f->durable[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
  ++stats_.bit_rots;
  return true;
}

void SimDisk::crash() {
  std::scoped_lock lock(mu_);
  for (auto& [name, f] : files_) {
    if (f.pending.empty()) continue;
    if (torn_tail_armed_) {
      // Keep a strict prefix: at least one tail byte is always lost, so a
      // framed record straddling the cut comes back with a bad CRC.
      std::size_t keep = rng_.next_below(f.pending.size());
      f.durable.insert(f.durable.end(), f.pending.begin(),
                       f.pending.begin() + static_cast<std::ptrdiff_t>(keep));
      if (keep > 0) ++stats_.torn_tails;
    }
    f.pending.clear();
  }
  torn_tail_armed_ = false;
  fsync_drops_left_ = 0;
  ++stats_.crashes;
}

DiskStats SimDisk::stats() const {
  std::scoped_lock lock(mu_);
  return stats_;
}

}  // namespace ace::io
