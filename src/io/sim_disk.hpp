// Simulated disk with deterministic, injectable faults.
//
// SimDisk models one machine's local storage as a set of named flat files
// with the durability semantics real storage stacks expose:
//
//   - append() writes land in a volatile tail (the OS page cache). A live
//     process reading its own file sees durable bytes + the tail.
//   - fsync() moves the tail to the durable prefix — unless a dropped-fsync
//     fault is armed, in which case it reports success but persists nothing
//     (lying disk / ignored flush, as real consumer drives do).
//   - rename() is atomic and durable (the journalled-metadata guarantee
//     compaction relies on for snapshot publication).
//   - crash() models power loss: volatile tails vanish. With a torn-tail
//     fault armed, a random prefix of each tail survives instead — the
//     classic torn write a WAL must detect by checksum.
//   - inject_bit_rot() flips one bit in the durable bytes of a file
//     (latent media corruption, caught on the next checksummed read).
//
// All faults are driven by a seeded util::Rng so chaos schedules replay
// deterministically, mirroring ace::chaos. A process-only crash (daemon
// crash() without SimDisk::crash()) keeps volatile tails, matching a real
// OS surviving the process.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "util/bytes.hpp"
#include "util/result.hpp"
#include "util/rng.hpp"

namespace ace::io {

struct DiskStats {
  std::uint64_t appends = 0;
  std::uint64_t append_bytes = 0;
  std::uint64_t fsyncs = 0;
  std::uint64_t fsyncs_dropped = 0;
  std::uint64_t renames = 0;
  std::uint64_t crashes = 0;
  std::uint64_t torn_tails = 0;
  std::uint64_t bit_rots = 0;
};

class SimDisk {
 public:
  explicit SimDisk(std::uint64_t seed = 1);

  // --- data plane ---------------------------------------------------------
  // Appends to the file's volatile tail, creating the file if absent.
  util::Status append(const std::string& name, util::BytesView data);
  // Durable bytes + volatile tail: what a live process sees.
  util::Result<util::Bytes> read(const std::string& name) const;
  util::Result<std::size_t> size(const std::string& name) const;
  // Durable prefix length only (volatile tail excluded). Test hook for
  // asserting what would survive a power loss.
  util::Result<std::size_t> durable_size(const std::string& name) const;
  bool exists(const std::string& name) const;
  // Flushes the volatile tail to the durable prefix (see fault plane).
  util::Status fsync(const std::string& name);
  // Atomic, durable replace. `from` must exist; its tail is flushed first.
  util::Status rename(const std::string& from, const std::string& to);
  util::Status remove(const std::string& name);
  // Durably truncates to `size` bytes (used to chop a torn WAL tail so the
  // garbage cannot prefix future appends).
  util::Status truncate(const std::string& name, std::size_t size);
  std::vector<std::string> list(const std::string& prefix) const;

  // --- fault plane (deterministic, seeded) --------------------------------
  // The next crash() keeps a random strict prefix of each volatile tail
  // instead of dropping it — a torn write the WAL CRC must catch.
  void arm_torn_tail();
  // The next `count` fsync() calls report success without persisting
  // (count < 0 = all until disarmed by the next crash()).
  void arm_fsync_drop(int count);
  // Immediately flips one seeded-random bit in the durable bytes of one
  // file whose name starts with `name_prefix` (empty = any file). Returns
  // false if no file has durable data.
  bool inject_bit_rot(const std::string& name_prefix = "");

  // Power loss: volatile tails vanish (or tear, if armed); armed faults
  // reset. The disk is immediately usable again — platters survive.
  void crash();

  DiskStats stats() const;

 private:
  struct File {
    util::Bytes durable;
    util::Bytes pending;  // appended but not yet fsynced
  };

  mutable std::mutex mu_;
  std::map<std::string, File> files_;
  util::Rng rng_;
  bool torn_tail_armed_ = false;
  int fsync_drops_left_ = 0;
  DiskStats stats_;
};

}  // namespace ace::io
